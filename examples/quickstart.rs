//! Quickstart: four OS threads agree on a bit through the full bounded
//! stack — real snapshot scans over real (simulated-atomic) registers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bprc::core::bounded::ConsensusParams;
use bprc::core::threaded::ThreadedConsensus;
use bprc::registers::DirectArrow;
use bprc::sim::sched::RandomStrategy;
use bprc::sim::{Mode, World};

fn main() {
    let n = 4;
    let inputs = vec![true, false, true, false];
    println!("proposals: {inputs:?}");

    // Free-running mode: every process is an ordinary OS thread; the
    // interleaving is whatever the machine produces.
    let params = ConsensusParams::quick(n);
    let mut world = World::builder(n)
        .mode(Mode::Free)
        .step_limit(u64::MAX)
        .build();
    let instance = ThreadedConsensus::<DirectArrow>::new(&world, &params, &inputs, 42);
    let report = world.run(instance.bodies, Box::new(RandomStrategy::new(0)));

    for (pid, out) in report.outputs.iter().enumerate() {
        println!(
            "process {pid} decided {:?} (shared-memory ops are counted globally)",
            out.expect("wait-free: every process decides")
        );
    }
    let decisions: Vec<bool> = report.outputs.iter().map(|o| o.unwrap()).collect();
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "consistency: no two processes decide differently"
    );
    assert!(
        inputs.contains(&decisions[0]),
        "validity: the decision is someone's input"
    );
    println!(
        "agreement on {} after {} shared-memory operations",
        decisions[0], report.steps
    );
}
