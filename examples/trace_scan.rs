//! Renders a register-level timeline of the §2 snapshot scan: the arrows
//! being lowered, the double collect, the retry forced by a concurrent
//! update — the paper's construction made visible.
//!
//! ```text
//! cargo run --example trace_scan
//! ```

use bprc::registers::DirectArrow;
use bprc::sim::sched::FnStrategy;
use bprc::sim::trace::{render, summary, TraceOptions};
use bprc::sim::world::ProcBody;
use bprc::sim::{Decision, World};
use bprc::snapshot::ScannableMemory;

fn main() {
    let n = 2;
    let mut world = World::builder(n).build();
    let mem = ScannableMemory::<u32, DirectArrow>::new(&world, n, 0);
    let mut scanner = mem.port(0);
    let mut writer = mem.port(1);

    let bodies: Vec<ProcBody<Vec<u32>>> = vec![
        Box::new(move |ctx| scanner.scan(ctx)),
        Box::new(move |ctx| {
            writer.update(ctx, 42)?;
            Ok(vec![])
        }),
    ];

    // Schedule the writer's update right between the scanner's two
    // collects, forcing one visible retry.
    let script: Vec<usize> = vec![
        0, 0, // scanner lowers its arrow, first collect
        1, 1, // writer raises its arrow and stores 42
        0, 0, // scanner: second collect + arrow check -> RETRY
    ];
    let mut at = 0usize;
    let strategy = FnStrategy::new(move |view: &bprc::sim::ScheduleView<'_>| {
        let pick = script
            .get(at)
            .copied()
            .filter(|p| view.runnable.contains(p))
            .unwrap_or_else(|| view.runnable[0]);
        at += 1;
        Decision::Grant(pick)
    });

    let names = world.reg_names();
    let report = world.run(bodies, Box::new(strategy));
    let history = report.history.expect("lockstep records history");

    let opts = TraceOptions {
        reg_names: names,
        ..Default::default()
    };
    println!("{}", render(&history, n, &opts));
    println!("{}", summary(&history, n));
    println!(
        "\nscanner returned {:?} — the retry gave it the post-update view",
        report.outputs[0].as_ref().unwrap()
    );
    assert_eq!(report.outputs[0].as_ref().unwrap()[1], 42);
}
