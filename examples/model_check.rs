//! Exhaustive verification of the bounded protocol for small
//! configurations: every adversary schedule and every local coin outcome.
//!
//! Only possible because the protocol's state space is *finite* — the
//! paper's boundedness result in action. The unbounded \[AH88\] baseline has
//! no finite state space to exhaust.
//!
//! ```text
//! cargo run --release --example model_check
//! ```

use bprc::coin::CoinParams;
use bprc::core::bounded::ConsensusParams;
use bprc::core::modelcheck::{check_bounded, McConfig};

fn main() {
    println!(
        "{:<22} {:>10} {:>14} {:>10} {:>9}",
        "configuration", "states", "complete paths", "verified", "time"
    );
    for (n, b, m, inputs, crashes) in [
        (2usize, 1u32, 1i64, vec![false, false], false),
        (2, 1, 1, vec![true, false], false),
        (2, 1, 1, vec![true, false], true),
        (2, 1, 2, vec![true, false], false),
        (2, 2, 2, vec![true, false], false),
    ] {
        let params = ConsensusParams::new(n, CoinParams::new(n, b, m));
        let start = std::time::Instant::now();
        let report = check_bounded(
            &params,
            &inputs,
            McConfig {
                max_states: 2_000_000,
                max_depth: 2_000_000,
                with_crashes: crashes,
            },
        );
        assert!(
            report.violation.is_none(),
            "safety violation found: {:?}",
            report.violation
        );
        println!(
            "{:<22} {:>10} {:>14} {:>10} {:>8.1?}",
            format!(
                "n={n} b={b} m={m} {inputs:?}{}",
                if crashes { " +crashes" } else { "" }
            ),
            report.states,
            report.complete_paths,
            if report.verified() {
                "EXHAUSTIVE"
            } else {
                "bounded"
            },
            start.elapsed()
        );
    }
    println!("\nno agreement or validity violation exists in any explored state");
}
