//! Adversarial schedules: runs the bounded protocol under the strong
//! adversaries from the paper's model and prints how hard each one made
//! the execution work — while agreement and the §6.1 virtual-round
//! invariants are machine-checked on every run.
//!
//! ```text
//! cargo run --example adversarial
//! ```

use bprc::core::adversaries::{HoldDeciders, LeaderStarver, SplitAdversary};
use bprc::core::bounded::ConsensusParams;
use bprc::core::virtual_rounds::check_execution;
use bprc::core::ProcState;
use bprc::sim::turn::{TurnAdversary, TurnRandom, TurnRoundRobin};

fn main() {
    let n = 5;
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let params = ConsensusParams::quick(n);
    println!("n = {n}, proposals = {inputs:?}\n");
    println!(
        "{:<24} {:>10} {:>12} {:>12}",
        "adversary", "events", "max round", "decided"
    );

    let mut cases: Vec<(&str, Box<dyn TurnAdversary<ProcState>>)> = vec![
        ("round-robin (fair)", Box::new(TurnRoundRobin::new())),
        ("random", Box::new(TurnRandom::new(7))),
        (
            "split (camp-balancing)",
            Box::new(SplitAdversary::new(params.k(), 7)),
        ),
        ("leader starver", Box::new(LeaderStarver::new(params.k()))),
        ("hold-the-deciders", Box::new(HoldDeciders::new(7))),
    ];

    for (name, adversary) in cases.iter_mut() {
        let (report, tracker) =
            check_execution(&params, &inputs, 99, adversary.as_mut(), 50_000_000);
        assert!(report.completed, "{name}: adversary prevented termination");
        assert!(
            tracker.violations().is_empty(),
            "{name}: virtual-round invariant broken: {:?}",
            tracker.violations()
        );
        let decided = report.outputs.iter().flatten().next().copied().unwrap();
        println!(
            "{:<24} {:>10} {:>12} {:>12}",
            name,
            report.events,
            tracker.rounds().iter().max().unwrap(),
            decided
        );
    }

    println!("\nevery run: agreement + validity asserted, virtual rounds monotone");
}
