//! Visualizes the bounded weak shared coin: the random walk of the summed
//! counters between the ±b·n barriers, and what the bounded counters do
//! when `m` is made absurdly small.
//!
//! ```text
//! cargo run --example coin_walk
//! ```

use bprc::coin::flip::{FairFlips, FlipSource};
use bprc::coin::montecarlo::{run_trials, run_walk, WalkRandom, WalkRoundRobin};
use bprc::coin::{theory, CoinParams};

fn trace_one(params: &CoinParams, seed: u64) {
    // Re-run the walk step by step, printing a bar per ~10 walk steps.
    let n = params.n();
    let barrier = params.barrier();
    println!(
        "one coin, n = {n}, b = {} (barriers at ±{barrier}), m = {}:",
        params.b(),
        params.m()
    );
    let flips: Vec<Box<dyn FlipSource>> = (0..n)
        .map(|p| Box::new(FairFlips::new(seed + p as u64)) as Box<dyn FlipSource>)
        .collect();
    // Use the observer-free runner but trace by re-simulating with a
    // scripted printer: simplest is to run to completion and print the
    // summary, then show a coarse trace from a fresh identical run.
    let out = run_walk(params, flips, &mut WalkRoundRobin::new(), 10_000_000);
    let width = 41usize;
    let scale = |v: i64| -> usize {
        let clamped = v.clamp(-barrier, barrier);
        ((clamped + barrier) as usize * (width - 1)) / (2 * barrier as usize)
    };
    // Re-simulate manually for the trace.
    let mut counters = vec![0i64; n];
    let mut sources: Vec<FairFlips> = (0..n).map(|p| FairFlips::new(seed + p as u64)).collect();
    let mut step = 0u64;
    'outer: loop {
        for p in 0..n {
            let heads = sources[p].flip();
            counters[p] = bprc::coin::value::walk_step(params, counters[p], heads);
            step += 1;
            let total: i64 = counters.iter().sum();
            if step.is_multiple_of(10) || total.abs() > barrier {
                let pos = scale(total);
                let mut bar = vec![b'.'; width];
                bar[width / 2] = b'|';
                bar[pos] = b'*';
                println!(
                    "step {step:>5} {} total={total}",
                    String::from_utf8(bar).unwrap()
                );
            }
            if total.abs() > barrier {
                break 'outer;
            }
        }
    }
    println!(
        "walk exited after ~{step} steps; full algorithm: {} events, outcome {:?}\n",
        out.events, out.decisions[0]
    );
}

fn main() {
    let params = CoinParams::new(3, 2, 1_000_000);
    trace_one(&params, 12345);

    println!(
        "Lemma 3.2 bound (b+1)^2*n^2 = {}, clean-walk theory (bn)^2 = {}",
        params.expected_steps_bound(),
        theory::expected_exit_time(params.barrier(), 0)
    );

    let stats = run_trials(&params, 200, 7, 10_000_000, |t| {
        Box::new(WalkRandom::new(t))
    });
    println!(
        "200 coins: mean walk steps {:.1}, disagreement rate {:.3}, heads rate {:.2}",
        stats.mean_walk_steps,
        stats.disagreement_rate(),
        stats.heads_rate()
    );

    // Now cripple the counters: m = 2 forces overflows, and every
    // overflowing process deterministically reads heads — the paper's
    // bounded-memory escape hatch.
    let tiny = CoinParams::new(3, 2, 2);
    let stats = run_trials(&tiny, 200, 9, 10_000_000, |t| Box::new(WalkRandom::new(t)));
    println!(
        "200 coins with m = 2: overflow rate {:.2}, disagreement rate {:.3} (overflow absorbed)",
        stats.overflow_rate(),
        stats.disagreement_rate()
    );
}
