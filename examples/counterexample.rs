//! The model checker catching a broken protocol — and printing the exact
//! schedule that breaks it.
//!
//! The "protocol" here is a deliberately wrong one: each process decides its
//! own input at its first scan (no coordination at all). The exhaustive
//! checker finds the agreement violation and hands back a minimal-ish
//! counterexample trace you could replay step by step.
//!
//! ```text
//! cargo run --release --example counterexample
//! ```

use bprc::coin::{CoinParams, Flips};
use bprc::core::bounded::{BoundedCore, ConsensusParams};
use bprc::core::modelcheck::{check, Checkable, McConfig, ViolationKind};
use bprc::core::ProcState;
use bprc::sim::turn::{TurnProcess, TurnStep};

/// Decides its own input immediately — obviously unsafe.
#[derive(Clone)]
struct YoloDecider {
    inner: BoundedCore,
    input: bool,
}

impl TurnProcess for YoloDecider {
    type Msg = ProcState;
    type Out = bool;

    fn initial_msg(&mut self) -> ProcState {
        TurnProcess::initial_msg(&mut self.inner)
    }

    fn on_scan(&mut self, _view: &[ProcState]) -> TurnStep<ProcState, bool> {
        TurnStep::Decide(self.input)
    }
}

impl Checkable for YoloDecider {
    fn load_flip(&mut self, heads: bool) {
        self.inner.flips_mut().push_outcome(heads);
    }
    fn pending_flips(&self) -> usize {
        0
    }
}

fn main() {
    let params = ConsensusParams::new(2, CoinParams::new(2, 1, 1));
    let procs: Vec<YoloDecider> = (0..2)
        .map(|p| YoloDecider {
            inner: BoundedCore::with_flips(params.clone(), p, p == 0, Flips::queue()),
            input: p == 0,
        })
        .collect();
    let shared = vec![ProcState::phantom(2, params.k()); 2];

    println!("model-checking a protocol that decides its own input immediately…\n");
    let report = check(procs, shared, |_| true, McConfig::default());

    let violation = report.violation.expect("the checker must catch this");
    match violation.kind {
        ViolationKind::Agreement { values } => {
            println!(
                "AGREEMENT VIOLATION: processes decided {} and {}",
                values.0, values.1
            );
        }
        ViolationKind::Validity { value } => {
            println!("VALIDITY VIOLATION: decided {value}");
        }
    }
    println!(
        "\ncounterexample schedule ({} events):",
        violation.trace.len()
    );
    for (i, ev) in violation.trace.iter().enumerate() {
        let what = match ev.flip {
            None => "steps".to_string(),
            Some(h) => format!("steps, local coin = {}", if h { "heads" } else { "tails" }),
        };
        println!("  {i:>2}. process {} {what}", ev.pid);
    }
    println!(
        "\n(the real bounded protocol, checked the same way, has zero violations \
         across its entire state space — see `cargo run --example model_check`)"
    );
}
