//! Chaos demo: a composed fault plan — an early crash, a long stall
//! window, and a late injected panic — over the full register-level
//! consensus stack, with faults and protocol phase spans rendered as one
//! unified timeline from the recorded history plus the metrics plane.
//!
//! ```text
//! cargo run --example chaos
//! ```

use bprc::core::bounded::ConsensusParams;
use bprc::core::threaded::ThreadedConsensus;
use bprc::registers::DirectArrow;
use bprc::sim::faults::{FaultPlan, FaultedStrategy};
use bprc::sim::sched::RandomStrategy;
use bprc::sim::trace::{render, render_unified, summary, TraceOptions};
use bprc::sim::World;
use bprc::sim::{Counter, Gauge};

fn main() {
    // The injected panic below is expected and contained; keep its default
    // unwind report off the demo's output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .is_some_and(|s| s.contains("chaos"));
        if !injected {
            prev_hook(info);
        }
    }));

    let n = 3;
    let seed = 7;
    let params = ConsensusParams::quick(n);
    let mut world = World::builder(n).seed(seed).step_limit(5_000_000).build();
    let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], seed);
    inst.set_scan_retry_budget(Some(128));

    let plan = FaultPlan::new()
        .crash_at(40, 0)
        .stall(1, 60, 140)
        .panic_at(200, 2);
    println!("fault plan: {plan:#?}\n");

    let names = world.reg_names();
    let strategy = FaultedStrategy::new(RandomStrategy::new(seed), plan);
    let report = world.run(inst.bodies, Box::new(strategy));
    let history = report.history.as_ref().expect("lockstep records history");

    // Faults, crashes, and the protocol's round/scan/write/coin phase
    // spans, merged into one per-process timeline. The early steps show
    // each process entering round 1 before the chaos begins.
    let unified_opts = TraceOptions {
        steps: Some((0, 80)),
        ..Default::default()
    };
    println!("unified timeline (phases + faults, steps 0..80):");
    println!(
        "{}",
        render_unified(Some(history), &report.telemetry, n, &unified_opts)
    );

    println!("\noutcome per process:");
    for p in 0..n {
        match (&report.outputs[p], &report.halted[p]) {
            (Some(v), _) => println!("  p{p}: decided {v}"),
            (None, Some(h)) => {
                let msg = report.panics[p]
                    .as_deref()
                    .map(|m| format!(" ({m})"))
                    .unwrap_or_default();
                println!("  p{p}: halted — {h}{msg}");
            }
            (None, None) => println!("  p{p}: no output"),
        }
    }

    // The decisive window of the register-level timeline, around the panic.
    let opts = TraceOptions {
        reg_names: names,
        steps: Some((190, 215)),
        notes: false,
        ..Default::default()
    };
    println!("\ntimeline around the injected panic (steps 190..215):");
    println!("{}", render(history, n, &opts));
    println!("{}", summary(history, n));
    println!("{}", report.telemetry.summary());
    println!(
        "scan attempts {} (retries {}, starved {}), max round {:?}",
        report.telemetry.total(Counter::ScanAttempts),
        report.telemetry.total(Counter::ScanRetries),
        report.telemetry.total(Counter::ScanStarved),
        (0..n)
            .filter_map(|p| report.telemetry.gauge(p, Gauge::Round))
            .max(),
    );

    let survivors: Vec<bool> = report.outputs.iter().flatten().copied().collect();
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "agreement must survive the chaos"
    );
    println!(
        "\n{} of {n} processes decided {:?} — agreement held under crash+stall+panic",
        survivors.len(),
        survivors.first()
    );
}
