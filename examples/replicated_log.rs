//! A replicated command log built on multi-shot consensus
//! ([`bprc::core::multishot::LogCore`]) — the kind of downstream use the
//! paper's introduction motivates (consensus as the universal building
//! block for wait-free objects).
//!
//! Three replicas each propose a command per slot; the log protocol fixes
//! the order, with replicas free to be *slots apart* during the run. All
//! replicas end with identical logs, each entry being some replica's
//! proposal for that slot.
//!
//! ```text
//! cargo run --example replicated_log
//! ```

use bprc::core::bounded::ConsensusParams;
use bprc::core::multishot::{LogCore, StaticProposals};
use bprc::sim::turn::{TurnDriver, TurnRandom};

/// Commands are tiny: an opcode plus an operand, packed into 16 bits.
fn encode(op: u8, operand: u8) -> u64 {
    ((op as u64) << 8) | operand as u64
}

fn decode(cmd: u64) -> (u8, u8) {
    (((cmd >> 8) & 0xFF) as u8, (cmd & 0xFF) as u8)
}

fn op_name(op: u8) -> &'static str {
    match op {
        0 => "PUT",
        1 => "DEL",
        2 => "CAS",
        _ => "NOP",
    }
}

fn main() {
    let n = 3;
    let slots = 5;
    let params = ConsensusParams::quick(n);

    // Each replica's queue of commands it would like to commit.
    let proposals: Vec<Vec<u64>> = (0..n)
        .map(|r| {
            (0..slots)
                .map(|s| encode((r as u8 + s as u8) % 3, (10 * r + s) as u8))
                .collect()
        })
        .collect();

    let replicas: Vec<LogCore<StaticProposals>> = (0..n)
        .map(|r| {
            LogCore::new(
                params.clone(),
                r,
                slots,
                16,
                StaticProposals(proposals[r].clone()),
                2026 + r as u64,
            )
        })
        .collect();

    let report = TurnDriver::new(replicas).run(&mut TurnRandom::new(7), 200_000_000);
    assert!(report.completed, "log must complete");
    let logs: Vec<Vec<u64>> = report.outputs.into_iter().map(|o| o.unwrap()).collect();

    for (slot, &committed) in logs[0].iter().enumerate() {
        let proposed_by: Vec<usize> = (0..n)
            .filter(|&r| proposals[r][slot] == committed)
            .collect();
        let (op, operand) = decode(committed);
        println!(
            "slot {slot}: committed {}({operand})  — proposed by replica(s) {proposed_by:?}",
            op_name(op),
        );
        assert!(
            !proposed_by.is_empty(),
            "validity: committed command must be someone's proposal"
        );
    }

    for r in 1..n {
        assert_eq!(logs[0], logs[r], "replica {r} diverged");
    }
    println!("\nall {n} replicas hold identical {slots}-entry logs ✓");
    println!("(replicas ran fully asynchronously — one can be slots ahead of another mid-run)");
}
