//! Single-writer multi-reader registers.

use bprc_sim::{Ctx, FastDyn, FastPod, Halted, Reg, World};

/// A single-writer multi-reader atomic register.
///
/// Wraps a [`Reg`] and enforces (by assertion) that only the designated
/// writer process ever writes it — the SWMR discipline the paper's model
/// assumes for the value registers `V_i`.
///
/// # Example
///
/// ```
/// use bprc_sim::{World, Mode};
/// use bprc_sim::sched::RoundRobin;
/// use bprc_registers::Swmr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut world = World::builder(2).build();
/// let v = Swmr::new(&world, "V_0", 0, 0u32);
/// let (v0, v1) = (v.clone(), v.clone());
/// let report = world.run::<u32>(
///     vec![
///         Box::new(move |ctx| {
///             v0.write(ctx, 7)?;
///             Ok(0)
///         }),
///         Box::new(move |ctx| v1.read(ctx)),
///     ],
///     Box::new(RoundRobin::new()),
/// );
/// assert_eq!(report.outputs[1], Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Swmr<T> {
    reg: Reg<T>,
    writer: usize,
}

impl<T> Clone for Swmr<T> {
    fn clone(&self) -> Self {
        Swmr {
            reg: self.reg.clone(),
            writer: self.writer,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Swmr<T> {
    /// Allocates a SWMR register owned by process `writer`.
    pub fn new(world: &World, name: impl Into<String>, writer: usize, init: T) -> Self {
        Swmr {
            reg: world.reg(name, init),
            writer,
        }
    }

    /// The underlying register id (for history inspection).
    pub fn id(&self) -> usize {
        self.reg.id()
    }

    /// Whether the register landed on the seqlock fast plane.
    pub fn is_fast(&self) -> bool {
        self.reg.is_fast()
    }

    /// The pid allowed to write this register.
    pub fn writer(&self) -> usize {
        self.writer
    }

    /// Atomically reads the register (any process).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read(&self, ctx: &mut Ctx) -> Result<T, Halted> {
        self.reg.read(ctx)
    }

    /// Atomically reads the register and maps the value in place — one
    /// scheduled step, no forced clone (see
    /// [`Reg::read_with`](bprc_sim::Reg::read_with)).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read_with<R>(&self, ctx: &mut Ctx, f: impl FnOnce(&T) -> R) -> Result<R, Halted> {
        self.reg.read_with(ctx, f)
    }

    /// Version-token read — one scheduled step that skips `f` entirely when
    /// the register provably hasn't been written since the read that
    /// produced `cached` (see
    /// [`Reg::read_changed`](bprc_sim::Reg::read_changed)). The snapshot
    /// layer's batched collect validation rides on this.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read_changed(
        &self,
        ctx: &mut Ctx,
        cached: u64,
        f: impl FnOnce(&T),
    ) -> Result<u64, Halted> {
        self.reg.read_changed(ctx, cached, f)
    }

    /// Atomically writes the register.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    ///
    /// # Panics
    ///
    /// Panics if called by a process other than the designated writer.
    #[inline]
    pub fn write(&self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        assert_eq!(
            ctx.pid(),
            self.writer,
            "SWMR violation: process {} wrote a register owned by {}",
            ctx.pid(),
            self.writer
        );
        self.reg.write(ctx, value)
    }

    /// Like [`write`](Swmr::write) but records `tag` in the history (hidden
    /// sequence numbers for offline checkers).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    ///
    /// # Panics
    ///
    /// Panics if called by a process other than the designated writer.
    #[inline]
    pub fn write_tagged(&self, ctx: &mut Ctx, value: T, tag: u64) -> Result<(), Halted> {
        assert_eq!(
            ctx.pid(),
            self.writer,
            "SWMR violation: process {} wrote a register owned by {}",
            ctx.pid(),
            self.writer
        );
        self.reg.write_tagged(ctx, value, tag)
    }

    /// Unscheduled read for checkers/adversaries (see [`Reg::peek`]).
    pub fn peek(&self) -> T {
        self.reg.peek()
    }

    /// Unscheduled write for test setup (see [`Reg::poke`]).
    pub fn poke(&self, value: T) {
        self.reg.poke(value)
    }
}

impl<T: FastPod> Swmr<T> {
    /// Like [`Swmr::new`] but allocates on the seqlock fast plane when the
    /// payload fits (and the world's register plane allows it). The SWMR
    /// discipline is unchanged.
    pub fn new_fast(world: &World, name: impl Into<String>, writer: usize, init: T) -> Self {
        Swmr {
            reg: world.fast_reg(name, init),
            writer,
        }
    }

    /// Like [`Swmr::new_fast`] but allocates lane `lane` of a shared
    /// [`ValueSlab`](bprc_sim::ValueSlab) (see
    /// [`World::lane_reg`](bprc_sim::World::lane_reg)): under the packed
    /// register plane, all the slab's version words are contiguous, which
    /// is what makes the snapshot layer's batched seq validation touch
    /// ⌈n/8⌉ cache lines. The SWMR discipline is unchanged.
    pub fn new_lane(
        world: &World,
        slab: &bprc_sim::ValueSlab,
        lane: usize,
        name: impl Into<String>,
        writer: usize,
        init: T,
    ) -> Self {
        Swmr {
            reg: world.lane_reg(slab, lane, name, init),
            writer,
        }
    }
}

impl Swmr<bool> {
    /// Like [`Swmr::new_fast`] for a single bit, riding the packed
    /// bit-plane when the world's register plane is `Packed` (see
    /// [`World::bit_reg`](bprc_sim::World::bit_reg)). The SWMR discipline
    /// is unchanged.
    pub fn new_bit(world: &World, name: impl Into<String>, writer: usize, init: bool) -> Self {
        Swmr {
            reg: world.bit_reg(name, init),
            writer,
        }
    }
}

impl<T: FastDyn> Swmr<T> {
    /// Like [`Swmr::new_fast`] but for payloads whose packed width is fixed
    /// at *runtime* by the initial value ([`FastDyn`]) — the wait-free
    /// snapshot's slots, whose embedded views grow with `n`. The SWMR
    /// discipline is unchanged.
    pub fn new_fast_dyn(world: &World, name: impl Into<String>, writer: usize, init: T) -> Self {
        Swmr {
            reg: world.fast_reg_dyn(name, init),
            writer,
        }
    }

    /// The runtime-width counterpart of [`Swmr::new_lane`] (see
    /// [`World::lane_reg_dyn`](bprc_sim::World::lane_reg_dyn)). The SWMR
    /// discipline is unchanged.
    pub fn new_lane_dyn(
        world: &World,
        slab: &bprc_sim::ValueSlab,
        lane: usize,
        name: impl Into<String>,
        writer: usize,
        init: T,
    ) -> Self {
        Swmr {
            reg: world.lane_reg_dyn(slab, lane, name, init),
            writer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::sched::RoundRobin;
    use bprc_sim::world::ProcBody;

    #[test]
    fn reader_sees_writer_value() {
        let mut w = World::builder(2).build();
        let v = Swmr::new(&w, "v", 0, 1u8);
        let (v0, v1) = (v.clone(), v.clone());
        let bodies: Vec<ProcBody<u8>> = vec![
            Box::new(move |ctx| {
                v0.write(ctx, 9)?;
                Ok(0)
            }),
            Box::new(move |ctx| v1.read(ctx)),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[1], Some(9));
    }

    #[test]
    fn wrong_writer_panics() {
        // The ownership violation panics inside the process body; the world
        // contains it, halts the offender, and reports the message.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("SWMR violation"));
            if !expected {
                prev(info);
            }
        }));
        let mut w = World::builder(2).build();
        let v = Swmr::new(&w, "v", 0, 0u8);
        let v1 = v.clone();
        let bodies: Vec<ProcBody<()>> = vec![
            Box::new(move |_| Ok(())),
            Box::new(move |ctx| v1.write(ctx, 1)), // pid 1 writes pid 0's register
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let _ = std::panic::take_hook();
        assert_eq!(rep.outputs[0], Some(()), "innocent process finishes");
        assert_eq!(rep.halted[1], Some(Halted::Panicked));
        let msg = rep.panics[1].as_deref().expect("panic message captured");
        assert!(
            msg.contains("SWMR violation: process 1 wrote a register owned by 0"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn peek_and_writer_accessors() {
        let w = World::builder(1).build();
        let v = Swmr::new(&w, "v", 0, 5u32);
        assert_eq!(v.peek(), 5);
        assert_eq!(v.writer(), 0);
        v.poke(6);
        assert_eq!(v.peek(), 6);
    }
}
