//! Arrow registers: the paper's `A_ij` handshake cells.
//!
//! An arrow cell connects one *writer* process and one *scanner* process.
//! The writer **raises** the arrow ("I am about to update my value
//! register"); the scanner **lowers** it at the start of a scan attempt and
//! re-reads it at the end — observing it raised means a write started in
//! between and the scan must retry.
//!
//! Two implementations are provided (see crate docs for why both exist):
//! [`DirectArrow`], an atomic two-writer boolean register, and
//! [`HandshakeArrow`], the paper-footnote simulation from two single-writer
//! bits.

use bprc_sim::{Counter, Ctx, Halted, Reg, World};

use crate::swmr::Swmr;

/// The interface the scannable memory needs from an `A_ij` cell.
///
/// This trait is sealed in spirit — it is implemented by the two cells in
/// this module, and the snapshot construction is generic over it so both can
/// be exercised by the same tests.
pub trait ArrowCell: Clone + Send + Sync + 'static {
    /// Allocates a lowered arrow between `writer` and `scanner`.
    ///
    /// (`DirectArrow` ignores the pids; `HandshakeArrow` uses them to assign
    /// the two single-writer bits.)
    fn alloc(world: &World, name: &str, writer: usize, scanner: usize) -> Self;

    /// Writer side: raise the arrow (announce an impending value write).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    fn raise(&self, ctx: &mut Ctx) -> Result<(), Halted>;

    /// Scanner side: lower the arrow (acknowledge, before collecting).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    fn lower(&self, ctx: &mut Ctx) -> Result<(), Halted>;

    /// Scanner side: is the arrow currently raised?
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    fn is_raised(&self, ctx: &mut Ctx) -> Result<bool, Halted>;

    /// Unscheduled observation for checkers and adversaries.
    fn peek_raised(&self) -> bool;

    /// Worst-case number of register accesses one `raise` performs.
    fn raise_cost() -> u64;
}

/// An atomic two-writer two-reader boolean register, as the paper assumes.
///
/// `true` = raised. Both endpoints write it directly; atomicity comes from
/// the underlying [`Reg`].
#[derive(Debug, Clone)]
pub struct DirectArrow {
    cell: Reg<bool>,
}

impl DirectArrow {
    /// Allocates a lowered arrow.
    ///
    /// Rides the world's packed bit-plane when available: the boolean
    /// lands in a shared cache-line chunk whose mutations are
    /// `fetch_or`/`fetch_and` RMWs, so the *two*-writer discipline of an
    /// arrow (writer raises, scanner lowers) stays atomic and n² arrows
    /// occupy ⌈n²/512⌉ cache lines instead of n² scattered cells. On the
    /// `Fast` plane the cell is an individual seqlock (writer side
    /// CAS-serialized — same atomicity argument). Scheduling and telemetry
    /// are identical to a locked cell.
    pub fn new(world: &World, name: impl Into<String>) -> Self {
        DirectArrow {
            cell: world.bit_reg(name, false),
        }
    }
}

impl ArrowCell for DirectArrow {
    fn alloc(world: &World, name: &str, _writer: usize, _scanner: usize) -> Self {
        DirectArrow::new(world, name)
    }

    #[inline]
    fn raise(&self, ctx: &mut Ctx) -> Result<(), Halted> {
        ctx.count(Counter::ArrowRaises, 1);
        self.cell.write(ctx, true)
    }

    #[inline]
    fn lower(&self, ctx: &mut Ctx) -> Result<(), Halted> {
        ctx.count(Counter::ArrowLowers, 1);
        self.cell.write(ctx, false)
    }

    #[inline]
    fn is_raised(&self, ctx: &mut Ctx) -> Result<bool, Halted> {
        ctx.count(Counter::ArrowChecks, 1);
        self.cell.read(ctx)
    }

    fn peek_raised(&self) -> bool {
        self.cell.peek()
    }

    fn raise_cost() -> u64 {
        1
    }
}

/// The handshake ("arrows technique") simulation of an `A_ij` register from
/// two single-writer bits, per the paper's footnote 3.
///
/// * `flag` is written only by the writer; `ack` only by the scanner.
/// * Raised ⇔ `flag != ack`.
/// * `raise` = read `ack`, write `flag := !ack` (make unequal).
/// * `lower` = read `flag`, write `ack := flag` (make equal).
///
/// A `raise` that overlaps a `lower` can be *absorbed* (the lower makes the
/// bits equal again after the raise's read). The snapshot construction
/// tolerates this: an absorbed raise's value write is either seen
/// consistently by both collects, or detected by the toggle-bit comparison,
/// or happens entirely after the second collect (in which case returning the
/// older value is still a legal snapshot). See `bprc-snapshot`'s tests.
#[derive(Debug, Clone)]
pub struct HandshakeArrow {
    flag: Swmr<bool>,
    ack: Swmr<bool>,
}

impl HandshakeArrow {
    /// Allocates a lowered handshake arrow between `writer` and `scanner`.
    ///
    /// Each bit is single-writer, so both ride the packed bit-plane (or an
    /// individual seqlock on the `Fast` plane) without even needing RMW
    /// arbitration between the endpoints.
    pub fn new(world: &World, name: &str, writer: usize, scanner: usize) -> Self {
        HandshakeArrow {
            flag: Swmr::new_bit(world, format!("{name}.flag"), writer, false),
            ack: Swmr::new_bit(world, format!("{name}.ack"), scanner, false),
        }
    }
}

impl ArrowCell for HandshakeArrow {
    fn alloc(world: &World, name: &str, writer: usize, scanner: usize) -> Self {
        HandshakeArrow::new(world, name, writer, scanner)
    }

    #[inline]
    fn raise(&self, ctx: &mut Ctx) -> Result<(), Halted> {
        ctx.count(Counter::ArrowRaises, 1);
        let a = self.ack.read(ctx)?;
        self.flag.write(ctx, !a)
    }

    #[inline]
    fn lower(&self, ctx: &mut Ctx) -> Result<(), Halted> {
        ctx.count(Counter::ArrowLowers, 1);
        let f = self.flag.read(ctx)?;
        self.ack.write(ctx, f)
    }

    #[inline]
    fn is_raised(&self, ctx: &mut Ctx) -> Result<bool, Halted> {
        ctx.count(Counter::ArrowChecks, 1);
        // Read order matters: read the writer's bit first, then our own ack.
        // (The scanner owns `ack`, so its value cannot change in between.)
        let f = self.flag.read(ctx)?;
        let a = self.ack.read(ctx)?;
        Ok(f != a)
    }

    fn peek_raised(&self) -> bool {
        self.flag.peek() != self.ack.peek()
    }

    fn raise_cost() -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::sched::{FnStrategy, RoundRobin};
    use bprc_sim::world::ProcBody;
    use bprc_sim::Decision;

    fn sequential_semantics<A: ArrowCell>(arrow: A, w: &mut bprc_sim::World) {
        let a = arrow.clone();
        let bodies: Vec<ProcBody<Vec<bool>>> = vec![
            Box::new(move |ctx| {
                let mut obs = Vec::new();
                obs.push(a.is_raised(ctx)?); // initially lowered
                a.raise(ctx)?;
                obs.push(a.is_raised(ctx)?); // raised
                a.raise(ctx)?;
                obs.push(a.is_raised(ctx)?); // still raised (idempotent-ish)
                a.lower(ctx)?;
                obs.push(a.is_raised(ctx)?); // lowered
                a.raise(ctx)?;
                obs.push(a.is_raised(ctx)?); // raised again
                Ok(obs)
            }),
            Box::new(move |_| Ok(vec![])),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(
            rep.outputs[0],
            Some(vec![false, true, true, false, true]),
            "sequential raise/lower semantics"
        );
    }

    #[test]
    fn direct_arrow_sequential() {
        let mut w = bprc_sim::World::builder(2).build();
        let a = DirectArrow::new(&w, "A");
        sequential_semantics(a, &mut w);
    }

    #[test]
    fn handshake_arrow_sequential() {
        // Process 0 plays both roles here, which is fine for SWMR discipline
        // only if it owns both bits; allocate with writer=0, scanner=0.
        let mut w = bprc_sim::World::builder(2).build();
        let a = HandshakeArrow::new(&w, "A", 0, 0);
        sequential_semantics(a, &mut w);
    }

    /// If the raise happens entirely after the lower completes, the next
    /// `is_raised` must see it. The schedule grants the scanner its full
    /// lower (at most 2 accesses), then the writer its full raise, then the
    /// scanner its check.
    fn check_raise_after_lower_visible<A: ArrowCell>(w: &mut bprc_sim::World, a: A) {
        let a_w = a.clone();
        let a_s = a;
        let bodies: Vec<ProcBody<bool>> = vec![
            Box::new(move |ctx| {
                a_w.raise(ctx)?;
                Ok(true)
            }),
            Box::new(move |ctx| {
                a_s.lower(ctx)?;
                a_s.is_raised(ctx)
            }),
        ];
        let mut granted = 0u32;
        let lower_cost = A::raise_cost() as u32; // lower mirrors raise in both impls
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            let pick = if granted < lower_cost && view.runnable.contains(&1) {
                1 // finish the lower first
            } else if view.runnable.contains(&0) {
                0 // then the whole raise
            } else {
                1 // then the check
            };
            granted += 1;
            Decision::Grant(pick)
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert_eq!(rep.outputs[1], Some(true), "raise after lower must be seen");
    }

    #[test]
    fn direct_raise_after_lower_is_visible() {
        let mut w = bprc_sim::World::builder(2).build();
        let a = DirectArrow::new(&w, "A");
        check_raise_after_lower_visible(&mut w, a);
    }

    #[test]
    fn handshake_raise_after_lower_is_visible() {
        let mut w = bprc_sim::World::builder(2).build();
        let a = HandshakeArrow::new(&w, "A", 0, 1);
        check_raise_after_lower_visible(&mut w, a);
    }

    #[test]
    fn handshake_absorption_is_possible() {
        // Demonstrates the documented non-atomicity: a raise overlapping a
        // lower can be absorbed. Schedule: writer reads ack; scanner lowers
        // fully; writer writes flag := !ack(old). Bits end equal => lowered.
        let mut w = bprc_sim::World::builder(2).build();
        let a = HandshakeArrow::new(&w, "A", 0, 1);
        // Pre-state: raised (flag=true, ack=false).
        let a_setup = a.clone();
        a_setup.flag.poke(true);
        assert!(a.peek_raised());
        let a_w = a.clone();
        let a_s = a.clone();
        let bodies: Vec<ProcBody<bool>> = vec![
            Box::new(move |ctx| {
                a_w.raise(ctx)?;
                Ok(true)
            }),
            Box::new(move |ctx| {
                a_s.lower(ctx)?;
                a_s.is_raised(ctx)
            }),
        ];
        // writer raise = [read ack, write flag]; scanner lower = [read flag,
        // write ack]. Interleave: w.read_ack(false), s.read_flag(true),
        // s.write_ack(true), w.write_flag(!false=true) -> flag=true, ack=true
        // -> lowered: the raise was absorbed.
        let order = [0usize, 1, 1, 0, 1, 1];
        let mut i = 0;
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            let pick = if i < order.len() && view.runnable.contains(&order[i]) {
                order[i]
            } else {
                view.runnable[0]
            };
            i += 1;
            Decision::Grant(pick)
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert_eq!(
            rep.outputs[1],
            Some(false),
            "this schedule absorbs the raise (documented behaviour)"
        );
        // A DirectArrow under the same schedule would have ended raised —
        // that is exactly the semantic gap the snapshot must (and does)
        // tolerate.
    }

    #[test]
    fn raise_costs_match_documentation() {
        assert_eq!(DirectArrow::raise_cost(), 1);
        assert_eq!(HandshakeArrow::raise_cost(), 2);
    }

    #[test]
    fn arrow_toggles_are_counted() {
        let mut w = bprc_sim::World::builder(1).build();
        let a = DirectArrow::new(&w, "A");
        let bodies: Vec<ProcBody<()>> = vec![Box::new(move |ctx| {
            a.raise(ctx)?;
            a.raise(ctx)?;
            a.lower(ctx)?;
            a.is_raised(ctx)?;
            Ok(())
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let t = &rep.telemetry;
        assert_eq!(t.counter(0, Counter::ArrowRaises), 2);
        assert_eq!(t.counter(0, Counter::ArrowLowers), 1);
        assert_eq!(t.counter(0, Counter::ArrowChecks), 1);
        // Arrow ops are themselves register accesses, so they also show
        // up in the access-gate counters.
        assert_eq!(t.counter(0, Counter::RegWrites), 3);
        assert_eq!(t.counter(0, Counter::RegReads), 1);
    }
}
