//! Register and handshake primitives for the BPRC reproduction.
//!
//! The paper's scannable memory (§2) is built from two kinds of registers:
//!
//! * **single-writer multi-reader atomic registers** `V_i` — one per process,
//!   holding that process's published value, with an *alternating (toggle)
//!   bit* so consecutive writes by the same process always differ;
//! * **two-writer two-reader atomic "arrow" registers** `A_ij` — one per
//!   ordered (writer, scanner) pair, used by the writer to announce "I have
//!   updated `V_i`" and by the scanner to acknowledge it.
//!
//! This crate provides both. For the arrows there are two interchangeable
//! implementations behind the [`ArrowCell`] trait:
//!
//! * [`DirectArrow`] — a genuine linearizable two-writer boolean register
//!   (the paper's registers, taken as a primitive);
//! * [`HandshakeArrow`] — the *arrows technique* the paper's footnote 3
//!   recommends ("to save on the complexity of constructing multi-writer
//!   registers"): two single-writer bits, with *raised* encoded as the bits
//!   being unequal. Raising and lowering are then read-then-write sequences
//!   on single-writer registers only.
//!
//! The handshake simulation is not atomic — a raise that overlaps a lower
//! can be absorbed — but in combination with the snapshot's double collect
//! and the toggle bit this is harmless (see `bprc-snapshot` for the argument
//! and the property tests that check it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrow;
pub mod swmr;
pub mod toggled;

pub use arrow::{ArrowCell, DirectArrow, HandshakeArrow};
pub use swmr::Swmr;
pub use toggled::Toggled;
