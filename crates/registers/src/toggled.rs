//! Values carrying the paper's alternating (toggle) bit.

/// A register value paired with an alternating bit.
///
/// The paper (§2.2) adds "an alternating bit field … to each register `V_i`,
/// such that two values written in consecutive writes by the same process
/// always differ". The scannable memory's double collect compares
/// `Toggled<T>` values, so a writer that writes the *same* payload twice is
/// still detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Toggled<T> {
    /// The payload.
    pub value: T,
    /// The alternating bit.
    pub toggle: bool,
}

impl<T> Toggled<T> {
    /// Wraps an initial value (toggle starts at `false`).
    pub fn new(value: T) -> Self {
        Toggled {
            value,
            toggle: false,
        }
    }

    /// The value a writer should write after `self`: new payload, flipped bit.
    pub fn successor(&self, value: T) -> Self {
        Toggled {
            value,
            toggle: !self.toggle,
        }
    }

    /// Maps the payload, keeping the toggle.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Toggled<U> {
        Toggled {
            value: f(self.value),
            toggle: self.toggle,
        }
    }
}

impl<T> From<T> for Toggled<T> {
    fn from(value: T) -> Self {
        Toggled::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_always_differ() {
        let a = Toggled::new(5u8);
        let b = a.successor(5);
        assert_ne!(a, b, "same payload must still differ via the toggle");
        let c = b.successor(5);
        assert_ne!(b, c);
        assert_eq!(a.toggle, c.toggle);
    }

    #[test]
    fn map_preserves_toggle() {
        let a = Toggled::new(2u8).successor(3);
        let b = a.map(|v| v as u32 * 10);
        assert_eq!(b.value, 30);
        assert_eq!(b.toggle, a.toggle);
    }

    #[test]
    fn from_wraps_with_false_toggle() {
        let t: Toggled<&str> = "x".into();
        assert!(!t.toggle);
        assert_eq!(t.value, "x");
    }
}
