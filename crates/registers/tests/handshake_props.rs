//! History-checked properties of the handshake arrow under randomized
//! lockstep schedules: the *no-lost-signal* guarantee the snapshot
//! construction relies on.
//!
//! Property: a raise that begins strictly after a lower completes is seen
//! by every check that begins after the raise completes (until the next
//! lower). Equivalently: a check may report "lowered" only if every raise
//! since the last lower overlapped that lower (the documented absorption
//! window) or has not completed yet.

use bprc_registers::{ArrowCell, DirectArrow, HandshakeArrow};
use bprc_sim::history::History;
use bprc_sim::sched::RandomStrategy;
use bprc_sim::world::ProcBody;
use bprc_sim::World;

const RAISE_START: &str = "hs:raise:start";
const RAISE_END: &str = "hs:raise:end";
const LOWER_END: &str = "hs:lower:end";
const CHECK_START: &str = "hs:check:start";
const CHECK_RESULT: &str = "hs:check:result";

fn run_one<A: ArrowCell>(seed: u64, raises: u64, checks: u64) -> History {
    let mut world = World::builder(2).seed(seed).step_limit(1_000_000).build();
    let arrow = A::alloc(&world, "A", 0, 1);
    let a_w = arrow.clone();
    let a_s = arrow;
    let bodies: Vec<ProcBody<()>> = vec![
        Box::new(move |ctx| {
            for k in 0..raises {
                ctx.annotate(RAISE_START, vec![k]);
                a_w.raise(ctx)?;
                ctx.annotate(RAISE_END, vec![k]);
            }
            Ok(())
        }),
        Box::new(move |ctx| {
            for j in 0..checks {
                a_s.lower(ctx)?;
                ctx.annotate(LOWER_END, vec![j]);
                ctx.annotate(CHECK_START, vec![j]);
                let r = a_s.is_raised(ctx)?;
                ctx.annotate(CHECK_RESULT, vec![j, r as u64]);
            }
            Ok(())
        }),
    ];
    world
        .run(bodies, Box::new(RandomStrategy::new(seed)))
        .history
        .expect("lockstep records history")
}

/// Verifies the no-lost-signal property on one recorded history.
fn assert_no_lost_signal(history: &History, tag: &str) {
    let raises: Vec<(u64, u64)> = {
        // (start_step, end_step) per raise, paired by index.
        let starts: Vec<u64> = history
            .notes_labelled(RAISE_START)
            .map(|(s, _, _)| s)
            .collect();
        let ends: Vec<u64> = history
            .notes_labelled(RAISE_END)
            .map(|(s, _, _)| s)
            .collect();
        starts.into_iter().zip(ends).collect()
    };
    let lowers: Vec<u64> = history
        .notes_labelled(LOWER_END)
        .map(|(s, _, _)| s)
        .collect();
    let check_starts: Vec<u64> = history
        .notes_labelled(CHECK_START)
        .map(|(s, _, _)| s)
        .collect();
    let check_results: Vec<(u64, bool)> = history
        .notes_labelled(CHECK_RESULT)
        .map(|(_, _, n)| (n.data[0], n.data[1] == 1))
        .collect();

    for (idx, &(j, seen)) in check_results.iter().enumerate() {
        if seen {
            continue; // only "lowered" results can violate the property
        }
        let check_start = check_starts[idx];
        let last_lower_end = lowers[j as usize];
        // No raise may sit entirely inside (last_lower_end, check_start):
        // such a raise neither overlapped the lower (no absorption excuse)
        // nor was still in flight.
        for &(rs, re) in &raises {
            assert!(
                !(rs > last_lower_end && re < check_start),
                "{tag}: lost signal — raise [{rs},{re}] fully between lower end \
                 {last_lower_end} and check start {check_start} (check #{j})"
            );
        }
    }
}

#[test]
fn handshake_never_loses_a_clean_raise() {
    for seed in 0..200 {
        let h = run_one::<HandshakeArrow>(seed, 6, 6);
        assert_no_lost_signal(&h, &format!("handshake seed {seed}"));
    }
}

#[test]
fn direct_arrow_never_loses_a_clean_raise() {
    for seed in 0..200 {
        let h = run_one::<DirectArrow>(seed, 6, 6);
        assert_no_lost_signal(&h, &format!("direct seed {seed}"));
    }
}

#[test]
fn checker_is_falsifiable() {
    // A fake history with a lost signal must be rejected: lower ends at 10,
    // raise runs [12, 14], check starts at 20 and reports lowered.
    use bprc_sim::history::{Annotation, Event};
    let ev = vec![
        Event::Note {
            step: 10,
            pid: 1,
            note: Annotation::new(LOWER_END, vec![0]),
        },
        Event::Note {
            step: 12,
            pid: 0,
            note: Annotation::new(RAISE_START, vec![0]),
        },
        Event::Note {
            step: 14,
            pid: 0,
            note: Annotation::new(RAISE_END, vec![0]),
        },
        Event::Note {
            step: 20,
            pid: 1,
            note: Annotation::new(CHECK_START, vec![0]),
        },
        Event::Note {
            step: 22,
            pid: 1,
            note: Annotation::new(CHECK_RESULT, vec![0, 0]),
        },
    ];
    let h = History::from_events(ev);
    let caught = std::panic::catch_unwind(|| assert_no_lost_signal(&h, "fake"));
    assert!(caught.is_err(), "checker must reject a lost signal");
}
