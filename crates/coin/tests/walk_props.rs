//! Property-based tests of the coin's Monte-Carlo walk simulator: bounded
//! counters under arbitrary adversarial scripts, determinism, and
//! consistency of decisions with the decision rules.

use bprc_coin::flip::{FlipSource, ScriptedFlips};
use bprc_coin::montecarlo::{run_walk, WalkAdversary, WalkRandom, WalkView};
use bprc_coin::value::CoinValue;
use bprc_coin::CoinParams;
use proptest::prelude::*;

/// Replays a script of process choices (mod the active set), asserting the
/// counter bound on every view it is shown.
struct ScriptedAdversary {
    script: Vec<u8>,
    at: usize,
    cap: i64,
}

impl WalkAdversary for ScriptedAdversary {
    fn choose(&mut self, view: &WalkView<'_>) -> usize {
        for &c in view.counters {
            assert!(
                c.abs() <= self.cap,
                "counter {c} escaped ±(m+1) = ±{}",
                self.cap
            );
        }
        let pick = self.script.get(self.at).copied().unwrap_or(0) as usize;
        self.at += 1;
        view.active[pick % view.active.len()]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counters never escape ±(m+1) under any schedule or flip sequence,
    /// and with a generous budget every process decides.
    #[test]
    fn counters_bounded_under_arbitrary_schedules(
        n in 1usize..=5,
        b in 1u32..=3,
        m in 1i64..=6,
        schedule in proptest::collection::vec(0u8..8, 0..300),
        flip_bits in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let params = CoinParams::new(n, b, m);
        let flips: Vec<Box<dyn FlipSource>> = (0..n)
            .map(|p| {
                // Rotate the script per process for variety.
                let mut f = flip_bits.clone();
                f.rotate_left(p % flip_bits.len());
                Box::new(ScriptedFlips::new(f)) as Box<dyn FlipSource>
            })
            .collect();
        let mut adversary = ScriptedAdversary {
            script: schedule,
            at: 0,
            cap: params.counter_cap(),
        };
        let out = run_walk(&params, flips, &mut adversary, 1_000_000);
        // With a scripted flip source that repeats its last element, the
        // walk eventually drifts monotonically: everyone decides.
        prop_assert!(out.decisions.iter().all(|d| d.is_some()),
            "walk failed to decide: {:?}", out.decisions);
        // Decisions are heads/tails, never undecided.
        prop_assert!(out.decisions.iter().all(
            |d| matches!(d, Some(CoinValue::Heads) | Some(CoinValue::Tails))));
    }

    /// Monotone flip scripts decide the matching side (barring overflow,
    /// which forces heads).
    #[test]
    fn monotone_flips_decide_matching_side(
        n in 1usize..=4,
        b in 1u32..=3,
        heads in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let params = CoinParams::new(n, b, 1_000);
        let flips: Vec<Box<dyn FlipSource>> = (0..n)
            .map(|_| Box::new(ScriptedFlips::new(vec![heads])) as Box<dyn FlipSource>)
            .collect();
        let out = run_walk(&params, flips, &mut WalkRandom::new(seed), 1_000_000);
        let want = if heads { CoinValue::Heads } else { CoinValue::Tails };
        prop_assert!(out.decisions.iter().all(|d| *d == Some(want)),
            "all-{} flips decided {:?}", heads, out.decisions);
        prop_assert!(!out.disagreed);
    }

    /// The simulator is a pure function of (params, flips, adversary).
    #[test]
    fn run_walk_is_deterministic(
        n in 1usize..=4,
        seed in 0u64..500,
    ) {
        let params = CoinParams::new(n, 2, 100);
        let mk = || -> Vec<Box<dyn FlipSource>> {
            (0..n)
                .map(|p| Box::new(bprc_coin::flip::FairFlips::new(seed + p as u64))
                    as Box<dyn FlipSource>)
                .collect()
        };
        let a = run_walk(&params, mk(), &mut WalkRandom::new(seed), 1_000_000);
        let b = run_walk(&params, mk(), &mut WalkRandom::new(seed), 1_000_000);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.walk_steps, b.walk_steps);
    }
}
