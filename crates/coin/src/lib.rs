//! Bounded weak shared coin — §3 of the paper.
//!
//! A *weak shared coin* lets `n` asynchronous processes obtain (with high
//! probability) a common random bit, even against a strong adversary. The
//! construction is the random-walk coin of Aspnes–Herlihy \[AH88\]: each
//! process keeps a counter `c_i`; to "flip", a process repeatedly reads all
//! counters, and if the *walk value* `Σ c_i` has crossed `+b·n` decides
//! *heads*, below `−b·n` decides *tails*, and otherwise moves its own
//! counter by ±1 according to a local fair coin.
//!
//! The paper's contribution (this crate's reason to exist) is **bounding the
//! counters**: each `c_i` lives in `{−(m+1), …, m+1}`, and a process whose
//! own counter has escaped `{−m, …, m}` simply decides *heads*
//! deterministically. Lemmas 3.3/3.4 show that for `m` large enough
//! (`m = (f(b)·n)²`), the probability that any counter overflows within the
//! coin's lifetime is `O(b·n/√m)` — absorbable into the coin's inherent
//! disagreement probability (Lemma 3.1: `O(1/b)`), so boundedness costs
//! nothing asymptotically.
//!
//! Quantitative claims reproduced by the experiment harness (see
//! EXPERIMENTS.md):
//!
//! * Lemma 3.1 — disagreement probability `O(1/b)`;
//! * Lemma 3.2 — expected total steps to decide `≤ (b+1)²·n²`;
//! * Lemmas 3.3/3.4 — overflow probability `≤ C·b·n/√m`.
//!
//! Three layers are provided:
//!
//! * [`params::CoinParams`] and [`value`] — the pure decision rules
//!   (`coin_value`, clamped walk steps), shared with the consensus protocol;
//! * [`montecarlo`] — an exact single-machine simulator of the coin at
//!   register-operation granularity with pluggable adversaries, fast enough
//!   for millions of trials;
//! * [`shared`] — the same algorithm over real `bprc-sim` registers and
//!   threads, for full-stack validation.

//! # Example
//!
//! ```
//! use bprc_coin::montecarlo::{run_walk, WalkRoundRobin};
//! use bprc_coin::{CoinParams, CoinValue, FlipSource};
//! use bprc_coin::flip::FairFlips;
//!
//! # fn main() {
//! let params = CoinParams::new(3, 2, 1_000);
//! let flips: Vec<Box<dyn FlipSource>> = (0..3)
//!     .map(|p| Box::new(FairFlips::new(7 + p as u64)) as Box<dyn FlipSource>)
//!     .collect();
//! let outcome = run_walk(&params, flips, &mut WalkRoundRobin::new(), 1_000_000);
//! assert!(outcome.decisions.iter().all(|d| d.is_some()));
//! assert!(!outcome.disagreed, "fair schedule, big b: agreement");
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flip;
pub mod montecarlo;
pub mod params;
pub mod shared;
pub mod theory;
pub mod value;

pub use flip::{FlipSource, Flips};
pub use params::CoinParams;
pub use value::CoinValue;
