//! The shared coin over real `bprc-sim` registers — full-stack validation
//! of the same algorithm [`crate::montecarlo`] simulates.

use bprc_registers::Swmr;
use bprc_sim::{Counter, Ctx, Halted, PhaseKind, World};

use crate::flip::FlipSource;
use crate::params::CoinParams;
use crate::value::{coin_value_total, walk_step, CoinValue};

/// A bounded shared coin: one SWMR counter register per process.
#[derive(Debug, Clone)]
pub struct SharedCoin {
    params: CoinParams,
    counters: Vec<Swmr<i64>>,
}

impl SharedCoin {
    /// Allocates the coin's counters (all zero).
    pub fn new(world: &World, params: CoinParams) -> Self {
        assert_eq!(world.n(), params.n(), "coin size must match the world");
        let counters = (0..params.n())
            .map(|i| Swmr::new(world, format!("c_{i}"), i, 0i64))
            .collect();
        SharedCoin { params, counters }
    }

    /// The coin's parameters.
    pub fn params(&self) -> &CoinParams {
        &self.params
    }

    /// Takes process `pid`'s port.
    pub fn port(&self, pid: usize) -> CoinPort {
        assert!(pid < self.params.n(), "pid out of range");
        CoinPort {
            params: self.params,
            counters: self.counters.clone(),
            me: pid,
            own: 0,
            walk_steps: 0,
        }
    }

    /// Unscheduled view of the counters (diagnostics).
    pub fn peek_counters(&self) -> Vec<i64> {
        self.counters.iter().map(|c| c.peek()).collect()
    }
}

/// Process-local handle for flipping the shared coin.
#[derive(Debug)]
pub struct CoinPort {
    params: CoinParams,
    counters: Vec<Swmr<i64>>,
    me: usize,
    own: i64,
    walk_steps: u64,
}

impl CoinPort {
    /// Walk steps this process performed so far.
    pub fn walk_steps(&self) -> u64 {
        self.walk_steps
    }

    /// Evaluates the coin once: own-overflow check, then one collect of the
    /// other counters (paper's `coin_value`).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn coin_value(&mut self, ctx: &mut Ctx) -> Result<CoinValue, Halted> {
        if self.params.overflowed(self.own) {
            return Ok(CoinValue::Heads);
        }
        let mut total = self.own;
        for (j, c) in self.counters.iter().enumerate() {
            if j != self.me {
                total += c.read(ctx)?;
            }
        }
        Ok(coin_value_total(&self.params, self.own, total))
    }

    /// Performs one walk step (paper's `walk_step`): move the own counter by
    /// ±1 (saturating) according to `flips`, and publish it.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn walk_step(&mut self, ctx: &mut Ctx, flips: &mut dyn FlipSource) -> Result<(), Halted> {
        let before = self.own;
        self.own = walk_step(&self.params, self.own, flips.flip());
        self.walk_steps += 1;
        ctx.count(Counter::CoinFlips, 1);
        if self.own == before {
            // The flip tried to move past ±Kn and the clamp held it there.
            ctx.count(Counter::WalkExtremes, 1);
        }
        self.counters[self.me].write(ctx, self.own)
    }

    /// Flips the shared coin to completion: alternate `coin_value` /
    /// `walk_step` until decided (the paper's usage pattern).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process (e.g. the
    /// world's step limit expired first).
    pub fn flip(&mut self, ctx: &mut Ctx, flips: &mut dyn FlipSource) -> Result<CoinValue, Halted> {
        ctx.phase(PhaseKind::Coin);
        loop {
            match self.coin_value(ctx)? {
                CoinValue::Undecided => self.walk_step(ctx, flips)?,
                v => return Ok(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flip::{BiasedFlips, FairFlips};
    use bprc_sim::sched::{RandomStrategy, SoloBursts};
    use bprc_sim::world::{Mode, ProcBody};

    fn flip_bodies(
        coin: &SharedCoin,
        n: usize,
        mk_flips: impl Fn(usize) -> Box<dyn FlipSource>,
    ) -> Vec<ProcBody<CoinValue>> {
        (0..n)
            .map(|i| {
                let mut port = coin.port(i);
                let mut flips = mk_flips(i);
                let b: ProcBody<CoinValue> = Box::new(move |ctx| port.flip(ctx, flips.as_mut()));
                b
            })
            .collect()
    }

    #[test]
    fn lockstep_coin_decides_for_everyone() {
        for seed in 0..10 {
            let params = CoinParams::new(3, 2, 10_000);
            let mut world = bprc_sim::World::builder(3)
                .seed(seed)
                .step_limit(5_000_000)
                .build();
            let coin = SharedCoin::new(&world, params);
            let bodies = flip_bodies(&coin, 3, |i| {
                Box::new(FairFlips::new(seed * 100 + i as u64))
            });
            let rep = world.run(bodies, Box::new(RandomStrategy::new(seed)));
            assert!(
                rep.outputs.iter().all(|o| o.is_some()),
                "seed {seed}: some process failed to decide"
            );
        }
    }

    #[test]
    fn biased_flips_decide_the_expected_side() {
        let params = CoinParams::new(2, 2, 10_000);
        let mut world = bprc_sim::World::builder(2).step_limit(1_000_000).build();
        let coin = SharedCoin::new(&world, params);
        let bodies = flip_bodies(&coin, 2, |i| Box::new(BiasedFlips::new(i as u64, 0.0)));
        let rep = world.run(bodies, Box::new(RandomStrategy::new(1)));
        assert!(rep
            .outputs
            .iter()
            .all(|o| matches!(o, Some(CoinValue::Tails))));
    }

    #[test]
    fn counters_stay_bounded_through_the_run() {
        let params = CoinParams::new(2, 1, 3); // tiny m: overflow certain
        let mut world = bprc_sim::World::builder(2).step_limit(1_000_000).build();
        let coin = SharedCoin::new(&world, params);
        let bodies = flip_bodies(&coin, 2, |i| Box::new(FairFlips::new(i as u64)));
        let rep = world.run(bodies, Box::new(SoloBursts::new(13)));
        assert!(rep.outputs.iter().all(|o| o.is_some()));
        for c in coin.peek_counters() {
            assert!(
                c.abs() <= params.counter_cap(),
                "counter {c} escaped ±(m+1)"
            );
        }
    }

    #[test]
    fn telemetry_counts_flips_and_extremes() {
        // One process, always-heads flips: it walks straight to +Kn, then
        // every further step is a clamped extreme until the coin decides.
        let params = CoinParams::new(1, 2, 10_000);
        let mut world = bprc_sim::World::builder(1).step_limit(1_000_000).build();
        let coin = SharedCoin::new(&world, params);
        let mut port = coin.port(0);
        let bodies: Vec<ProcBody<(CoinValue, u64)>> = vec![Box::new(move |ctx| {
            let mut flips = BiasedFlips::new(7, 1.0);
            let v = port.flip(ctx, &mut flips)?;
            Ok((v, port.walk_steps()))
        })];
        let rep = world.run(bodies, Box::new(SoloBursts::new(64)));
        let (v, walk_steps) = rep.outputs[0].expect("decided");
        assert_eq!(v, CoinValue::Heads);
        let t = &rep.telemetry;
        // Every walk step consumed exactly one flip.
        assert_eq!(t.counter(0, Counter::CoinFlips), walk_steps);
        assert!(t.counter(0, Counter::CoinFlips) > 0);
        // All-heads from a fresh counter: no step is ever clamped before
        // the decision threshold (barrier Kn < decision boundary), so the
        // extreme count stays zero here...
        let extremes = t.counter(0, Counter::WalkExtremes);
        // ...unless the threshold sits past the cap; either way the count
        // can never exceed the flip count.
        assert!(extremes <= t.counter(0, Counter::CoinFlips));
        // The coin phase was announced.
        assert!(t
            .phases(0)
            .iter()
            .any(|p| p.kind == bprc_sim::PhaseKind::Coin));
    }

    #[test]
    fn free_running_threads_agree_usually() {
        // Large b: disagreement probability tiny; with OS scheduling we
        // simply require everyone decides and (for this seed) agreement.
        let params = CoinParams::new(4, 6, 100_000);
        let mut world = bprc_sim::World::builder(4)
            .mode(Mode::Free)
            .step_limit(u64::MAX)
            .build();
        let coin = SharedCoin::new(&world, params);
        let bodies = flip_bodies(&coin, 4, |i| Box::new(FairFlips::new(42 + i as u64)));
        let rep = world.run(bodies, Box::new(RandomStrategy::new(0)));
        let decided: Vec<_> = rep.outputs.iter().flatten().collect();
        assert_eq!(decided.len(), 4);
    }
}
