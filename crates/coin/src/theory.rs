//! Closed-form random-walk quantities for the "paper" columns of the
//! experiment tables.
//!
//! The coin is a symmetric ±1 random walk with absorbing barriers at `±B`
//! (where `B = b·n`). Classical facts used by the paper's lemmas:
//!
//! * expected absorption time from 0 is exactly `B²` (Lemma 3.2's
//!   `(b+1)²·n²` is this plus slack for stale reads);
//! * absorption probability at `+B` starting from `x` is `(x+B)/(2B)`;
//! * the probability of *not* being absorbed within `s` steps decays like
//!   `(4/π)·cos(π/2B)^s` (spectral bound — Lemma 3.3's `S_m ≤ C/f(b)` comes
//!   from summing this tail).

/// Expected number of steps for a symmetric walk from `start` to hit `±b`.
///
/// Classical gambler's-ruin identity: `E[T] = (b − start)·(b + start)`.
///
/// # Panics
///
/// Panics if `|start| > barrier` or `barrier == 0`.
pub fn expected_exit_time(barrier: i64, start: i64) -> f64 {
    assert!(barrier > 0, "barrier must be positive");
    assert!(start.abs() <= barrier, "start outside the barriers");
    ((barrier - start) as f64) * ((barrier + start) as f64)
}

/// Probability the walk from `start` exits at `+barrier` rather than
/// `−barrier`.
///
/// # Panics
///
/// Panics if `|start| > barrier` or `barrier == 0`.
pub fn exit_up_probability(barrier: i64, start: i64) -> f64 {
    assert!(barrier > 0, "barrier must be positive");
    assert!(start.abs() <= barrier, "start outside the barriers");
    ((start + barrier) as f64) / ((2 * barrier) as f64)
}

/// Spectral estimate of `P(walk stays strictly inside ±barrier for `steps`
/// steps)` — the survival probability the paper's Lemma 3.3 sums.
pub fn survival_probability_estimate(barrier: i64, steps: u64) -> f64 {
    assert!(barrier > 0, "barrier must be positive");
    let lambda = (std::f64::consts::PI / (2.0 * barrier as f64)).cos();
    (4.0 / std::f64::consts::PI) * lambda.powf(steps as f64)
}

/// Exact survival probability by dynamic programming over positions.
///
/// Returns `P(|S_k| < barrier for all k ≤ steps)` for the symmetric walk
/// from 0. Exponential-free, O(barrier·steps).
pub fn survival_probability_exact(barrier: i64, steps: u64) -> f64 {
    assert!(barrier > 0, "barrier must be positive");
    let width = (2 * barrier - 1) as usize; // positions −(B−1)..(B−1)
    let mut dist = vec![0.0f64; width];
    dist[(barrier - 1) as usize] = 1.0; // position 0
    for _ in 0..steps {
        let mut next = vec![0.0f64; width];
        for (i, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            if i > 0 {
                next[i - 1] += 0.5 * p;
            }
            if i + 1 < width {
                next[i + 1] += 0.5 * p;
            }
            // Mass stepping outside ±(B−1) is absorbed (dropped).
        }
        dist = next;
    }
    dist.iter().sum()
}

/// Exact expected absorption time by dynamic programming (cross-checks
/// [`expected_exit_time`]; used in tests and the harness's sanity pass).
pub fn expected_exit_time_dp(barrier: i64, horizon: u64) -> f64 {
    let mut expectation = 0.0;
    // E[T] = Σ_{s≥0} P(T > s); truncate at `horizon`.
    for s in 0..horizon {
        expectation += survival_probability_exact(barrier, s);
    }
    expectation
}

/// Lemma 3.4's overflow bound `C·b·n/√m` with `C = 1` (shape comparison).
pub fn overflow_bound(b: u32, n: usize, m: i64) -> f64 {
    (b as f64) * (n as f64) / (m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_time_from_zero_is_b_squared() {
        assert_eq!(expected_exit_time(5, 0), 25.0);
        assert_eq!(expected_exit_time(12, 0), 144.0);
    }

    #[test]
    fn exit_time_from_edge_is_small() {
        assert_eq!(expected_exit_time(5, 4), 9.0);
        assert_eq!(expected_exit_time(5, -5), 0.0);
    }

    #[test]
    fn exit_up_probability_is_linear() {
        assert_eq!(exit_up_probability(4, 0), 0.5);
        assert_eq!(exit_up_probability(4, 4), 1.0);
        assert_eq!(exit_up_probability(4, -4), 0.0);
        assert_eq!(exit_up_probability(4, 2), 0.75);
    }

    #[test]
    fn survival_decays_with_steps() {
        let b = 6;
        let s10 = survival_probability_exact(b, 10);
        let s100 = survival_probability_exact(b, 100);
        let s500 = survival_probability_exact(b, 500);
        assert!(s10 > s100);
        assert!(s100 > s500);
        assert!((0.0..=1.0).contains(&s500));
    }

    #[test]
    fn spectral_estimate_tracks_exact_for_large_steps() {
        let b = 8;
        for steps in [200u64, 400, 800] {
            let exact = survival_probability_exact(b, steps);
            let est = survival_probability_estimate(b, steps);
            if exact > 1e-12 {
                let ratio = est / exact;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "steps={steps}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn dp_expected_exit_matches_identity() {
        let b = 6i64;
        // Horizon 50·B² truncates a negligible tail.
        let dp = expected_exit_time_dp(b, (50 * b * b) as u64);
        let exact = expected_exit_time(b, 0);
        assert!(
            (dp - exact).abs() < 0.05 * exact,
            "dp {dp} vs exact {exact}"
        );
    }

    #[test]
    fn exact_survival_matches_monte_carlo() {
        // Cross-check the DP against straightforward simulation.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let barrier = 5i64;
        let steps = 30u64;
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 20_000;
        let mut survived = 0u32;
        for _ in 0..trials {
            let mut pos = 0i64;
            let mut alive = true;
            for _ in 0..steps {
                pos += if rng.gen::<bool>() { 1 } else { -1 };
                if pos.abs() >= barrier {
                    alive = false;
                    break;
                }
            }
            if alive {
                survived += 1;
            }
        }
        let empirical = survived as f64 / trials as f64;
        let exact = survival_probability_exact(barrier, steps);
        assert!(
            (empirical - exact).abs() < 0.02,
            "empirical {empirical} vs exact {exact}"
        );
    }

    #[test]
    fn overflow_bound_shrinks_with_m() {
        assert!(overflow_bound(2, 4, 10_000) < overflow_bound(2, 4, 100));
        assert_eq!(overflow_bound(1, 1, 1), 1.0);
    }
}
