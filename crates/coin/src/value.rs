//! The pure decision rules of the coin (paper §3 pseudocode).

use crate::params::CoinParams;

/// Outcome of evaluating the shared coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoinValue {
    /// The walk crossed `+b·n` (or the caller's counter overflowed).
    Heads,
    /// The walk crossed `−b·n`.
    Tails,
    /// Neither barrier crossed: take another walk step.
    Undecided,
}

impl CoinValue {
    /// Is this a decided value?
    pub fn is_decided(&self) -> bool {
        !matches!(self, CoinValue::Undecided)
    }

    /// Converts heads/tails to a bit (`heads = true`).
    ///
    /// # Panics
    ///
    /// Panics on [`CoinValue::Undecided`].
    pub fn as_bool(&self) -> bool {
        match self {
            CoinValue::Heads => true,
            CoinValue::Tails => false,
            CoinValue::Undecided => panic!("coin is undecided"),
        }
    }
}

impl From<bool> for CoinValue {
    fn from(heads: bool) -> Self {
        if heads {
            CoinValue::Heads
        } else {
            CoinValue::Tails
        }
    }
}

/// The paper's `coin_value(ē)` function for process `i`:
///
/// 1. if `c_i ∉ {−m..m}` → *heads* (the bounded-counter escape hatch);
/// 2. if `Σ c_j > b·n` → *heads*;
/// 3. if `Σ c_j < −b·n` → *tails*;
/// 4. otherwise → *undecided*.
///
/// `own` is the caller's own counter (from its local copy), `counters` the
/// values it read for everyone (including slot `i`; the caller substitutes
/// its local copy there before calling).
pub fn coin_value(params: &CoinParams, own: i64, counters: &[i64]) -> CoinValue {
    debug_assert_eq!(counters.len(), params.n());
    coin_value_total(params, own, counters.iter().sum())
}

/// [`coin_value`] when the walk value `Σ c_j` is already summed.
pub fn coin_value_total(params: &CoinParams, own: i64, total: i64) -> CoinValue {
    if params.overflowed(own) {
        return CoinValue::Heads;
    }
    if total > params.barrier() {
        CoinValue::Heads
    } else if total < -params.barrier() {
        CoinValue::Tails
    } else {
        CoinValue::Undecided
    }
}

/// The paper's `walk_step`: move a counter by ±1, saturating at `±(m+1)`.
/// Returns the new counter value.
pub fn walk_step(params: &CoinParams, counter: i64, heads: bool) -> i64 {
    params.clamp_counter(counter + if heads { 1 } else { -1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CoinParams {
        CoinParams::new(3, 2, 10) // barrier 6, counters in ±11
    }

    #[test]
    fn barrier_crossings() {
        assert_eq!(coin_value(&p(), 0, &[3, 3, 1]), CoinValue::Heads);
        assert_eq!(coin_value(&p(), 0, &[-3, -3, -1]), CoinValue::Tails);
        assert_eq!(coin_value(&p(), 0, &[3, 3, 0]), CoinValue::Undecided);
        assert_eq!(coin_value(&p(), 0, &[-6, 0, 0]), CoinValue::Undecided);
    }

    #[test]
    fn own_overflow_forces_heads_even_if_walk_says_tails() {
        // own = 11 > m = 10: deterministic heads regardless of the sum.
        assert_eq!(coin_value(&p(), 11, &[-9, -9, 11]), CoinValue::Heads);
        assert_eq!(coin_value(&p(), -11, &[-9, -9, -11]), CoinValue::Heads);
    }

    #[test]
    fn walk_step_moves_and_saturates() {
        assert_eq!(walk_step(&p(), 0, true), 1);
        assert_eq!(walk_step(&p(), 0, false), -1);
        assert_eq!(walk_step(&p(), 11, true), 11, "saturates at m+1");
        assert_eq!(walk_step(&p(), -11, false), -11);
    }

    #[test]
    fn value_helpers() {
        assert!(CoinValue::Heads.is_decided());
        assert!(!CoinValue::Undecided.is_decided());
        assert!(CoinValue::Heads.as_bool());
        assert!(!CoinValue::Tails.as_bool());
        assert_eq!(CoinValue::from(true), CoinValue::Heads);
        assert_eq!(CoinValue::from(false), CoinValue::Tails);
    }

    #[test]
    #[should_panic(expected = "undecided")]
    fn undecided_as_bool_panics() {
        let _ = CoinValue::Undecided.as_bool();
    }
}
