//! Local coin-flip sources.
//!
//! The model gives each process a *local* fair coin the adversary cannot
//! bias (it sees outcomes only after they are flipped). For experiments we
//! also want biased and scripted sources — e.g. to verify that the walk's
//! barriers and the overflow rule behave as analyzed under worst-case flip
//! sequences.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A source of local coin flips (`true` = heads).
pub trait FlipSource: Send {
    /// Draws the next flip.
    fn flip(&mut self) -> bool;
}

/// A fair seeded flip source.
#[derive(Debug, Clone)]
pub struct FairFlips {
    rng: SmallRng,
}

impl FairFlips {
    /// Creates a fair source from a seed.
    pub fn new(seed: u64) -> Self {
        FairFlips {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FlipSource for FairFlips {
    fn flip(&mut self) -> bool {
        self.rng.gen::<bool>()
    }
}

/// A biased source: heads with probability `p`.
#[derive(Debug, Clone)]
pub struct BiasedFlips {
    rng: SmallRng,
    p: f64,
}

impl BiasedFlips {
    /// Creates a source with `P(heads) = p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        BiasedFlips {
            rng: SmallRng::seed_from_u64(seed),
            p,
        }
    }
}

impl FlipSource for BiasedFlips {
    fn flip(&mut self) -> bool {
        self.rng.gen::<f64>() < self.p
    }
}

/// A scripted source: replays a fixed sequence, then repeats its last
/// element (or heads if empty). For deterministic worst-case tests.
#[derive(Debug, Clone)]
pub struct ScriptedFlips {
    script: Vec<bool>,
    at: usize,
}

impl ScriptedFlips {
    /// Creates a source replaying `script`.
    pub fn new(script: Vec<bool>) -> Self {
        ScriptedFlips { script, at: 0 }
    }
}

impl FlipSource for ScriptedFlips {
    fn flip(&mut self) -> bool {
        let v = self.script.get(self.at).copied();
        if self.at < self.script.len() {
            self.at += 1;
        }
        v.or_else(|| self.script.last().copied()).unwrap_or(true)
    }
}

/// A closed, clonable sum of the flip sources in this module, plus a
/// [`Flips::Queue`] variant that draws from an externally loaded queue —
/// the hook the model checker uses to *branch* on flip outcomes instead of
/// sampling them.
///
/// Protocol cores store a `Flips` (rather than a `Box<dyn FlipSource>`) so
/// they stay `Clone`-able, which exhaustive state-space exploration needs.
#[derive(Debug, Clone)]
pub enum Flips {
    /// Fair seeded flips.
    Fair(FairFlips),
    /// Biased flips.
    Biased(BiasedFlips),
    /// Scripted flips.
    Scripted(ScriptedFlips),
    /// Flips drawn from a queue loaded by the driver; **panics when empty**
    /// (the model checker always pre-loads exactly one outcome before a
    /// step that might flip).
    Queue(std::collections::VecDeque<bool>),
}

impl Flips {
    /// A fair source from a seed.
    pub fn fair(seed: u64) -> Self {
        Flips::Fair(FairFlips::new(seed))
    }

    /// An empty queue source (load with [`Flips::push_outcome`]).
    pub fn queue() -> Self {
        Flips::Queue(std::collections::VecDeque::new())
    }

    /// Appends a predetermined outcome (only for [`Flips::Queue`]).
    ///
    /// # Panics
    ///
    /// Panics on non-queue variants.
    pub fn push_outcome(&mut self, heads: bool) {
        match self {
            Flips::Queue(q) => q.push_back(heads),
            _ => panic!("push_outcome requires a Flips::Queue source"),
        }
    }

    /// Outcomes currently queued (0 for non-queue variants).
    pub fn queued(&self) -> usize {
        match self {
            Flips::Queue(q) => q.len(),
            _ => 0,
        }
    }
}

impl FlipSource for Flips {
    fn flip(&mut self) -> bool {
        match self {
            Flips::Fair(f) => f.flip(),
            Flips::Biased(f) => f.flip(),
            Flips::Scripted(f) => f.flip(),
            Flips::Queue(q) => q
                .pop_front()
                .expect("flip queue exhausted: the driver must pre-load outcomes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_enum_dispatches() {
        let mut f = Flips::fair(3);
        let a: Vec<bool> = (0..8).map(|_| f.flip()).collect();
        let mut g = Flips::fair(3);
        let b: Vec<bool> = (0..8).map(|_| g.flip()).collect();
        assert_eq!(a, b);
        let mut s = Flips::Scripted(ScriptedFlips::new(vec![true, false]));
        assert!(s.flip());
        assert!(!s.flip());
    }

    #[test]
    fn queue_variant_replays_loaded_outcomes() {
        let mut q = Flips::queue();
        assert_eq!(q.queued(), 0);
        q.push_outcome(true);
        q.push_outcome(false);
        assert_eq!(q.queued(), 2);
        assert!(q.flip());
        assert!(!q.flip());
        assert_eq!(q.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn empty_queue_panics() {
        let mut q = Flips::queue();
        let _ = q.flip();
    }

    #[test]
    fn fair_is_reproducible_and_roughly_fair() {
        let mut a = FairFlips::new(5);
        let mut b = FairFlips::new(5);
        let sa: Vec<bool> = (0..64).map(|_| a.flip()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.flip()).collect();
        assert_eq!(sa, sb);
        let heads = sa.iter().filter(|&&h| h).count();
        assert!((10..=54).contains(&heads), "wildly unfair: {heads}/64");
    }

    #[test]
    fn biased_extremes() {
        let mut always = BiasedFlips::new(1, 1.0);
        let mut never = BiasedFlips::new(1, 0.0);
        assert!((0..32).all(|_| always.flip()));
        assert!((0..32).all(|_| !never.flip()));
    }

    #[test]
    fn scripted_replays_then_repeats_last() {
        let mut s = ScriptedFlips::new(vec![true, false, false]);
        assert_eq!(
            (0..5).map(|_| s.flip()).collect::<Vec<_>>(),
            vec![true, false, false, false, false]
        );
        let mut empty = ScriptedFlips::new(vec![]);
        assert!(empty.flip(), "empty script defaults to heads");
    }
}
