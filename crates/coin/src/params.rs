//! Parameters of the bounded shared coin.

use std::fmt;

/// Parameters `(n, b, m)` of the bounded random-walk coin (paper §3).
///
/// * `n` — number of processes;
/// * `b` — barrier multiplier: the walk decides once `|Σ c_i| > b·n`;
/// * `m` — per-process counter bound: counters live in `{−(m+1), …, m+1}`
///   and a counter outside `{−m, …, m}` makes its owner decide *heads*.
///
/// Lemma 3.1 makes the coin's disagreement probability `O(1/b)`; Lemma 3.4
/// keeps the overflow probability `O(b·n/√m)`. [`CoinParams::recommended`]
/// picks `m = (2·b·n)²·n²` (i.e. `f(b) = 2·b·n` in Lemma 3.3's
/// `m = (f(b)·n)²`), which keeps overflow far below disagreement for
/// laptop-scale `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoinParams {
    n: usize,
    b: u32,
    m: i64,
}

impl CoinParams {
    /// Creates parameters with an explicit counter bound `m`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `b == 0`, or `m < 1`.
    pub fn new(n: usize, b: u32, m: i64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(b >= 1, "barrier multiplier must be positive");
        assert!(m >= 1, "counter bound must be positive");
        CoinParams { n, b, m }
    }

    /// Creates parameters with the paper-recommended counter bound
    /// `m = (2·b·n²)²` (Lemma 3.3 with `f(b) = 2·b·n`).
    pub fn recommended(n: usize, b: u32) -> Self {
        let f = 2 * b as i64 * n as i64;
        let m = (f * n as i64).pow(2);
        Self::new(n, b, m)
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Barrier multiplier `b`.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Counter bound `m`.
    pub fn m(&self) -> i64 {
        self.m
    }

    /// The walk barrier `b·n`.
    pub fn barrier(&self) -> i64 {
        self.b as i64 * self.n as i64
    }

    /// Lemma 3.2's bound on the expected number of steps: `(b+1)²·n²`.
    pub fn expected_steps_bound(&self) -> f64 {
        let b1 = (self.b as f64) + 1.0;
        b1 * b1 * (self.n as f64) * (self.n as f64)
    }

    /// The absolute saturation value `m+1` a counter may reach.
    pub fn counter_cap(&self) -> i64 {
        self.m + 1
    }

    /// Clamps a counter movement to the representable range (the paper's
    /// counters saturate at `±(m+1)`).
    pub fn clamp_counter(&self, c: i64) -> i64 {
        c.clamp(-self.counter_cap(), self.counter_cap())
    }

    /// Is this counter value in the overflow zone (`∉ {−m..m}`)?
    pub fn overflowed(&self, c: i64) -> bool {
        c < -self.m || c > self.m
    }
}

impl fmt::Display for CoinParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coin(n={}, b={}, m={})", self.n, self.b, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_derived_values() {
        let p = CoinParams::new(4, 3, 100);
        assert_eq!(p.n(), 4);
        assert_eq!(p.b(), 3);
        assert_eq!(p.m(), 100);
        assert_eq!(p.barrier(), 12);
        assert_eq!(p.counter_cap(), 101);
        assert_eq!(p.expected_steps_bound(), 16.0 * 16.0);
    }

    #[test]
    fn recommended_m_grows_with_b_and_n() {
        let a = CoinParams::recommended(2, 1);
        let b = CoinParams::recommended(2, 4);
        let c = CoinParams::recommended(8, 1);
        assert!(b.m() > a.m());
        assert!(c.m() > a.m());
    }

    #[test]
    fn clamp_saturates_at_cap() {
        let p = CoinParams::new(2, 1, 5);
        assert_eq!(p.clamp_counter(100), 6);
        assert_eq!(p.clamp_counter(-100), -6);
        assert_eq!(p.clamp_counter(3), 3);
    }

    #[test]
    fn overflow_zone_is_outside_pm_m() {
        let p = CoinParams::new(2, 1, 5);
        assert!(!p.overflowed(5));
        assert!(!p.overflowed(-5));
        assert!(p.overflowed(6));
        assert!(p.overflowed(-6));
    }

    #[test]
    #[should_panic(expected = "barrier")]
    fn zero_b_rejected() {
        let _ = CoinParams::new(2, 0, 5);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CoinParams::new(2, 1, 5).to_string(), "coin(n=2, b=1, m=5)");
    }
}
