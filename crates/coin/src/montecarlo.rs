//! Exact single-machine simulation of the shared coin at register-operation
//! granularity, with pluggable adversaries — the workhorse behind
//! experiments E1–E3.
//!
//! Each process executes the paper's loop:
//!
//! ```text
//! loop {
//!   v := coin_value(ē)        // own-overflow check, then n−1 counter reads
//!   if v ≠ undecided: return v
//!   walk_step                  // one write of the own counter
//! }
//! ```
//!
//! Every *shared-memory operation* (one counter read, or the own-counter
//! write) is a separately schedulable event, so the adversary can stall a
//! process in the middle of its collect — the interleaving that creates the
//! coin's disagreement probability in the first place.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::flip::{FairFlips, FlipSource};
use crate::params::CoinParams;
use crate::value::{coin_value_total, walk_step, CoinValue};

/// Where a process is in its check/step cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkPhase {
    /// Mid-collect: `read` foreign counters read so far, summing to `sum`.
    Collect {
        /// How many foreign counters have been read.
        read: usize,
        /// Sum of the counters read so far.
        sum: i64,
    },
    /// About to perform a walk step (write the own counter).
    Step,
    /// Decided.
    Done(CoinValue),
}

/// What a [`WalkAdversary`] sees.
#[derive(Debug)]
pub struct WalkView<'a> {
    /// Current counter values (index = pid).
    pub counters: &'a [i64],
    /// Current phase of every process.
    pub phases: &'a [WalkPhase],
    /// Undecided pids, ascending.
    pub active: &'a [usize],
    /// Events applied so far.
    pub events: u64,
}

impl WalkView<'_> {
    /// The current walk value `Σ c_i`.
    pub fn total(&self) -> i64 {
        self.counters.iter().sum()
    }
}

/// The strong adversary for the standalone coin.
pub trait WalkAdversary {
    /// Chooses which active process performs its next shared-memory event.
    fn choose(&mut self, view: &WalkView<'_>) -> usize;
}

/// Fair rotation.
#[derive(Debug, Clone, Default)]
pub struct WalkRoundRobin {
    next: usize,
}

impl WalkRoundRobin {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalkAdversary for WalkRoundRobin {
    fn choose(&mut self, view: &WalkView<'_>) -> usize {
        let pick = view
            .active
            .iter()
            .copied()
            .find(|&p| p >= self.next)
            .unwrap_or(view.active[0]);
        self.next = pick + 1;
        pick
    }
}

/// Uniformly random active process (seeded).
#[derive(Debug, Clone)]
pub struct WalkRandom {
    rng: SmallRng,
}

impl WalkRandom {
    /// Creates the strategy from a seed.
    pub fn new(seed: u64) -> Self {
        WalkRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl WalkAdversary for WalkRandom {
    fn choose(&mut self, view: &WalkView<'_>) -> usize {
        view.active[self.rng.gen_range(0..view.active.len())]
    }
}

/// The stale-collect attack (needs `n ≥ 3` to bite):
///
/// 1. **Drive**: run everyone but the victim until the walk value climbs
///    near `+b·n`;
/// 2. **Collect**: let the victim read all but one foreign counter (its
///    partial sum is now large and stale);
/// 3. **Freeze**: run the others; if the walk happens to drift down and they
///    decide *tails*, release the victim — its stale prefix plus one fresh
///    read can still exceed `+b·n`, deciding *heads*. Disagreement.
///
/// The success probability of step 3 is what Lemma 3.1 bounds (`O(1/b)`);
/// measuring disagreement under this adversary reproduces that shape.
#[derive(Debug, Clone)]
pub struct StaleCollectAdversary {
    victim: usize,
    rr: usize,
}

impl StaleCollectAdversary {
    /// Creates the adversary with the given victim pid.
    pub fn new(victim: usize) -> Self {
        StaleCollectAdversary { victim, rr: 0 }
    }

    fn pick_other(&mut self, view: &WalkView<'_>) -> usize {
        let others: Vec<usize> = view
            .active
            .iter()
            .copied()
            .filter(|&p| p != self.victim)
            .collect();
        if others.is_empty() {
            return self.victim;
        }
        self.rr = (self.rr + 1) % others.len();
        others[self.rr]
    }
}

impl WalkAdversary for StaleCollectAdversary {
    fn choose(&mut self, view: &WalkView<'_>) -> usize {
        let n = view.counters.len();
        if !view.active.contains(&self.victim) {
            return self.pick_other(view);
        }
        let total = view.total();
        match &view.phases[self.victim] {
            WalkPhase::Collect { read, .. } if *read + 2 == n => {
                // One foreign read remaining: freeze the victim (its partial
                // sum is now stale) and run the others.
                self.pick_other(view)
            }
            _ => {
                // Advance the victim only while the walk is comfortably
                // positive (so its stale prefix is large); otherwise drive
                // the others.
                if total >= n as i64 {
                    self.victim
                } else {
                    self.pick_other(view)
                }
            }
        }
    }
}

/// Result of simulating one coin.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// Per-process decision (None if the event budget ran out first).
    pub decisions: Vec<Option<CoinValue>>,
    /// Shared-memory events applied.
    pub events: u64,
    /// Walk steps (counter writes) applied — the quantity Lemma 3.2 bounds.
    pub walk_steps: u64,
    /// Did any counter enter the overflow zone?
    pub overflowed: bool,
    /// Did both Heads and Tails get decided?
    pub disagreed: bool,
}

impl WalkOutcome {
    /// True when every process decided the same value.
    pub fn agreed(&self) -> bool {
        !self.disagreed && self.decisions.iter().all(|d| d.is_some())
    }
}

/// Simulates one shared coin to completion (or `max_events`).
///
/// `flips` supplies each process's local coin; the adversary schedules.
///
/// # Panics
///
/// Panics if `flips.len() != params.n()`.
pub fn run_walk(
    params: &CoinParams,
    mut flips: Vec<Box<dyn FlipSource>>,
    adversary: &mut dyn WalkAdversary,
    max_events: u64,
) -> WalkOutcome {
    let n = params.n();
    assert_eq!(flips.len(), n, "one flip source per process");
    let mut counters = vec![0i64; n];
    let mut phases: Vec<WalkPhase> = vec![WalkPhase::Collect { read: 0, sum: 0 }; n];
    let mut events = 0u64;
    let mut walk_steps = 0u64;
    let mut overflowed = false;

    loop {
        let active: Vec<usize> = (0..n)
            .filter(|&p| !matches!(phases[p], WalkPhase::Done(_)))
            .collect();
        if active.is_empty() || events >= max_events {
            break;
        }
        let pid = {
            let view = WalkView {
                counters: &counters,
                phases: &phases,
                active: &active,
                events,
            };
            adversary.choose(&view)
        };
        assert!(active.contains(&pid), "adversary chose inactive {pid}");
        events += 1;
        match phases[pid].clone() {
            WalkPhase::Collect { read, sum } => {
                // Own-overflow check costs no shared ops; do it at the start
                // of a collect.
                if read == 0 && params.overflowed(counters[pid]) {
                    phases[pid] = WalkPhase::Done(CoinValue::Heads);
                    continue;
                }
                // Read the next foreign counter (skipping self).
                let foreign: Vec<usize> = (0..n).filter(|&j| j != pid).collect();
                if let Some(&j) = foreign.get(read) {
                    let sum = sum + counters[j];
                    let read = read + 1;
                    if read == foreign.len() {
                        let total = sum + counters[pid];
                        match coin_value_total(params, counters[pid], total) {
                            CoinValue::Undecided => phases[pid] = WalkPhase::Step,
                            v => phases[pid] = WalkPhase::Done(v),
                        }
                    } else {
                        phases[pid] = WalkPhase::Collect { read, sum };
                    }
                } else {
                    // n == 1: no foreign counters; evaluate immediately.
                    let total = counters[pid];
                    match coin_value_total(params, counters[pid], total) {
                        CoinValue::Undecided => phases[pid] = WalkPhase::Step,
                        v => phases[pid] = WalkPhase::Done(v),
                    }
                }
            }
            WalkPhase::Step => {
                let heads = flips[pid].flip();
                counters[pid] = walk_step(params, counters[pid], heads);
                if params.overflowed(counters[pid]) {
                    overflowed = true;
                }
                walk_steps += 1;
                phases[pid] = WalkPhase::Collect { read: 0, sum: 0 };
            }
            WalkPhase::Done(_) => unreachable!("inactive process scheduled"),
        }
    }

    let decisions: Vec<Option<CoinValue>> = phases
        .iter()
        .map(|p| match p {
            WalkPhase::Done(v) => Some(*v),
            _ => None,
        })
        .collect();
    let heads = decisions
        .iter()
        .any(|d| matches!(d, Some(CoinValue::Heads)));
    let tails = decisions
        .iter()
        .any(|d| matches!(d, Some(CoinValue::Tails)));
    WalkOutcome {
        decisions,
        events,
        walk_steps,
        overflowed,
        disagreed: heads && tails,
    }
}

/// Aggregates of many independent coins.
#[derive(Debug, Clone, Default)]
pub struct TrialStats {
    /// Completed trials.
    pub trials: u64,
    /// Trials where processes disagreed.
    pub disagreements: u64,
    /// Trials where some counter overflowed.
    pub overflows: u64,
    /// Trials that exhausted the event budget.
    pub timeouts: u64,
    /// Trials where all deciders said heads.
    pub all_heads: u64,
    /// Mean walk steps per trial.
    pub mean_walk_steps: f64,
    /// Mean shared-memory events per trial.
    pub mean_events: f64,
}

impl TrialStats {
    /// Empirical disagreement probability.
    pub fn disagreement_rate(&self) -> f64 {
        self.disagreements as f64 / self.trials.max(1) as f64
    }

    /// Empirical overflow probability.
    pub fn overflow_rate(&self) -> f64 {
        self.overflows as f64 / self.trials.max(1) as f64
    }

    /// Empirical probability that the common outcome was heads (over trials
    /// that agreed on heads).
    pub fn heads_rate(&self) -> f64 {
        self.all_heads as f64 / self.trials.max(1) as f64
    }
}

/// Runs `trials` independent coins with fair local flips.
///
/// `mk_adversary` builds a fresh adversary per trial (seeded by the trial
/// index so runs are reproducible).
pub fn run_trials(
    params: &CoinParams,
    trials: u64,
    seed: u64,
    max_events_per_trial: u64,
    mut mk_adversary: impl FnMut(u64) -> Box<dyn WalkAdversary>,
) -> TrialStats {
    let mut stats = TrialStats {
        trials,
        ..Default::default()
    };
    let mut total_walk = 0f64;
    let mut total_events = 0f64;
    for t in 0..trials {
        let flips: Vec<Box<dyn FlipSource>> = (0..params.n())
            .map(|p| {
                Box::new(FairFlips::new(bprc_sim::rng::derive_seed(
                    seed,
                    t * params.n() as u64 + p as u64,
                ))) as Box<dyn FlipSource>
            })
            .collect();
        let mut adversary = mk_adversary(t);
        let out = run_walk(params, flips, adversary.as_mut(), max_events_per_trial);
        if out.disagreed {
            stats.disagreements += 1;
        }
        if out.overflowed {
            stats.overflows += 1;
        }
        if out.decisions.iter().any(|d| d.is_none()) {
            stats.timeouts += 1;
        }
        if out
            .decisions
            .iter()
            .all(|d| matches!(d, Some(CoinValue::Heads)))
        {
            stats.all_heads += 1;
        }
        total_walk += out.walk_steps as f64;
        total_events += out.events as f64;
    }
    stats.mean_walk_steps = total_walk / trials.max(1) as f64;
    stats.mean_events = total_events / trials.max(1) as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flip::{BiasedFlips, ScriptedFlips};

    fn boxed_fair(n: usize, seed: u64) -> Vec<Box<dyn FlipSource>> {
        (0..n)
            .map(|p| Box::new(FairFlips::new(seed + p as u64)) as Box<dyn FlipSource>)
            .collect()
    }

    #[test]
    fn single_process_decides() {
        let p = CoinParams::new(1, 2, 100);
        let out = run_walk(&p, boxed_fair(1, 7), &mut WalkRoundRobin::new(), 1_000_000);
        assert!(out.decisions[0].is_some());
        assert!(!out.disagreed);
    }

    #[test]
    fn all_heads_under_biased_flips() {
        let p = CoinParams::new(3, 2, 100);
        let flips: Vec<Box<dyn FlipSource>> = (0..3)
            .map(|i| Box::new(BiasedFlips::new(i, 1.0)) as Box<dyn FlipSource>)
            .collect();
        let out = run_walk(&p, flips, &mut WalkRoundRobin::new(), 1_000_000);
        assert!(out
            .decisions
            .iter()
            .all(|d| matches!(d, Some(CoinValue::Heads))));
        assert!(!out.disagreed);
    }

    #[test]
    fn all_tails_under_antibiased_flips() {
        let p = CoinParams::new(3, 2, 100);
        let flips: Vec<Box<dyn FlipSource>> = (0..3)
            .map(|i| Box::new(BiasedFlips::new(i, 0.0)) as Box<dyn FlipSource>)
            .collect();
        let out = run_walk(&p, flips, &mut WalkRoundRobin::new(), 1_000_000);
        assert!(out
            .decisions
            .iter()
            .all(|d| matches!(d, Some(CoinValue::Tails))));
    }

    #[test]
    fn tiny_counter_bound_forces_overflow_heads() {
        // m = 1 with barrier 4: a process's counter saturates long before the
        // walk can reach the barrier going down... with all-tails flips the
        // counters all sink to -(m+1) = -2 and everyone overflows to Heads.
        let p = CoinParams::new(2, 2, 1);
        let flips: Vec<Box<dyn FlipSource>> = (0..2)
            .map(|_| Box::new(ScriptedFlips::new(vec![false])) as Box<dyn FlipSource>)
            .collect();
        let out = run_walk(&p, flips, &mut WalkRoundRobin::new(), 100_000);
        assert!(out.overflowed);
        assert!(out
            .decisions
            .iter()
            .all(|d| matches!(d, Some(CoinValue::Heads))));
    }

    #[test]
    fn counters_never_exceed_cap() {
        let p = CoinParams::new(3, 1, 4);
        // Check invariant across the run by re-running many short prefixes.
        for max in [10, 50, 200, 1000] {
            let out = run_walk(&p, boxed_fair(3, 99), &mut WalkRandom::new(5), max);
            let _ = out;
            // The invariant lives inside walk_step's clamp; verify via a
            // scripted extreme:
        }
        let flips: Vec<Box<dyn FlipSource>> = (0..3)
            .map(|_| Box::new(BiasedFlips::new(0, 1.0)) as Box<dyn FlipSource>)
            .collect();
        let out = run_walk(&p, flips, &mut WalkRoundRobin::new(), 10_000);
        assert!(out.events < 10_000, "should decide quickly");
    }

    #[test]
    fn trials_are_reproducible() {
        let p = CoinParams::new(3, 1, 50);
        let s1 = run_trials(&p, 20, 11, 100_000, |t| Box::new(WalkRandom::new(t)));
        let s2 = run_trials(&p, 20, 11, 100_000, |t| Box::new(WalkRandom::new(t)));
        assert_eq!(s1.disagreements, s2.disagreements);
        assert_eq!(s1.mean_walk_steps, s2.mean_walk_steps);
    }

    #[test]
    fn mean_steps_scale_with_barrier() {
        // Lemma 3.2 shape: steps grow with b (quadratically). Just check
        // monotonicity with loose trials.
        let small = run_trials(&CoinParams::new(2, 1, 10_000), 30, 3, 10_000_000, |t| {
            Box::new(WalkRandom::new(t))
        });
        let large = run_trials(&CoinParams::new(2, 4, 10_000), 30, 3, 10_000_000, |t| {
            Box::new(WalkRandom::new(t))
        });
        assert!(
            large.mean_walk_steps > small.mean_walk_steps,
            "b=4 walk ({}) should out-step b=1 walk ({})",
            large.mean_walk_steps,
            small.mean_walk_steps
        );
        assert_eq!(small.timeouts, 0);
    }

    #[test]
    fn stale_collect_adversary_runs_to_completion() {
        let p = CoinParams::new(3, 1, 1_000);
        let stats = run_trials(&p, 50, 17, 1_000_000, |_| {
            Box::new(StaleCollectAdversary::new(0))
        });
        assert_eq!(stats.timeouts, 0, "adversary must not deadlock the coin");
        // Disagreement is possible but not guaranteed; rate must be a
        // probability.
        assert!(stats.disagreement_rate() <= 1.0);
    }

    #[test]
    fn round_robin_agreement_is_overwhelming_with_big_b() {
        let p = CoinParams::new(3, 8, 1_000_000);
        let stats = run_trials(&p, 25, 23, 50_000_000, |_| Box::new(WalkRoundRobin::new()));
        assert_eq!(stats.timeouts, 0);
        assert_eq!(
            stats.disagreements, 0,
            "fair schedule + big b should agree in 25 trials"
        );
    }
}
