//! Edge-case coverage for the lockstep scheduler — the most safety-critical
//! piece of infrastructure in the workspace (every deterministic result
//! rests on it).

use bprc_sim::history::OpKind;
use bprc_sim::sched::{CrashPlan, FnStrategy, RandomStrategy, RoundRobin, SoloBursts};
use bprc_sim::world::{Mode, ProcBody, World};
use bprc_sim::{Decision, Halted};

#[test]
fn strategies_see_pending_ops() {
    // The strong adversary may inspect what each process is about to do.
    let mut w = World::builder(2).build();
    let a = w.reg("a", 0u8);
    let b = w.reg("b", 0u8);
    let (a0, b1) = (a.clone(), b.clone());
    let bodies: Vec<ProcBody<()>> = vec![
        Box::new(move |ctx| {
            a0.write_tagged(ctx, 1, 11)?;
            Ok(())
        }),
        Box::new(move |ctx| {
            b1.read(ctx)?;
            Ok(())
        }),
    ];
    let (aid, bid) = (a.id(), b.id());
    let seen_write = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let seen_read = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (sw, sr) = (seen_write.clone(), seen_read.clone());
    let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
        if let Some(op) = view.pending_of(0) {
            assert_eq!(op.kind, OpKind::Write);
            assert_eq!(op.reg, aid);
            assert_eq!(op.tag, 11);
            sw.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(op) = view.pending_of(1) {
            assert_eq!(op.kind, OpKind::Read);
            assert_eq!(op.reg, bid);
            sr.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        Decision::Grant(view.runnable[0])
    });
    let _ = w.run(bodies, Box::new(strategy));
    assert!(seen_write.load(std::sync::atomic::Ordering::Relaxed));
    assert!(seen_read.load(std::sync::atomic::Ordering::Relaxed));
}

#[test]
fn crashing_every_process_terminates_the_world() {
    let mut w = World::builder(3).build();
    let r = w.reg("r", 0u8);
    let bodies: Vec<ProcBody<u8>> = (0..3)
        .map(|_| {
            let r = r.clone();
            let b: ProcBody<u8> = Box::new(move |ctx| loop {
                r.write(ctx, 1)?;
            });
            b
        })
        .collect();
    let strategy = CrashPlan::new(RoundRobin::new(), vec![(0, 0), (0, 1), (0, 2)]);
    let rep = w.run(bodies, Box::new(strategy));
    assert!(rep.outputs.iter().all(|o| o.is_none()));
    assert!(rep
        .halted
        .iter()
        .all(|h| matches!(h, Some(Halted::Crashed))));
}

#[test]
fn crash_mid_multi_op_sequence_loses_nothing_written() {
    // A process crashed between its two writes leaves exactly the first one.
    let mut w = World::builder(2).build();
    let a = w.reg("a", 0u8);
    let b = w.reg("b", 0u8);
    let (a0, b0) = (a.clone(), b.clone());
    let r_b = b.clone();
    let bodies: Vec<ProcBody<u8>> = vec![
        Box::new(move |ctx| {
            a0.write(ctx, 7)?;
            b0.write(ctx, 7)?; // never granted
            Ok(0)
        }),
        Box::new(move |ctx| r_b.read(ctx)),
    ];
    // Grant p0 its first write, then crash it, then run p1.
    let mut step = 0;
    let strategy = FnStrategy::new(move |_view: &bprc_sim::ScheduleView<'_>| {
        step += 1;
        match step {
            1 => Decision::Grant(0),
            2 => Decision::Crash(0),
            _ => Decision::Grant(1),
        }
    });
    let rep = w.run(bodies, Box::new(strategy));
    assert_eq!(a.peek(), 7, "first write landed");
    assert_eq!(rep.outputs[1], Some(0), "second write never did");
}

#[test]
fn histories_are_identical_across_reruns_with_solo_bursts() {
    let run = || {
        let mut w = World::builder(3).seed(5).build();
        let r = w.reg("r", 0u64);
        let bodies: Vec<ProcBody<u64>> = (0..3)
            .map(|i| {
                let r = r.clone();
                let b: ProcBody<u64> = Box::new(move |ctx| {
                    for k in 0..10 {
                        r.write(ctx, i as u64 * 100 + k)?;
                    }
                    r.read(ctx)
                });
                b
            })
            .collect();
        let rep = w.run(bodies, Box::new(SoloBursts::new(4)));
        let ops: Vec<_> = rep.history.unwrap().ops().collect();
        (rep.outputs.clone(), ops)
    };
    assert_eq!(run(), run());
}

#[test]
fn step_limit_zero_halts_immediately() {
    let mut w = World::builder(1).step_limit(0).build();
    let r = w.reg("r", 0u8);
    let bodies: Vec<ProcBody<u8>> = vec![Box::new(move |ctx| r.read(ctx))];
    let rep = w.run(bodies, Box::new(RoundRobin::new()));
    assert_eq!(rep.halted[0], Some(Halted::StepLimit));
    assert_eq!(rep.steps, 0);
}

#[test]
fn free_mode_with_many_threads_is_linearizable_per_register() {
    // 8 threads hammer one register; whatever the interleaving, every read
    // observes some written value (or the initial one).
    let mut w = World::builder(8)
        .mode(Mode::Free)
        .step_limit(u64::MAX)
        .build();
    let r = w.reg("r", 0u64);
    let bodies: Vec<ProcBody<()>> = (0..8)
        .map(|i| {
            let r = r.clone();
            let b: ProcBody<()> = Box::new(move |ctx| {
                for k in 0..200u64 {
                    r.write(ctx, (i as u64) << 32 | k)?;
                    let v = r.read(ctx)?;
                    let writer = v >> 32;
                    let val = v & 0xFFFF_FFFF;
                    assert!(writer < 8 && val < 200 || v == 0, "torn value {v:#x}");
                }
                Ok(())
            });
            b
        })
        .collect();
    let rep = w.run(bodies, Box::new(RoundRobin::new()));
    assert_eq!(rep.decided_count(), 8);
}

#[test]
fn bodies_that_never_touch_memory_finish() {
    let mut w = World::builder(2).build();
    let bodies: Vec<ProcBody<u32>> = vec![Box::new(|_| Ok(1)), Box::new(|_| Ok(2))];
    let rep = w.run(bodies, Box::new(RoundRobin::new()));
    assert_eq!(rep.outputs, vec![Some(1), Some(2)]);
    assert_eq!(rep.steps, 0);
}

#[test]
fn annotations_keep_deterministic_order() {
    let run = || {
        let mut w = World::builder(2).seed(3).build();
        let r = w.reg("r", 0u8);
        let bodies: Vec<ProcBody<()>> = (0..2)
            .map(|i| {
                let r = r.clone();
                let b: ProcBody<()> = Box::new(move |ctx| {
                    for k in 0..5u64 {
                        ctx.annotate("tick", vec![i as u64, k]);
                        r.write(ctx, k as u8)?;
                    }
                    Ok(())
                });
                b
            })
            .collect();
        let rep = w.run(bodies, Box::new(RandomStrategy::new(9)));
        rep.history
            .unwrap()
            .notes_labelled("tick")
            .map(|(s, p, n)| (s, p, n.data.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
