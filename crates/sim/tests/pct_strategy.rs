//! Distribution sanity for the PCT strategy (Burckhardt et al.): priority
//! assignments are fair across seeds, the d=0 degenerate case is strict
//! priority scheduling, and the strategy behaves identically on both
//! register planes.

use bprc_sim::sched::PctStrategy;
use bprc_sim::world::{ProcBody, World};
use bprc_sim::RegisterPlane;

const N: usize = 4;
const SEEDS: u64 = 50;

/// Each process bumps its own counter register a few times and reads a
/// shared register, so every pid has observable scheduled work.
fn bodies(w: &World) -> Vec<ProcBody<u64>> {
    let shared = w.fast_reg("shared", 0u64);
    (0..N)
        .map(|pid| {
            let own = w.fast_reg(format!("c{pid}"), 0u64);
            let shared = shared.clone();
            let b: ProcBody<u64> = Box::new(move |ctx| {
                let mut last = 0;
                for k in 1..=5u64 {
                    own.write(ctx, k)?;
                    last = shared.read(ctx)?;
                }
                Ok(last + pid as u64)
            });
            b
        })
        .collect()
}

/// Across 50 seeds and both register planes: every pid gets scheduled
/// (takes steps and finishes), i.e. no priority assignment starves anyone
/// forever on a finite workload.
#[test]
fn every_pid_is_eventually_scheduled_across_seeds_and_planes() {
    for plane in [RegisterPlane::Fast, RegisterPlane::Locked] {
        for seed in 0..SEEDS {
            let mut w = World::builder(N).seed(0).register_plane(plane).build();
            let bodies = bodies(&w);
            let rep = w.run(bodies, Box::new(PctStrategy::new(seed, N, 3, 100)));
            assert_eq!(
                rep.decided_count(),
                N,
                "plane {plane:?} seed {seed}: a pid never finished"
            );
            for pid in 0..N {
                assert!(
                    rep.per_proc_steps[pid] > 0,
                    "plane {plane:?} seed {seed}: pid {pid} was never granted a step"
                );
            }
        }
    }
}

/// Initial priorities are a permutation of d+1..=d+n, and over 50 seeds the
/// top priority lands on every pid at least once — the sampler is not
/// biased toward any position.
#[test]
fn priority_assignments_are_permutations_and_unbiased() {
    let d = 3usize;
    let mut led = [false; N];
    for seed in 0..SEEDS {
        let strat = PctStrategy::new(seed, N, d, 100);
        let mut sorted = strat.priorities().to_vec();
        sorted.sort_unstable();
        let want: Vec<u64> = (1..=N as u64).map(|i| d as u64 + i).collect();
        assert_eq!(sorted, want, "seed {seed}: not a permutation of d+1..=d+n");
        let leader = (0..N).max_by_key(|&p| strat.priorities()[p]).unwrap();
        led[leader] = true;
    }
    assert!(
        led.iter().all(|&x| x),
        "over {SEEDS} seeds every pid must lead at least once: {led:?}"
    );
}

/// d = 0 means no change points: the schedule is strict priority order.
/// Every process runs to completion as one contiguous block, and the
/// blocks appear in descending initial priority.
#[test]
fn zero_change_points_degenerate_to_strict_priority_order() {
    for plane in [RegisterPlane::Fast, RegisterPlane::Locked] {
        for seed in 0..SEEDS {
            let strat = PctStrategy::new(seed, N, 0, 100);
            let prios = strat.priorities().to_vec();
            let mut expect: Vec<usize> = (0..N).collect();
            expect.sort_by_key(|&p| std::cmp::Reverse(prios[p]));

            let mut w = World::builder(N).seed(0).register_plane(plane).build();
            let bodies = bodies(&w);
            let rep = w.run(bodies, Box::new(strat));
            let grant_pids: Vec<usize> = rep
                .history
                .as_ref()
                .unwrap()
                .ops()
                .map(|(_, pid, _, _, _)| pid)
                .collect();

            // Contiguous blocks in expected order.
            let mut blocks: Vec<usize> = Vec::new();
            for pid in grant_pids {
                if blocks.last() != Some(&pid) {
                    blocks.push(pid);
                }
            }
            assert_eq!(
                blocks, expect,
                "plane {plane:?} seed {seed}: d=0 must serialize by priority"
            );
        }
    }
}

/// The plane knob is invisible to PCT: identical seeds produce identical
/// outputs, steps, and op sequences on Fast and Locked.
#[test]
fn pct_runs_identically_on_both_planes() {
    let run = |plane: RegisterPlane, seed: u64| {
        let mut w = World::builder(N).seed(0).register_plane(plane).build();
        let bodies = bodies(&w);
        let rep = w.run(bodies, Box::new(PctStrategy::new(seed, N, 2, 60)));
        let ops: Vec<_> = rep.history.as_ref().unwrap().ops().collect();
        (rep.outputs.clone(), rep.steps, ops)
    };
    for seed in 0..SEEDS {
        assert_eq!(
            run(RegisterPlane::Fast, seed),
            run(RegisterPlane::Locked, seed),
            "seed {seed}: plane changed PCT-observable behaviour"
        );
    }
}
