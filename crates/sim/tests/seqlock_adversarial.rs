//! Adversarial coverage for the seqlock-backed fast register plane.
//!
//! The fast plane replaces the `RwLock` cell with a word-packed seqlock
//! (`reg.rs`). Its one safety obligation is atomicity of the visible value:
//! a reader must never observe a mix of two different writes. These tests
//! attack that from three directions — real OS-thread races in free mode,
//! adversarial lockstep schedules across many seeds, and a cross-plane
//! equivalence check that the plane is invisible to scheduling, telemetry,
//! and history recording.

use bprc_sim::sched::{RandomStrategy, RoundRobin};
use bprc_sim::world::{Mode, ProcBody, World};
use bprc_sim::{Counter, RegisterPlane};

/// A value whose two halves must always agree: the writer only ever stores
/// `(k, 3k)`, so any observed pair with `b != 3a` is a torn read.
fn pair(k: u64) -> (u64, u64) {
    (k, k.wrapping_mul(3))
}

fn assert_untorn(v: (u64, u64)) {
    assert_eq!(
        v.1,
        v.0.wrapping_mul(3),
        "torn read: observed ({}, {}) which is not of the form (k, 3k)",
        v.0,
        v.1
    );
}

/// Free-mode (real OS threads): one writer bursts pair-invariant values while
/// three readers hammer the register. Repeated across 100+ seeds so the
/// thread interleavings get many chances to line up badly.
#[test]
fn free_threads_never_observe_torn_pairs_across_seeds() {
    for seed in 0..110u64 {
        let mut w = World::builder(4)
            .seed(seed)
            .mode(Mode::Free)
            .step_limit(u64::MAX)
            .build();
        let r = w.fast_reg("pair", pair(0));
        assert!(r.is_fast(), "(u64,u64) must take the seqlock backing");
        let writer = {
            let r = r.clone();
            let b: ProcBody<()> = Box::new(move |ctx| {
                for k in 1..=60u64 {
                    r.write(ctx, pair(seed.wrapping_mul(1000) + k))?;
                }
                Ok(())
            });
            b
        };
        let readers = (0..3).map(|_| {
            let r = r.clone();
            let b: ProcBody<()> = Box::new(move |ctx| {
                for _ in 0..60 {
                    assert_untorn(r.read(ctx)?);
                }
                Ok(())
            });
            b
        });
        let mut bodies = vec![writer];
        bodies.extend(readers);
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.decided_count(), 4, "seed {seed}: all bodies finish");
        assert_untorn(r.peek());
    }
}

/// Lockstep with a randomized adversary across 100+ seeds: the writer bursts
/// mid-run while readers interleave at every granted step. Lockstep grants
/// ops one at a time, so this checks the fast plane preserves per-op
/// atomicity under every schedule the adversary picks — and that `peek`
/// (which bypasses scheduling entirely) also never sees a torn pair.
#[test]
fn random_lockstep_schedules_never_observe_torn_pairs() {
    for seed in 0..120u64 {
        let mut w = World::builder(3).seed(seed).build();
        let r = w.fast_reg("pair", pair(0));
        let writer = {
            let r = r.clone();
            let b: ProcBody<()> = Box::new(move |ctx| {
                for k in 1..=20u64 {
                    r.write(ctx, pair(k))?;
                }
                Ok(())
            });
            b
        };
        let readers = (0..2).map(|_| {
            let r = r.clone();
            let b: ProcBody<()> = Box::new(move |ctx| {
                for _ in 0..20 {
                    assert_untorn(r.read(ctx)?);
                }
                Ok(())
            });
            b
        });
        let mut bodies = vec![writer];
        bodies.extend(readers);
        let rep = w.run(bodies, Box::new(RandomStrategy::new(seed)));
        assert_eq!(rep.decided_count(), 3, "seed {seed}");
        assert_untorn(r.peek());
    }
}

/// The register plane is a memory-representation knob only: the same seeded
/// run on the fast plane and the locked plane must produce identical outputs,
/// step counts, telemetry counters, and recorded histories.
#[test]
fn fast_and_locked_planes_are_observationally_identical() {
    let run = |plane: RegisterPlane, seed: u64| {
        let mut w = World::builder(3).seed(seed).register_plane(plane).build();
        let r = w.fast_reg("pair", pair(0));
        let bodies: Vec<ProcBody<u64>> = (0..3)
            .map(|i| {
                let r = r.clone();
                let b: ProcBody<u64> = Box::new(move |ctx| {
                    for k in 1..=12u64 {
                        r.write(ctx, pair(i as u64 * 100 + k))?;
                        let v = r.read(ctx)?;
                        assert_untorn(v);
                    }
                    Ok(r.read(ctx)?.0)
                });
                b
            })
            .collect();
        let rep = w.run(bodies, Box::new(RandomStrategy::new(seed)));
        let ops: Vec<_> = rep.history.as_ref().unwrap().ops().collect();
        let reads: Vec<u64> = (0..3)
            .map(|p| rep.telemetry.counter(p, Counter::RegReads))
            .collect();
        let writes: Vec<u64> = (0..3)
            .map(|p| rep.telemetry.counter(p, Counter::RegWrites))
            .collect();
        (rep.outputs.clone(), rep.steps, ops, reads, writes)
    };
    for seed in [0, 1, 7, 42, 99] {
        let fast = run(RegisterPlane::Fast, seed);
        let locked = run(RegisterPlane::Locked, seed);
        assert_eq!(
            fast, locked,
            "seed {seed}: plane changed observable behaviour"
        );
    }
}

/// Exhaustive schedule exploration on the fast plane: every interleaving of
/// a writer/reader pair (n=2 DFS via `bprc_sim::explore`) yields untorn
/// reads, and the per-schedule observables — outputs, step counts, recorded
/// ops — are identical to the Locked plane, schedule by schedule. This is
/// the strongest form of the plane-equivalence claim: not just along sampled
/// seeds but along *all* schedules of the bounded workload.
#[test]
fn exhaustive_exploration_is_plane_invariant() {
    use bprc_sim::explore::{explore, ExploreConfig};

    let explore_plane = |plane: RegisterPlane| {
        let factory = move || {
            let w = World::builder(2).seed(0).register_plane(plane).build();
            let r = w.fast_reg("pair", pair(0));
            let writer = {
                let r = r.clone();
                let b: ProcBody<u64> = Box::new(move |ctx| {
                    for k in 1..=3u64 {
                        r.write(ctx, pair(k))?;
                    }
                    Ok(0)
                });
                b
            };
            let reader = {
                let r = r.clone();
                let b: ProcBody<u64> = Box::new(move |ctx| {
                    let mut last = (0, 0);
                    for _ in 0..3 {
                        last = r.read(ctx)?;
                        assert_untorn(last);
                    }
                    Ok(last.0)
                });
                b
            };
            (w, vec![writer, reader])
        };
        let mut fingerprints: Vec<(Vec<Option<u64>>, u64, String)> = Vec::new();
        let rep = explore(&ExploreConfig::default(), factory, |r| {
            fingerprints.push((
                r.outputs.clone(),
                r.steps,
                r.history.as_ref().unwrap().to_jsonl(),
            ));
            None
        });
        assert!(rep.exhausted, "plane {plane:?}: space must be enumerated");
        assert!(rep.violation.is_none());
        (fingerprints, rep.schedules)
    };

    let (fast, fast_n) = explore_plane(RegisterPlane::Fast);
    let (locked, locked_n) = explore_plane(RegisterPlane::Locked);
    // 3 writes vs 3 reads of one register: C(6,3) = 20 interleavings, all
    // dependent (no pruning applies between a write and anything).
    assert_eq!(fast_n, 20, "writer/reader pair has C(6,3) schedules");
    assert_eq!(fast_n, locked_n);
    assert_eq!(
        fast, locked,
        "some schedule distinguishes the planes observationally"
    );
}

/// Large payloads silently take the lock backing; the fast constructor must
/// still behave identically to `reg` for them.
#[test]
fn oversized_payloads_fall_back_to_the_locked_cell() {
    let mut w = World::builder(1).build();
    // A 5-word tuple is over MAX_FAST_WORDS on the packing side — the type
    // doesn't implement FastPod at all, so `reg` is the only route; check
    // the fast route's fallback knob instead via the Locked plane.
    let mut wl = World::builder(1)
        .register_plane(RegisterPlane::Locked)
        .build();
    let rf = w.fast_reg("x", (1u64, 2u64));
    let rl = wl.fast_reg("x", (1u64, 2u64));
    assert!(rf.is_fast());
    assert!(!rl.is_fast(), "Locked plane must force the RwLock backing");
    let bodies = |r: bprc_sim::Reg<(u64, u64)>| -> Vec<ProcBody<(u64, u64)>> {
        vec![Box::new(move |ctx| {
            r.write(ctx, (7, 21))?;
            r.read(ctx)
        })]
    };
    let a = w.run(bodies(rf), Box::new(RoundRobin::new()));
    let b = wl.run(bodies(rl), Box::new(RoundRobin::new()));
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.steps, b.steps);
}
