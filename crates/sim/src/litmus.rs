//! Litmus-test corpus for the weak-memory fidelity plane.
//!
//! Each [`LitmusProgram`] is a tiny register program with one *forbidden
//! outcome* — an observation that sequential consistency rules out. The
//! corpus pins the store-buffer model's physics both ways:
//!
//! * under [`WeakMode::Sc`] the forbidden outcome must be **unreachable**
//!   over an exhaustive exploration of all interleavings, and
//! * under the modes listed in [`LitmusProgram::found_under`] the explorer
//!   must **find** it (and under the weak modes *not* listed, the model's
//!   own physics — FIFO buffers under TSO, no read delaying ever — must
//!   keep it unreachable).
//!
//! The five programs are the classic corpus:
//!
//! | name       | forbidden outcome                           | TSO | PSO |
//! |------------|---------------------------------------------|-----|-----|
//! | `sb`       | both reads miss both writes                 | ✓   | ✓   |
//! | `mp`       | flag seen set but data still at init        | ✗   | ✓   |
//! | `lb`       | both reads see the *later* writes           | ✗   | ✗   |
//! | `iriw`     | two readers disagree on the write order     | ✗   | ✗   |
//! | `peterson` | both processes inside the critical section  | ✓   | ✓   |
//!
//! `mp` stays sound under TSO because a single FIFO buffer cannot reorder
//! two writes by the same process; `lb` and `iriw` stay sound under both
//! because this model never delays reads (multi-copy atomicity): a read is
//! answered from the process's own buffer or from the single shared memory
//! image at its scheduled step.
//!
//! Programs return their local observations as `u64` outputs;
//! [`LitmusProgram::check`] maps a [`RunReport`] to `Some(explanation)`
//! exactly when the forbidden outcome was observed — the same shape the
//! explorer's property checks use, so a program drops straight into
//! [`explore`](crate::explore::ExploreConfig::explore).

use crate::weakmem::WeakMode;
use crate::world::{ProcBody, RegisterPlane, RunReport, World};

/// One litmus program: a builder for (world, bodies) plus the forbidden
/// outcome as a checkable property.
pub struct LitmusProgram {
    /// Corpus name (`sb`, `mp`, `lb`, `iriw`, `peterson`).
    pub name: &'static str,
    /// Number of processes.
    pub n: usize,
    /// Weak modes under which the forbidden outcome is reachable. Empty
    /// means the model keeps the program SC-equivalent even with store
    /// buffers (a model-soundness pin, not a gap in the corpus).
    pub found_under: &'static [WeakMode],
    /// Builds a fresh world (on `plane`, buffering per `mode`) and the
    /// process bodies. Registers go through
    /// [`World::fast_reg`](crate::world::World::fast_reg) so the plane
    /// decides the backing.
    pub build: fn(RegisterPlane, WeakMode) -> (World, Vec<ProcBody<u64>>),
    /// Returns `Some(explanation)` iff the run observed the forbidden
    /// outcome.
    pub check: fn(&RunReport<u64>) -> Option<String>,
}

impl LitmusProgram {
    /// Whether exploration under `mode` is expected to find the forbidden
    /// outcome.
    pub fn expected_found(&self, mode: WeakMode) -> bool {
        self.found_under.contains(&mode)
    }
}

impl std::fmt::Debug for LitmusProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LitmusProgram")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("found_under", &self.found_under)
            .finish()
    }
}

fn world(n: usize, plane: RegisterPlane, mode: WeakMode) -> World {
    World::builder(n)
        .register_plane(plane)
        .weak_memory(mode)
        .build()
}

/// Store buffering (SB): `P0: x=1; r0=y` / `P1: y=1; r1=x`.
/// Forbidden: `r0 == 0 && r1 == 0` — each read overtook the other
/// process's (and its own, still-buffered) write.
fn build_sb(plane: RegisterPlane, mode: WeakMode) -> (World, Vec<ProcBody<u64>>) {
    let w = world(2, plane, mode);
    let x = w.fast_reg("x", 0u64);
    let y = w.fast_reg("y", 0u64);
    let (x0, y0) = (x.clone(), y.clone());
    let bodies: Vec<ProcBody<u64>> = vec![
        Box::new(move |ctx| {
            x0.write(ctx, 1)?;
            y0.read(ctx)
        }),
        Box::new(move |ctx| {
            y.write(ctx, 1)?;
            x.read(ctx)
        }),
    ];
    (w, bodies)
}

fn check_sb(report: &RunReport<u64>) -> Option<String> {
    if report.outputs[0] == Some(0) && report.outputs[1] == Some(0) {
        Some(
            "sb: both reads returned 0 — each store stayed buffered past the \
             other process's load"
                .to_string(),
        )
    } else {
        None
    }
}

/// Message passing (MP): `P0: data=1; flag=1` / `P1: rf=flag; rd=data`.
/// P1 returns `rf * 10 + rd`; forbidden outcome is `10` — the flag was
/// observed set while the data it publishes was still at init.
fn build_mp(plane: RegisterPlane, mode: WeakMode) -> (World, Vec<ProcBody<u64>>) {
    let w = world(2, plane, mode);
    let data = w.fast_reg("data", 0u64);
    let flag = w.fast_reg("flag", 0u64);
    let (data1, flag1) = (data.clone(), flag.clone());
    let bodies: Vec<ProcBody<u64>> = vec![
        Box::new(move |ctx| {
            data.write(ctx, 1)?;
            flag.write(ctx, 1)?;
            Ok(0)
        }),
        Box::new(move |ctx| {
            let rf = flag1.read(ctx)?;
            let rd = data1.read(ctx)?;
            Ok(rf * 10 + rd)
        }),
    ];
    (w, bodies)
}

fn check_mp(report: &RunReport<u64>) -> Option<String> {
    if report.outputs[1] == Some(10) {
        Some(
            "mp: reader saw flag == 1 but data == 0 — the data store was \
             reordered past the flag store"
                .to_string(),
        )
    } else {
        None
    }
}

/// Load buffering (LB): `P0: r0=x; y=1` / `P1: r1=y; x=1`.
/// Forbidden: `r0 == 1 && r1 == 1` — each load would have to read from a
/// write that is *po-after* the other load. Unreachable in this model
/// under every mode: store buffers delay writes, never advance reads.
fn build_lb(plane: RegisterPlane, mode: WeakMode) -> (World, Vec<ProcBody<u64>>) {
    let w = world(2, plane, mode);
    let x = w.fast_reg("x", 0u64);
    let y = w.fast_reg("y", 0u64);
    let (x0, y0) = (x.clone(), y.clone());
    let bodies: Vec<ProcBody<u64>> = vec![
        Box::new(move |ctx| {
            let r0 = x0.read(ctx)?;
            y0.write(ctx, 1)?;
            Ok(r0)
        }),
        Box::new(move |ctx| {
            let r1 = y.read(ctx)?;
            x.write(ctx, 1)?;
            Ok(r1)
        }),
    ];
    (w, bodies)
}

fn check_lb(report: &RunReport<u64>) -> Option<String> {
    if report.outputs[0] == Some(1) && report.outputs[1] == Some(1) {
        Some("lb: both loads read the po-later writes — reads were reordered".to_string())
    } else {
        None
    }
}

/// Independent reads of independent writes (IRIW): `P0: x=1` / `P1: y=1` /
/// `P2: rx=x; ry=y` / `P3: ry=y; rx=x`. Readers return `first * 10 +
/// second`; forbidden is both returning `10` — P2 says x landed before y,
/// P3 says y landed before x. Unreachable here under every mode: there is
/// one shared memory image and forwarding only covers a process's *own*
/// stores, so the model is multi-copy atomic.
fn build_iriw(plane: RegisterPlane, mode: WeakMode) -> (World, Vec<ProcBody<u64>>) {
    let w = world(4, plane, mode);
    let x = w.fast_reg("x", 0u64);
    let y = w.fast_reg("y", 0u64);
    let (x2, y2) = (x.clone(), y.clone());
    let (x3, y3) = (x.clone(), y.clone());
    let bodies: Vec<ProcBody<u64>> = vec![
        Box::new(move |ctx| {
            x.write(ctx, 1)?;
            Ok(0)
        }),
        Box::new(move |ctx| {
            y.write(ctx, 1)?;
            Ok(0)
        }),
        Box::new(move |ctx| {
            let rx = x2.read(ctx)?;
            let ry = y2.read(ctx)?;
            Ok(rx * 10 + ry)
        }),
        Box::new(move |ctx| {
            let ry = y3.read(ctx)?;
            let rx = x3.read(ctx)?;
            Ok(ry * 10 + rx)
        }),
    ];
    (w, bodies)
}

fn check_iriw(report: &RunReport<u64>) -> Option<String> {
    if report.outputs[2] == Some(10) && report.outputs[3] == Some(10) {
        Some(
            "iriw: the two readers observed the independent writes in \
             opposite orders"
                .to_string(),
        )
    } else {
        None
    }
}

/// Peterson's lock entry protocol, give-up variant: each process runs the
/// entry sequence once (`flag[me]=1; turn=other;` then read the other
/// flag and `turn`) and *backs off* instead of spinning when contended.
/// Entering is a strict subset of what the spinning original allows, and
/// nobody releases, so under SC **at most one** process can pass the gate
/// (the first-entry mutual-exclusion argument: whoever wrote `turn` last
/// sees the other's flag). Returns `2` for entered, `0` for backed off;
/// forbidden outcome is both returning `2`. Under TSO/PSO both flag
/// stores can stay buffered past both entry reads, so both gates read
/// `flag[other] == 0` and both processes walk in.
fn build_peterson(plane: RegisterPlane, mode: WeakMode) -> (World, Vec<ProcBody<u64>>) {
    let w = world(2, plane, mode);
    let flags = [w.fast_reg("flag0", 0u64), w.fast_reg("flag1", 0u64)];
    let turn = w.fast_reg("turn", 0u64);
    let bodies: Vec<ProcBody<u64>> = (0..2usize)
        .map(|me| {
            let other = 1 - me;
            let my_flag = flags[me].clone();
            let their_flag = flags[other].clone();
            let turn = turn.clone();
            let body: ProcBody<u64> = Box::new(move |ctx| {
                my_flag.write(ctx, 1)?;
                turn.write(ctx, other as u64)?;
                let f = their_flag.read(ctx)?;
                let t = turn.read(ctx)?;
                if f != 0 && t == other as u64 {
                    // Contended: the spinning original would wait here.
                    return Ok(0);
                }
                Ok(2)
            });
            body
        })
        .collect();
    (w, bodies)
}

fn check_peterson(report: &RunReport<u64>) -> Option<String> {
    if report.outputs[0] == Some(2) && report.outputs[1] == Some(2) {
        Some(
            "peterson: both processes passed the entry gate — the buffered \
             flag stores hid the contention"
                .to_string(),
        )
    } else {
        None
    }
}

/// The full corpus, in a stable order.
pub fn corpus() -> Vec<LitmusProgram> {
    vec![
        LitmusProgram {
            name: "sb",
            n: 2,
            found_under: &[WeakMode::Tso, WeakMode::Pso],
            build: build_sb,
            check: check_sb,
        },
        LitmusProgram {
            name: "mp",
            n: 2,
            found_under: &[WeakMode::Pso],
            build: build_mp,
            check: check_mp,
        },
        LitmusProgram {
            name: "lb",
            n: 2,
            found_under: &[],
            build: build_lb,
            check: check_lb,
        },
        LitmusProgram {
            name: "iriw",
            n: 4,
            found_under: &[],
            build: build_iriw,
            check: check_iriw,
        },
        LitmusProgram {
            name: "peterson",
            n: 2,
            found_under: &[WeakMode::Tso, WeakMode::Pso],
            build: build_peterson,
            check: check_peterson,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;

    #[test]
    fn corpus_is_stable() {
        let names: Vec<_> = corpus().iter().map(|p| p.name).collect();
        assert_eq!(names, ["sb", "mp", "lb", "iriw", "peterson"]);
    }

    #[test]
    fn programs_run_clean_under_round_robin_sc() {
        for plane in [RegisterPlane::Packed, RegisterPlane::Locked] {
            for prog in corpus() {
                let (mut w, bodies) = (prog.build)(plane, WeakMode::Sc);
                let report = w.run(bodies, Box::new(RoundRobin::new()));
                assert_eq!(
                    (prog.check)(&report),
                    None,
                    "{} observed its forbidden outcome under SC round-robin",
                    prog.name
                );
            }
        }
    }

    #[test]
    fn expected_found_reads_the_matrix() {
        let c = corpus();
        let sb = &c[0];
        assert!(sb.expected_found(WeakMode::Tso));
        assert!(!sb.expected_found(WeakMode::Sc));
        let mp = &c[1];
        assert!(mp.expected_found(WeakMode::Pso));
        assert!(!mp.expected_found(WeakMode::Tso));
    }
}
