//! The flight recorder: bounded per-process event rings, the monotonic
//! nanosecond clock, and power-of-two latency histograms.
//!
//! The metrics plane ([`crate::metrics`]) answers *how many*; this module
//! answers *how long* and *in what fine-grained order*. Three pieces:
//!
//! - [`now_nanos`] — monotonic nanoseconds since a lazy process-wide
//!   epoch. Every stamp in this module (and the nanosecond half of
//!   [`PhaseEvent`](crate::metrics::PhaseEvent)) comes from this clock, so
//!   stamps from different processes are mutually comparable.
//! - [`FlightRecorder`] — one fixed-capacity ring of atomic event slots
//!   per process. A ring has a **single writer** (its process), a relaxed
//!   write cursor, and never blocks: when the ring is full, the oldest
//!   events are overwritten and the overflow is counted. Every event is
//!   dual-stamped with the world step counter and [`now_nanos`], so the
//!   same log is meaningful under the lockstep scheduler (steps are exact,
//!   nanos are wall-clock) and under [`Mode::Free`](crate::Mode::Free)
//!   (steps are an approximate global order, nanos are exact).
//! - [`Histogram`] — mergeable power-of-two-bucketed latency histograms
//!   (p50/p90/p99/max) with an atomic live form ([`AtomicHistogram`])
//!   that rides the metrics shards.
//!
//! The recorder is crash-consistent by construction: events are plain
//! relaxed stores, so a process that is crashed or panicked mid-protocol
//! leaves a readable ring behind. [`FlightRecorder::snapshot`] is taken
//! after the world joins its threads (join gives the happens-before edge
//! that makes the relaxed loads well-defined).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Value;

/// Monotonic nanoseconds since the first call in this process.
///
/// All flight-recorder stamps share this epoch, so stamps from different
/// threads are directly comparable. Wraps after ~584 years of uptime.
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

macro_rules! events {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Every event class the flight recorder captures.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum EventKind {
            $($(#[$doc])* $variant,)*
        }

        impl EventKind {
            /// All event kinds, in declaration (and code) order.
            pub const ALL: &'static [EventKind] = &[$(EventKind::$variant),*];

            /// The kind's stable snake_case name (JSON / Chrome-trace key).
            pub fn name(self) -> &'static str {
                match self {
                    $(EventKind::$variant => $name,)*
                }
            }
        }
    };
}

events! {
    /// A double-collect scan attempt opened (arg: attempt number within
    /// the scan, 1-based).
    ScanBegin => "scan_begin",
    /// A scan completed successfully (arg: attempts it took).
    ScanEnd => "scan_end",
    /// One collect pass over the value registers finished (arg: register
    /// reads performed).
    CollectPass => "collect_pass",
    /// A scheduled register write was granted (arg: register id).
    RegWrite => "reg_write",
    /// Local coin flips fed the shared coin (arg: flips since the last
    /// probe).
    CoinFlip => "coin_flip",
    /// The protocol advanced to a new round (arg: the round entered).
    RoundAdvance => "round_advance",
    /// The process decided (arg: 0; the decision value lives in the run
    /// report).
    Decide => "decide",
    /// A crash or injected fault hit this process (arg: fault code).
    Fault => "fault",
    /// An explorer worker stole a job from the injector or a victim
    /// (arg: job index).
    Steal => "steal",
    /// An explorer worker started executing a job (arg: job index).
    Execute => "execute",
    /// A lazy-mode scan revalidated and reused its previous view instead
    /// of running a full double collect (arg: probe reads performed).
    /// Appended after the original kinds so existing ring-event codes are
    /// stable.
    ScanReuse => "scan_reuse",
    /// A buffered store became globally visible (arg: register id).
    Flush => "flush",
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The [`EventKind::Fault`] `arg` code for an injected fault. Code `0` is
/// reserved for scheduler **crash decisions** (which have no
/// [`FaultKind`](crate::history::FaultKind)); [`fault_label`] is the
/// inverse, decoding the code back into a display name.
pub fn fault_arg(kind: crate::history::FaultKind) -> u64 {
    use crate::history::FaultKind;
    match kind {
        FaultKind::StallStart => 1,
        FaultKind::StallEnd => 2,
        FaultKind::PanicInjected => 3,
        FaultKind::Starved => 4,
    }
}

/// Decodes an [`EventKind::Fault`] `arg` code into a display label —
/// the inverse of [`fault_arg`], with `0` naming the scheduler-crash case.
pub fn fault_label(arg: u64) -> &'static str {
    match arg {
        0 => "crash",
        1 => "stall:start",
        2 => "stall:end",
        3 => "panic",
        4 => "starved",
        _ => "fault:?",
    }
}

/// One captured event, in snapshot (plain-data) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The process (or explorer worker) that recorded it.
    pub pid: usize,
    /// World step counter at record time (exact under lockstep,
    /// approximate global order under free threads).
    pub step: u64,
    /// [`now_nanos`] at record time.
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see each [`EventKind`] variant).
    pub arg: u64,
}

/// One ring slot: four relaxed atomics. The single-writer discipline (one
/// ring per process) means a snapshot taken after joining the writer sees
/// each slot whole; mid-run readers could see a torn slot, which is why
/// [`FlightRecorder::snapshot`] is documented as a post-join operation.
struct Slot {
    step: AtomicU64,
    nanos: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            step: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            kind: AtomicU64::new(u64::MAX),
            arg: AtomicU64::new(0),
        }
    }
}

/// One process's bounded event ring.
struct Ring {
    slots: Vec<Slot>,
    /// Total events ever written; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn record(&self, step: u64, nanos: u64, kind: EventKind, arg: u64) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[i];
        slot.step.store(step, Ordering::Relaxed);
        slot.nanos.store(nanos, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
    }

    /// Oldest-first contents plus the overwritten-event count.
    fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let cap = self.slots.len() as u64;
        let written = self.cursor.load(Ordering::Relaxed);
        let kept = written.min(cap);
        let first = if written > cap { written % cap } else { 0 };
        let mut out = Vec::with_capacity(kept as usize);
        for k in 0..kept {
            let slot = &self.slots[((first + k) % cap) as usize];
            let code = slot.kind.load(Ordering::Relaxed) as usize;
            let Some(&kind) = EventKind::ALL.get(code) else {
                continue; // never-written slot (or torn mid-run read)
            };
            out.push(TraceEvent {
                pid: 0, // filled by the recorder
                step: slot.step.load(Ordering::Relaxed),
                nanos: slot.nanos.load(Ordering::Relaxed),
                kind,
                arg: slot.arg.load(Ordering::Relaxed),
            });
        }
        (out, written.saturating_sub(cap))
    }
}

/// The default per-process ring capacity [`crate::World`]s are built with.
pub const DEFAULT_RING_CAPACITY: usize = 2048;

/// Per-process bounded event rings: the live flight recorder.
///
/// Writes are wait-free relaxed stores on a ring owned by one writer;
/// recording never blocks and never allocates. A capacity of 0 disables
/// the recorder entirely ([`FlightRecorder::record`] becomes a no-op
/// branch), which is how the overhead self-measurement gets its baseline.
pub struct FlightRecorder {
    rings: Vec<Ring>,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("n", &self.rings.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with one `capacity`-slot ring per process. `capacity = 0`
    /// disables recording.
    pub fn new(n: usize, capacity: usize) -> Self {
        FlightRecorder {
            rings: (0..n).map(|_| Ring::new(capacity.max(1))).collect(),
            capacity,
        }
    }

    /// Whether events are being kept (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of rings (processes / workers).
    pub fn n(&self) -> usize {
        self.rings.len()
    }

    /// Records one event on `pid`'s ring, stamping [`now_nanos`]. No-op
    /// when disabled or `pid` is out of range.
    #[inline]
    pub fn record(&self, pid: usize, step: u64, kind: EventKind, arg: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(ring) = self.rings.get(pid) {
            ring.record(step, now_nanos(), kind, arg);
        }
    }

    /// Freezes every ring into a [`FlightLog`]. Sound after the writers
    /// have been joined (how [`World::run`](crate::World::run) uses it);
    /// a mid-run snapshot may contain a torn slot, which is dropped.
    pub fn snapshot(&self) -> FlightLog {
        let mut events = Vec::with_capacity(self.rings.len());
        let mut overflow = Vec::with_capacity(self.rings.len());
        for (pid, ring) in self.rings.iter().enumerate() {
            let (mut evs, lost) = if self.capacity == 0 {
                (Vec::new(), 0)
            } else {
                ring.snapshot()
            };
            for e in &mut evs {
                e.pid = pid;
            }
            events.push(evs);
            overflow.push(lost);
        }
        FlightLog {
            capacity: self.capacity,
            events,
            overflow,
        }
    }
}

/// A frozen flight-recorder snapshot: the newest `capacity` events per
/// process, oldest first, plus how many older events each ring dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLog {
    capacity: usize,
    events: Vec<Vec<TraceEvent>>,
    overflow: Vec<u64>,
}

impl FlightLog {
    /// An empty log for `n` processes (used when a run never started).
    pub fn empty(n: usize) -> Self {
        FlightLog {
            capacity: 0,
            events: vec![Vec::new(); n],
            overflow: vec![0; n],
        }
    }

    /// The per-ring capacity the recorder ran with (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rings.
    pub fn n(&self) -> usize {
        self.events.len()
    }

    /// Process `pid`'s kept events, oldest first.
    pub fn events(&self, pid: usize) -> &[TraceEvent] {
        &self.events[pid]
    }

    /// Events this ring overwrote before the snapshot (0 = nothing lost).
    pub fn overflow(&self, pid: usize) -> u64 {
        self.overflow[pid]
    }

    /// Total kept events across all rings.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// All kept events merged across rings, sorted by (nanos, pid) — the
    /// Chrome-trace feed.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.events.iter().flatten().copied().collect();
        all.sort_by_key(|e| (e.nanos, e.pid));
        all
    }

    /// Kept events of `kind` on `pid`'s ring.
    pub fn count(&self, pid: usize, kind: EventKind) -> usize {
        self.events[pid].iter().filter(|e| e.kind == kind).count()
    }

    /// One JSON object: capacity, per-ring overflow, and every kept event
    /// as `{pid, step, nanos, kind, arg}`.
    pub fn to_json(&self) -> Value {
        let events: Vec<Value> = self
            .merged()
            .iter()
            .map(|e| {
                Value::obj(vec![
                    ("pid", e.pid.into()),
                    ("step", e.step.into()),
                    ("nanos", e.nanos.into()),
                    ("kind", e.kind.name().into()),
                    ("arg", e.arg.into()),
                ])
            })
            .collect();
        Value::obj(vec![
            ("capacity", self.capacity.into()),
            (
                "overflow",
                Value::Arr(self.overflow.iter().map(|&o| o.into()).collect()),
            ),
            ("events", Value::Arr(events)),
        ])
    }
}

macro_rules! hists {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Every latency distribution the histogram plane tracks.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Hist {
            $($(#[$doc])* $variant,)*
        }

        impl Hist {
            /// All histograms, in declaration (and export) order.
            pub const ALL: &'static [Hist] = &[$(Hist::$variant),*];

            /// The histogram's stable snake_case name (JSON key).
            pub fn name(self) -> &'static str {
                match self {
                    $(Hist::$variant => $name,)*
                }
            }
        }
    };
}

hists! {
    /// Wall-clock nanoseconds per successful snapshot scan (open to
    /// close, across all its retry attempts).
    ScanLatencyNs => "scan_latency_ns",
    /// Wall-clock nanoseconds a process spent inside one protocol round.
    RoundDurationNs => "round_duration_ns",
    /// Wall-clock nanoseconds from a process's first step to its
    /// decision.
    DecisionLatencyNs => "decision_latency_ns",
    /// Wall-clock nanoseconds per *reused-view* lazy scan (the validity
    /// probe pass only) — kept separate from [`Hist::ScanLatencyNs`] so
    /// profile documents can tell amortized scans from full collects.
    LazyScanLatencyNs => "lazy_scan_latency_ns",
}

/// Number of power-of-two buckets: bucket `b` holds values whose bit
/// length is `b`, i.e. `[2^(b-1), 2^b)`; bucket 0 holds the value 0.
pub const HIST_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of bucket `b` (inclusive), saturating at `u64::MAX`.
fn bucket_high(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

/// The live, lock-free histogram form: rides the per-process metrics
/// shards, recorded with one relaxed `fetch_add` plus a `fetch_max`.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Freezes into the plain-data form.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen power-of-two-bucketed histogram: mergeable, with percentile
/// estimates read off the bucket boundaries.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    sum: u64,
    max: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample (the non-atomic form, for single-threaded
    /// accumulation such as the explorer's schedule-length histogram).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum as f64 / c as f64
        }
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Folds `other`'s samples into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket holding the q-th sample, clamped to the true
    /// max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serializes count/sum/mean/max plus the percentile ladder and the
    /// non-empty buckets (as `[bit_length, count]` pairs).
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| Value::Arr(vec![b.into(), c.into()]))
            .collect();
        Value::obj(vec![
            ("count", self.count().into()),
            ("sum", self.sum.into()),
            ("mean", self.mean().into()),
            ("p50", self.p50().into()),
            ("p90", self.p90().into()),
            ("p99", self.p99().into()),
            ("max", self.max.into()),
            ("buckets", Value::Arr(buckets)),
        ])
    }
}

/// A rate-limited stderr progress printer: long-running sweeps (the
/// explorer, the verify-gate's PCT passes) call [`Heartbeat::tick`] every
/// iteration and a line is emitted at most once per interval — and never
/// for work that finishes inside the first interval, so quick runs stay
/// silent.
#[derive(Debug)]
pub struct Heartbeat {
    started: Instant,
    last: Instant,
    interval: std::time::Duration,
    beats: u64,
}

impl Heartbeat {
    /// A heartbeat that prints at most once per `interval_secs`.
    pub fn new(interval_secs: f64) -> Self {
        let now = Instant::now();
        Heartbeat {
            started: now,
            last: now,
            interval: std::time::Duration::from_secs_f64(interval_secs.max(0.01)),
            beats: 0,
        }
    }

    /// Seconds since the heartbeat was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Lines printed so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Prints `line()` to stderr if the interval elapsed since the last
    /// print. Returns whether it printed.
    pub fn tick(&mut self, line: impl FnOnce(f64) -> String) -> bool {
        if self.last.elapsed() < self.interval {
            return false;
        }
        self.last = Instant::now();
        self.beats += 1;
        eprintln!("{}", line(self.elapsed_secs()));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_are_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn ring_keeps_newest_and_counts_overflow() {
        let rec = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            rec.record(0, i, EventKind::RegWrite, i);
        }
        let log = rec.snapshot();
        assert_eq!(log.overflow(0), 6);
        let args: Vec<u64> = log.events(0).iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "newest events win, oldest first");
        assert!(log.events(0).windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn ring_under_capacity_keeps_everything_in_order() {
        let rec = FlightRecorder::new(2, 8);
        rec.record(0, 1, EventKind::ScanBegin, 1);
        rec.record(1, 2, EventKind::RegWrite, 7);
        rec.record(0, 3, EventKind::ScanEnd, 1);
        let log = rec.snapshot();
        assert_eq!(log.total_events(), 3);
        assert_eq!(log.overflow(0), 0);
        assert_eq!(
            log.events(0).iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![EventKind::ScanBegin, EventKind::ScanEnd]
        );
        assert_eq!(log.events(1)[0].pid, 1);
        let merged = log.merged();
        assert!(merged.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(2, 0);
        assert!(!rec.enabled());
        rec.record(0, 1, EventKind::CoinFlip, 0);
        let log = rec.snapshot();
        assert_eq!(log.total_events(), 0);
        assert_eq!(log.overflow(0), 0);
    }

    #[test]
    fn recorder_is_safe_under_concurrent_writers() {
        // Single-writer-per-ring discipline, exercised for real: one
        // OS thread per ring, all recording concurrently.
        let rec = std::sync::Arc::new(FlightRecorder::new(4, 64));
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        rec.record(pid, i, EventKind::CollectPass, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = rec.snapshot();
        for pid in 0..4 {
            assert_eq!(log.events(pid).len(), 64);
            assert_eq!(log.overflow(pid), 1000 - 64);
            // The kept suffix is exactly the newest writes, in order.
            let args: Vec<u64> = log.events(pid).iter().map(|e| e.arg).collect();
            let want: Vec<u64> = (936..1000).collect();
            assert_eq!(args, want);
        }
    }

    #[test]
    fn histogram_percentiles_and_merge() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 5050);
        // Bucket upper bounds: p50 of 1..=100 lands in bucket 6 ([32,63]).
        assert_eq!(h.p50(), 63);
        assert_eq!(h.p99(), 100, "clamped to the true max");
        assert!(h.quantile(0.0) >= 1);

        let mut other = Histogram::new();
        other.record(1_000_000);
        h.merge(&other);
        assert_eq!(h.count(), 101);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_empty_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(|v| v.as_num()), Some(0.0));
    }

    #[test]
    fn atomic_histogram_matches_plain_under_threads() {
        let ah = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ah = std::sync::Arc::clone(&ah);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ah.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.max(), 3999);
        assert_eq!(snap.sum(), (0..4000u64).sum::<u64>());
    }

    #[test]
    fn histogram_json_has_the_percentile_ladder() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 4000] {
            h.record(v);
        }
        let j = h.to_json();
        for key in [
            "count", "sum", "mean", "p50", "p90", "p99", "max", "buckets",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let text = j.render();
        let parsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("max").and_then(|v| v.as_num()), Some(4000.0));
    }

    #[test]
    fn bucket_of_is_the_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_high(64), u64::MAX);
    }

    #[test]
    fn heartbeat_is_silent_inside_the_first_interval() {
        let mut hb = Heartbeat::new(60.0);
        for _ in 0..100 {
            assert!(!hb.tick(|_| unreachable!("must not print")));
        }
        assert_eq!(hb.beats(), 0);
    }

    #[test]
    fn heartbeat_fires_after_the_interval() {
        let mut hb = Heartbeat::new(0.01);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut printed = String::new();
        // tick() prints to stderr; we only assert the closure ran.
        assert!(hb.tick(|secs| {
            printed = format!("beat at {secs:.3}s");
            printed.clone()
        }));
        assert_eq!(hb.beats(), 1);
        assert!(printed.contains("beat at"));
    }
}
