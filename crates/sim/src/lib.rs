//! Execution substrate for the BPRC reproduction.
//!
//! The algorithms in this workspace (the bounded scannable memory, the weak
//! shared coin, and the consensus protocol itself) are written against the
//! asynchronous shared-memory model of the paper: `n` completely asynchronous
//! processes communicating only through atomic read/write registers, with a
//! *strong adversary* controlling the interleaving.
//!
//! This crate provides that model twice, at two different granularities:
//!
//! * [`world::World`] — every process runs on its own OS thread. In
//!   [`world::Mode::Lockstep`] each shared-memory access blocks on a
//!   per-process turnstile and a scheduler (driven by a [`sched::Strategy`])
//!   grants exactly one access at a time, giving **deterministic, replayable,
//!   adversary-controlled executions** with a recorded [`history::History`].
//!   In [`world::Mode::Free`] the registers are still linearizable but the OS
//!   provides the interleaving — this validates the algorithms on real
//!   hardware concurrency.
//!
//! * [`turn::TurnDriver`] — a single-threaded event loop that schedules
//!   processes at the protocol's natural *scan / write* granularity. Every
//!   protocol in this workspace is a loop of "snapshot-scan the shared memory,
//!   compute, write my own register"; expressing that loop as a
//!   [`turn::TurnProcess`] state machine lets the driver run millions of
//!   adversary-scheduled steps per second for Monte-Carlo estimation of the
//!   paper's probabilistic lemmas. The fine-grained register-level
//!   interleavings inside the scan are exercised separately through
//!   [`world::World`].
//!
//! # Example
//!
//! ```
//! use bprc_sim::world::{World, Mode};
//! use bprc_sim::sched::RandomStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = World::builder(2).mode(Mode::Lockstep).seed(7).build();
//! let reg = world.reg("shared flag", 0u32);
//! let r0 = reg.clone();
//! let r1 = reg.clone();
//! let report = world.run(
//!     vec![
//!         Box::new(move |ctx| {
//!             r0.write(ctx, 41)?;
//!             Ok(r0.read(ctx)? + 1)
//!         }),
//!         Box::new(move |ctx| r1.read(ctx)),
//!     ],
//!     Box::new(RandomStrategy::new(7)),
//! );
//! assert_eq!(report.outputs[0], Some(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod explore;
pub mod faults;
pub mod history;
pub mod json;
pub mod litmus;
pub mod metrics;
pub mod reg;
pub mod rng;
pub mod sched;
pub mod stealing;
pub mod trace;
pub mod tracing;
pub mod turn;
pub mod weakmem;
pub mod world;

pub use error::Halted;
pub use explore::{
    explore_parallel, Counterexample, DecisionTrace, ExploreConfig, ExploreReport, Independence,
    ParallelConfig, ParallelExploreReport, TraceStep,
};
pub use faults::{FaultPlan, FaultedStrategy, FaultedTurnAdversary};
pub use history::FaultKind;
pub use metrics::{Counter, Gauge, MetricsRegistry, PhaseEvent, PhaseKind, ProcMetrics, Telemetry};
pub use reg::{
    FastDyn, FastPod, Reg, BIT_CHUNK_BITS, MAX_FAST_WORDS, MAX_FAST_WORDS_DYN, NO_VERSION,
};
pub use sched::{Decision, ScheduleView, Strategy};
pub use tracing::{
    now_nanos, EventKind, FlightLog, FlightRecorder, Heartbeat, Hist, Histogram, TraceEvent,
    DEFAULT_RING_CAPACITY,
};
pub use weakmem::{
    critical_cycle, CriticalCycle, CycleNode, EdgeKind, RandomFlushes, WeakMode, FENCE_REG,
};
pub use world::{Ctx, Mode, RegMode, RegisterPlane, RunReport, ValueSlab, World, WorldBuilder};
