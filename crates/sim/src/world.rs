//! The shared-memory world: process threads, lockstep scheduler, run reports.
//!
//! See the crate docs for the model. A [`World`] is built once, registers are
//! allocated with [`World::reg`], and then [`World::run`] executes `n`
//! process bodies to completion under a [`Strategy`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::Halted;
use crate::history::{Annotation, Event, FaultKind, History, OpKind, RegId};
use crate::metrics::{Counter, MetricsRegistry, PhaseKind, ProcMetrics, Telemetry};
use crate::sched::{Decision, PendingOp, ScheduleView, Strategy};
use crate::tracing::{
    fault_arg, EventKind, FlightLog, FlightRecorder, Hist, DEFAULT_RING_CAPACITY,
};
use crate::weakmem::{flushable_of, BufferedStore, WeakMode, FENCE_REG};

/// How shared-memory accesses are interleaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Deterministic: a scheduler grants exactly one access at a time.
    /// Executions are replayable from (seed, strategy) and record a
    /// [`History`].
    #[default]
    Lockstep,
    /// Free-running: processes are ordinary OS threads; registers remain
    /// individually linearizable but the interleaving is whatever the OS
    /// produces. No history is recorded and the strategy is ignored.
    Free,
}

/// Which storage plane [`World::fast_reg`] (and the packed allocators
/// [`World::bit_reg`] / [`World::value_slab`]) put registers on.
///
/// Scheduling, telemetry and history are identical on every plane — the
/// plane only decides how a *granted* access touches memory. The `Locked`
/// setting exists so benchmarks can measure the pre-seqlock register stack
/// in the same binary; `Fast` keeps the pre-packing seqlock layout
/// (individual cells, no sharing) for the same reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegisterPlane {
    /// Cache-packed: single-bit registers share [`BIT_CHUNK_BITS`]-bit
    /// cache-line chunks ([`World::bit_reg`]), and value slots allocated
    /// through a [`World::value_slab`] become seqlock lanes with all
    /// version words contiguous. Everything else behaves as `Fast`. The
    /// default.
    ///
    /// [`BIT_CHUNK_BITS`]: crate::reg::BIT_CHUNK_BITS
    #[default]
    Packed,
    /// Small POD payloads get an individually allocated lock-free seqlock
    /// cell; larger payloads fall back to the locked cell. No packing.
    Fast,
    /// Every register uses the original `RwLock` cell, even when the
    /// payload would fit the seqlock.
    Locked,
}

/// The register consistency model a world simulates.
///
/// Atomic (linearizable) registers are the default and match the paper's
/// model. [`RegMode::Regular`] weakens every register to a *regular* one
/// (Lamport): a read concurrent with a write may return either the old or
/// the new value. The weakening is simulated with the store-buffer
/// machinery — a granted write stages in the writer's buffer and lands at
/// an explorable [`Decision::Flush`] point, so DFS/PCT exploration branches
/// over both outcomes and the flush serializes into `bprc-trace-v1`
/// unchanged. Writers forward their own staged values (a regular register
/// still reads-its-own-writes); [`Ctx::fence`] stays a free no-op, because
/// no fence can make a regular register atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegMode {
    /// Linearizable registers (the paper's model). The default.
    #[default]
    Atomic,
    /// Regular registers per Lamport: concurrent reads may return old or
    /// new. Requires [`Mode::Lockstep`] and [`WeakMode::Sc`] (the
    /// store-buffer planes already model *their* weakenings).
    Regular,
}

/// A process body run by [`World::run`].
pub type ProcBody<T> = Box<dyn FnOnce(&mut Ctx) -> Result<T, Halted> + Send + 'static>;

/// A handle on a contiguous slab of seqlock value lanes, allocated by
/// [`World::value_slab`] and consumed by [`World::lane_reg`] /
/// [`World::lane_reg_dyn`]. On planes other than
/// [`RegisterPlane::Packed`] the handle is inert and lane allocation falls
/// back to individual cells.
pub struct ValueSlab {
    lane_words: usize,
    slab: Option<Arc<crate::reg::LaneSlab>>,
}

impl ValueSlab {
    /// Whether lanes allocated from this slab actually share the packed
    /// layout (false on non-`Packed` planes or oversized strides).
    pub fn is_packed(&self) -> bool {
        self.slab.is_some()
    }
}

impl std::fmt::Debug for ValueSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueSlab")
            .field("lane_words", &self.lane_words)
            .field("packed", &self.is_packed())
            .finish()
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-process output: `Some` if the body returned `Ok`, `None` if it was
    /// halted (see [`RunReport::halted`]) or panicked.
    pub outputs: Vec<Option<T>>,
    /// Per-process halt reason, if any. A process whose body panicked
    /// (its own bug or an injected chaos panic) reports
    /// [`Halted::Panicked`]; the panic message is in [`RunReport::panics`].
    pub halted: Vec<Option<Halted>>,
    /// Per-process contained panic message, if the body panicked.
    pub panics: Vec<Option<String>>,
    /// Total granted shared-memory accesses.
    pub steps: u64,
    /// Granted accesses per process.
    pub per_proc_steps: Vec<u64>,
    /// The recorded history (lockstep mode only, and only if recording was
    /// enabled — it is by default).
    pub history: Option<History>,
    /// The metrics-plane snapshot: counters, gauges, and phase spans.
    /// Unlike [`RunReport::history`], this is populated in **both** modes.
    pub telemetry: Telemetry,
    /// The flight-recorder snapshot: the newest ring-buffered fine-grained
    /// events per process, dual-stamped with steps and nanoseconds.
    /// Populated in both modes; empty if the world was built with
    /// [`WorldBuilder::trace_capacity`]`(0)`.
    pub flight: FlightLog,
}

impl<T> RunReport<T> {
    /// The set of distinct outputs produced (useful for agreement checks).
    pub fn distinct_outputs(&self) -> Vec<&T>
    where
        T: PartialEq,
    {
        let mut out: Vec<&T> = Vec::new();
        for v in self.outputs.iter().flatten() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Number of processes that produced an output.
    pub fn decided_count(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_some()).count()
    }

    /// Pids whose bodies panicked (contained as [`Halted::Panicked`]).
    pub fn panicked_pids(&self) -> Vec<usize> {
        self.halted
            .iter()
            .enumerate()
            .filter(|(_, h)| matches!(h, Some(Halted::Panicked)))
            .map(|(p, _)| p)
            .collect()
    }
}

pub(crate) struct Central {
    granted: Option<usize>,
    waiting: Vec<Option<PendingOp>>,
    finished: Vec<bool>,
    crashed: Vec<bool>,
    /// Panic-injection flags: a poisoned process panics at its next gate.
    poisoned: Vec<bool>,
    shutdown: Option<Halted>,
    steps: u64,
    per_proc_steps: Vec<u64>,
    history: History,
    /// Per-process store buffers (weak-memory modes; always empty under
    /// [`WeakMode::Sc`]).
    buffers: Vec<VecDeque<BufferedStore>>,
}

impl Central {
    /// The newest buffered value `pid` holds for `reg` — store-to-load
    /// forwarding. `None` when nothing is buffered for the register.
    ///
    /// # Panics
    ///
    /// Panics if the buffered value is not a `T`: one register id always
    /// carries one payload type, so a mismatch is a plumbing bug, and
    /// silently falling back to the (stale) memory cell would corrupt the
    /// simulated semantics.
    pub(crate) fn forwarded<T: 'static>(&self, pid: usize, reg: RegId) -> Option<&T> {
        self.buffers[pid]
            .iter()
            .rev()
            .find(|e| e.reg == reg)
            .map(|e| {
                e.value
                    .downcast_ref::<T>()
                    .expect("buffered value type matches the register's payload type")
            })
    }

    /// Appends a store to `pid`'s buffer (FIFO tail).
    pub(crate) fn buffer_store(&mut self, pid: usize, entry: BufferedStore) {
        self.buffers[pid].push_back(entry);
    }
}

pub(crate) struct WorldInner {
    n: usize,
    mode: Mode,
    step_limit: u64,
    record: bool,
    seed: u64,
    plane: RegisterPlane,
    /// The simulated memory model (store buffers when not
    /// [`WeakMode::Sc`]; lockstep only).
    weak: WeakMode,
    /// The simulated register consistency model (store buffers when
    /// [`RegMode::Regular`]; lockstep only).
    reg_mode: RegMode,
    central: Mutex<Central>,
    proc_cv: Condvar,
    sched_cv: Condvar,
    // Free-mode fast counters.
    free_steps: AtomicU64,
    free_shutdown: AtomicBool,
    reg_names: Mutex<Vec<String>>,
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    /// Bump allocator for [`World::bit_reg`] bits: the current bit chunk
    /// and how many of its bits are handed out.
    bit_alloc: Mutex<BitAlloc>,
}

#[derive(Default)]
struct BitAlloc {
    chunk: Option<Arc<crate::reg::BitChunk>>,
    used: usize,
}

impl WorldInner {
    /// Performs one scheduled shared-memory access on behalf of `pid`.
    ///
    /// In lockstep mode this blocks until the scheduler grants the step, then
    /// executes `f` while holding the central lock (so the whole run is
    /// serialized and deterministic). In free mode it only checks the
    /// shutdown flag and counts the step.
    pub(crate) fn access<R>(
        &self,
        pid: usize,
        kind: OpKind,
        reg: RegId,
        tag: u64,
        f: impl FnOnce() -> R,
    ) -> Result<R, Halted> {
        match self.mode {
            Mode::Free => {
                if self.free_shutdown.load(Ordering::Acquire) {
                    return Err(Halted::Shutdown);
                }
                let s = self.free_steps.fetch_add(1, Ordering::Relaxed);
                if s >= self.step_limit {
                    self.free_shutdown.store(true, Ordering::Release);
                    return Err(Halted::StepLimit);
                }
                self.count_op(pid, kind);
                // Only writes hit the ring: per-read stamping would put a
                // clock read on the dominant free-mode path.
                if matches!(kind, OpKind::Write | OpKind::Swap) {
                    self.recorder
                        .record(pid, s, EventKind::RegWrite, reg as u64);
                }
                Ok(f())
            }
            Mode::Lockstep => self.access_central(pid, kind, reg, tag, |_c| f()),
        }
    }

    /// The lockstep access gate with the central state borrowed into the
    /// body — the store-buffer paths use it to push and read buffered
    /// stores while holding the grant. [`WorldInner::access`] is the thin
    /// wrapper that ignores the borrow.
    pub(crate) fn access_central<R>(
        &self,
        pid: usize,
        kind: OpKind,
        reg: RegId,
        tag: u64,
        f: impl FnOnce(&mut Central) -> R,
    ) -> Result<R, Halted> {
        debug_assert_eq!(self.mode, Mode::Lockstep, "access_central is lockstep-only");
        let mut c = self.central.lock();
        // A crash always reports as Crashed, even if the world also
        // shut down before this process reached its next gate.
        if c.crashed[pid] {
            return Err(Halted::Crashed);
        }
        if let Some(h) = c.shutdown {
            return Err(h);
        }
        c.waiting[pid] = Some(PendingOp { kind, reg, tag });
        self.sched_cv.notify_one();
        loop {
            if c.crashed[pid] {
                c.waiting[pid] = None;
                self.sched_cv.notify_one();
                return Err(Halted::Crashed);
            }
            if c.poisoned[pid] {
                // An injected panic: unwind on the process thread so
                // panic containment is exercised for real. The
                // central lock is released by the unwind; the
                // FinishGuard then marks the process finished.
                c.poisoned[pid] = false;
                c.waiting[pid] = None;
                if self.record {
                    let step = c.steps;
                    c.history.push(Event::Fault {
                        step,
                        pid,
                        kind: FaultKind::PanicInjected,
                    });
                }
                let step = c.steps;
                self.recorder.record(
                    pid,
                    step,
                    EventKind::Fault,
                    fault_arg(FaultKind::PanicInjected),
                );
                self.sched_cv.notify_one();
                drop(c);
                panic!("chaos: injected panic (pid {pid})");
            }
            if let Some(h) = c.shutdown {
                c.waiting[pid] = None;
                self.sched_cv.notify_one();
                return Err(h);
            }
            if c.granted == Some(pid) {
                break;
            }
            self.proc_cv.wait(&mut c);
        }
        c.waiting[pid] = None;
        let r = f(&mut c);
        let step = c.steps;
        c.steps += 1;
        c.per_proc_steps[pid] += 1;
        // Counted at the same point the history records the op, so
        // lockstep telemetry and `History` agree event-for-event.
        self.count_op(pid, kind);
        if matches!(kind, OpKind::Write | OpKind::Swap) {
            self.recorder
                .record(pid, step, EventKind::RegWrite, reg as u64);
        }
        if self.record {
            c.history.push(Event::Op {
                step,
                pid,
                kind,
                reg,
                tag,
            });
        }
        c.granted = None;
        self.sched_cv.notify_one();
        Ok(r)
    }

    /// Whether granted writes go through store buffers: a weak memory
    /// model *or* the regular-register mode on the lockstep backend. Free
    /// mode always runs the real hardware model, so the simulated buffers
    /// stay off there.
    pub(crate) fn weak_buffering(&self) -> bool {
        self.mode == Mode::Lockstep
            && (self.weak != WeakMode::Sc || self.reg_mode == RegMode::Regular)
    }

    /// The flush discipline the scheduler offers when buffering is on.
    /// Regular registers reuse the PSO rule — per-register FIFO, no
    /// cross-register order — which is exactly Lamport regularity once
    /// writers forward their own staged stores.
    fn flush_mode(&self) -> WeakMode {
        if self.reg_mode == RegMode::Regular {
            WeakMode::Pso
        } else {
            self.weak
        }
    }

    /// Increments the telemetry counter(s) for one granted access. A swap
    /// is one gate that both reads and writes, so it counts in both
    /// columns — the parity checkers apply the same rule to the history.
    fn count_op(&self, pid: usize, kind: OpKind) {
        let m = self.metrics.proc(pid);
        match kind {
            OpKind::Read => m.incr(Counter::RegReads, 1),
            OpKind::Write => m.incr(Counter::RegWrites, 1),
            OpKind::Fence => m.incr(Counter::Fences, 1),
            OpKind::Swap => {
                m.incr(Counter::RegReads, 1);
                m.incr(Counter::RegWrites, 1);
            }
        }
    }

    /// Lands one buffered store in shared memory and records the flush in
    /// history, metrics, and the flight recorder. Caller removed `entry`
    /// from the buffer already.
    fn land_store(&self, c: &mut Central, pid: usize, entry: BufferedStore) {
        let reg = entry.reg;
        (entry.apply)();
        let step = c.steps;
        if self.record {
            c.history.push(Event::Flush { step, pid, reg });
        }
        self.metrics.proc(pid).incr(Counter::StoresFlushed, 1);
        self.recorder
            .record(pid, step, EventKind::Flush, reg as u64);
    }

    /// Store-buffer fence on behalf of `pid`: a scheduled gate
    /// ([`OpKind::Fence`] on the [`FENCE_REG`] sentinel) that drains the
    /// caller's own buffer, oldest first, when granted. Free of charge
    /// under SC (no gate, no step) so protocol code can fence
    /// unconditionally. Deliberately also free under [`RegMode::Regular`]:
    /// no fence can make a regular register atomic, so the snapshot
    /// layer's pinned fences must not re-atomicize the weakened plane.
    pub(crate) fn fence(&self, pid: usize) -> Result<(), Halted> {
        if !(self.mode == Mode::Lockstep && self.weak != WeakMode::Sc) {
            return Ok(());
        }
        self.access_central(pid, OpKind::Fence, FENCE_REG, 0, |c| {
            self.drain_own_buffer(c, pid);
        })
    }

    /// Lands every store in `pid`'s own buffer, oldest first — the body of
    /// a fence, also run by a granted [`Reg::swap`](crate::reg::Reg::swap)
    /// before its exchange (an RMW drains the store buffer on every
    /// modeled architecture).
    pub(crate) fn drain_own_buffer(&self, c: &mut Central, pid: usize) {
        while let Some(entry) = c.buffers[pid].pop_front() {
            self.land_store(c, pid, entry);
        }
    }

    /// Deterministic end-of-run drain (ascending pid, FIFO): every process
    /// is finished or crashed, so no one can observe the drain order and
    /// it costs no exploration branches. Crashed buffers were already
    /// dropped at their crash.
    fn drain_all_buffers(&self, c: &mut Central) {
        for pid in 0..self.n {
            while let Some(entry) = c.buffers[pid].pop_front() {
                self.land_store(c, pid, entry);
            }
        }
    }

    /// The current global step counter, in either mode. Free mode reads
    /// the atomic (approximate under concurrency); lockstep takes the
    /// central lock (exact).
    pub(crate) fn current_step(&self) -> u64 {
        match self.mode {
            Mode::Free => self.free_steps.load(Ordering::Relaxed),
            Mode::Lockstep => self.central.lock().steps,
        }
    }

    fn annotate(&self, pid: usize, note: Annotation) {
        if let Mode::Lockstep = self.mode {
            if self.record {
                let mut c = self.central.lock();
                let step = c.steps;
                c.history.push(Event::Note { step, pid, note });
            }
        }
    }

    fn mark_finished(&self, pid: usize) {
        if let Mode::Lockstep = self.mode {
            let mut c = self.central.lock();
            c.finished[pid] = true;
            c.waiting[pid] = None;
            // If the body panicked mid-access (while holding its grant) the
            // grant would otherwise stay stuck and deadlock the scheduler.
            if c.granted == Some(pid) {
                c.granted = None;
            }
            self.sched_cv.notify_one();
        }
    }

    /// Drives the lockstep scheduler until every process finished, the step
    /// limit is reached, or only crashed processes remain.
    fn scheduler_loop(&self, strategy: &mut dyn Strategy) {
        loop {
            let mut c = self.central.lock();
            // Wait for quiescence: every non-finished process parked at a
            // gate (crashed-but-unwinding processes finish shortly).
            loop {
                if c.shutdown.is_some() {
                    self.proc_cv.notify_all();
                    return;
                }
                // A poisoned process is mid-unwind: wait until its
                // FinishGuard reports it finished, so decisions are made
                // against a settled process set (deterministic replay).
                let all_quiet = c.granted.is_none()
                    && (0..self.n)
                        .all(|p| c.finished[p] || (c.waiting[p].is_some() && !c.poisoned[p]));
                if all_quiet {
                    break;
                }
                self.sched_cv.wait(&mut c);
            }
            let runnable: Vec<usize> = (0..self.n)
                .filter(|&p| !c.finished[p] && !c.crashed[p] && c.waiting[p].is_some())
                .collect();
            if runnable.is_empty() {
                // Everyone finished, or only crashed processes remain
                // parked. Buffered stores of finished processes land now,
                // deterministically — unobservable, hence decision-free.
                if self.weak_buffering() {
                    self.drain_all_buffers(&mut c);
                }
                c.shutdown = Some(Halted::Shutdown);
                self.proc_cv.notify_all();
                return;
            }
            if c.steps >= self.step_limit {
                c.shutdown = Some(Halted::StepLimit);
                self.proc_cv.notify_all();
                return;
            }
            let pending: Vec<PendingOp> = runnable
                .iter()
                .map(|&p| c.waiting[p].expect("runnable process has a pending op"))
                .collect();
            let mut flushable: Vec<(usize, RegId)> = Vec::new();
            if self.weak_buffering() {
                let fm = self.flush_mode();
                for p in 0..self.n {
                    for r in flushable_of(fm, &c.buffers[p]) {
                        flushable.push((p, r));
                    }
                }
            }
            let decision = {
                let view = ScheduleView {
                    step: c.steps,
                    runnable: &runnable,
                    pending: &pending,
                    flushable: &flushable,
                };
                strategy.decide(&view)
            };
            match decision {
                Decision::Grant(pid) => {
                    assert!(
                        runnable.contains(&pid),
                        "illegal strategy decision Grant({pid}) at step {}: \
                         process is not runnable (runnable = {runnable:?})",
                        c.steps
                    );
                    c.granted = Some(pid);
                    self.proc_cv.notify_all();
                }
                Decision::Crash(pid) => {
                    assert!(
                        pid < self.n,
                        "illegal strategy decision Crash({pid}) at step {}: \
                         unknown process (world has {} processes)",
                        c.steps,
                        self.n
                    );
                    assert!(
                        !c.crashed[pid],
                        "illegal strategy decision Crash({pid}) at step {}: \
                         process {pid} is already crashed",
                        c.steps
                    );
                    assert!(
                        !c.finished[pid],
                        "illegal strategy decision Crash({pid}) at step {}: \
                         process {pid} already finished",
                        c.steps
                    );
                    c.crashed[pid] = true;
                    // The store buffer dies with the process: its unflushed
                    // writes are lost. The explorer separately branches
                    // flush-before-crash to cover the published variants.
                    c.buffers[pid].clear();
                    let step = c.steps;
                    if self.record {
                        c.history.push(Event::Crash { step, pid });
                    }
                    // Safe single-writer exception: a crash decision is made
                    // at quiescence, when no process thread is mid-access.
                    self.recorder.record(pid, step, EventKind::Fault, 0);
                    self.proc_cv.notify_all();
                }
                Decision::Panic(pid) => {
                    assert!(
                        runnable.contains(&pid),
                        "illegal strategy decision Panic({pid}) at step {}: \
                         process is not runnable (runnable = {runnable:?})",
                        c.steps
                    );
                    c.poisoned[pid] = true;
                    self.proc_cv.notify_all();
                }
                Decision::Flush { pid, reg } => {
                    assert!(
                        flushable.contains(&(pid, reg)),
                        "illegal strategy decision Flush{{pid: {pid}, reg: {reg}}} at \
                         step {}: not flushable (flushable = {flushable:?})",
                        c.steps
                    );
                    let pos = c.buffers[pid]
                        .iter()
                        .position(|e| e.reg == reg)
                        .expect("flushable entry exists in the buffer");
                    let entry = c.buffers[pid].remove(pos).expect("position is in range");
                    self.land_store(&mut c, pid, entry);
                    // Nobody advanced: the strategy is consulted again at
                    // the same step, exactly like after a crash.
                }
            }
            {
                let step = c.steps;
                for (pid, kind) in strategy.drain_fault_notes() {
                    self.recorder
                        .record(pid, step, EventKind::Fault, fault_arg(kind));
                    if self.record {
                        c.history.push(Event::Fault { step, pid, kind });
                    }
                }
            }
        }
    }
}

/// Per-process execution context handed to process bodies.
///
/// Carries the process id, a deterministic per-process RNG (seeded from the
/// world seed), and hooks for annotating the recorded history.
pub struct Ctx {
    pid: usize,
    rng: SmallRng,
    inner: Arc<WorldInner>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    /// This process's id (0-based).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processes in the world.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// The process's deterministic RNG (local coin flips).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Records a marker in the history (lockstep mode; no-op otherwise).
    pub fn annotate(&self, label: &'static str, data: Vec<u64>) {
        self.inner.annotate(self.pid, Annotation::new(label, data));
    }

    /// Whether [`Ctx::annotate`] would actually record anything — lets hot
    /// paths skip building annotation payloads when no history is kept.
    pub fn recording(&self) -> bool {
        self.inner.mode == Mode::Lockstep && self.inner.record
    }

    /// This process's metrics handle — works identically in lockstep and
    /// free mode. Protocol layers use it to count events at the source:
    /// `ctx.metrics().incr(Counter::Scans, 1)`.
    pub fn metrics(&self) -> ProcMetrics<'_> {
        self.inner.metrics.proc(self.pid)
    }

    /// Adds `k` to counter `c` for this process (shorthand for
    /// [`Ctx::metrics`]`.incr`).
    pub fn count(&self, c: Counter, k: u64) {
        self.inner.metrics.proc(self.pid).incr(c, k);
    }

    /// Announces that this process entered a protocol phase, stamped
    /// with the current world step. Works in both modes (unlike
    /// [`Ctx::annotate`], which needs a recorded history).
    pub fn phase(&self, kind: PhaseKind) {
        let step = self.inner.current_step();
        self.inner.metrics.proc(self.pid).phase(step, kind);
    }

    /// Records a flight-recorder event for this process, dual-stamped
    /// with the current world step and the monotonic-nanosecond clock.
    /// Wait-free relaxed stores; a no-op when the world was built with
    /// [`WorldBuilder::trace_capacity`]`(0)`.
    pub fn trace_event(&self, kind: EventKind, arg: u64) {
        if self.inner.recorder.enabled() {
            let step = self.inner.current_step();
            self.inner.recorder.record(self.pid, step, kind, arg);
        }
    }

    /// Whether the flight recorder is keeping events — lets hot paths
    /// skip preparing event payloads when tracing is off.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.recorder.enabled()
    }

    /// Records one latency sample into this process's histogram `h`
    /// (shorthand for [`Ctx::metrics`]`.hist_record`).
    pub fn hist_record(&self, h: Hist, v: u64) {
        self.inner.metrics.proc(self.pid).hist_record(h, v);
    }

    /// Store-buffer fence: drains this process's own buffered writes into
    /// shared memory as one scheduled gate ([`Counter::Fences`] counts it;
    /// the history records an [`OpKind::Fence`] op plus one
    /// [`Event::Flush`](crate::history::Event) per landed store). Under
    /// [`WeakMode::Sc`](crate::weakmem::WeakMode) — and in free mode,
    /// where the hardware model is real — it is a free no-op, so protocol
    /// code fences unconditionally at its ordering points.
    pub fn fence(&self) -> Result<(), Halted> {
        self.inner.fence(self.pid)
    }

    pub(crate) fn inner(&self) -> &Arc<WorldInner> {
        &self.inner
    }
}

/// Builder for [`World`] (see [`World::builder`]).
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    n: usize,
    mode: Mode,
    step_limit: u64,
    seed: u64,
    record: bool,
    plane: RegisterPlane,
    trace_capacity: usize,
    weak: WeakMode,
    reg_mode: RegMode,
}

impl WorldBuilder {
    /// Sets the interleaving mode (default [`Mode::Lockstep`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the global step budget (default 10 million accesses).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Seeds the per-process RNGs (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables history recording (default enabled; lockstep only).
    pub fn record_history(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Selects the storage plane for [`World::fast_reg`] /
    /// [`World::bit_reg`] / [`World::value_slab`] allocations
    /// (default [`RegisterPlane::Packed`]).
    pub fn register_plane(mut self, plane: RegisterPlane) -> Self {
        self.plane = plane;
        self
    }

    /// Sets the per-process flight-recorder ring capacity (default
    /// [`DEFAULT_RING_CAPACITY`]). `0` disables the recorder entirely —
    /// the overhead self-measurement uses this as its baseline.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Selects the simulated memory model (default
    /// [`WeakMode::Sc`](crate::weakmem::WeakMode)). Weak modes route every
    /// granted write through a per-process store buffer whose flush points
    /// are scheduler decisions — see [`crate::weakmem`]. Requires
    /// [`Mode::Lockstep`]; [`WorldBuilder::build`] panics on a weak free
    /// world.
    pub fn weak_memory(mut self, weak: WeakMode) -> Self {
        self.weak = weak;
        self
    }

    /// Selects the simulated register consistency model (default
    /// [`RegMode::Atomic`]). [`RegMode::Regular`] stages every write in
    /// the writer's store buffer and lands it at an explorable
    /// [`Decision::Flush`](crate::sched::Decision) point. Requires
    /// [`Mode::Lockstep`] and is mutually exclusive with a weak
    /// [`WeakMode`]; [`WorldBuilder::build`] panics otherwise.
    pub fn reg_mode(mut self, reg_mode: RegMode) -> Self {
        self.reg_mode = reg_mode;
        self
    }

    /// Finishes building the world.
    pub fn build(self) -> World {
        assert!(self.n >= 1, "a world needs at least one process");
        assert!(
            self.weak == WeakMode::Sc || self.mode == Mode::Lockstep,
            "weak-memory store buffers are simulated by the lockstep \
             scheduler; free mode runs the real hardware model"
        );
        assert!(
            self.reg_mode == RegMode::Atomic || self.mode == Mode::Lockstep,
            "regular registers are simulated by the lockstep scheduler; \
             free mode runs the real (atomic) hardware model"
        );
        assert!(
            self.reg_mode == RegMode::Atomic || self.weak == WeakMode::Sc,
            "regular registers and weak-memory store buffers are separate \
             weakenings; pick one"
        );
        World {
            inner: Arc::new(WorldInner {
                n: self.n,
                mode: self.mode,
                step_limit: self.step_limit,
                record: self.record,
                seed: self.seed,
                plane: self.plane,
                weak: self.weak,
                reg_mode: self.reg_mode,
                central: Mutex::new(Central {
                    granted: None,
                    waiting: vec![None; self.n],
                    finished: vec![false; self.n],
                    crashed: vec![false; self.n],
                    poisoned: vec![false; self.n],
                    shutdown: None,
                    steps: 0,
                    per_proc_steps: vec![0; self.n],
                    history: History::new(),
                    buffers: (0..self.n).map(|_| VecDeque::new()).collect(),
                }),
                proc_cv: Condvar::new(),
                sched_cv: Condvar::new(),
                free_steps: AtomicU64::new(0),
                free_shutdown: AtomicBool::new(false),
                reg_names: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(self.n),
                recorder: FlightRecorder::new(self.n, self.trace_capacity),
                bit_alloc: Mutex::new(BitAlloc::default()),
            }),
            used: false,
        }
    }
}

/// A shared-memory world of `n` asynchronous processes.
///
/// Allocate registers with [`World::reg`], then execute bodies with
/// [`World::run`]. A world is single-shot: `run` may be called once.
pub struct World {
    inner: Arc<WorldInner>,
    used: bool,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("n", &self.inner.n)
            .field("mode", &self.inner.mode)
            .field("used", &self.used)
            .finish()
    }
}

impl World {
    /// Starts building a world of `n` processes.
    pub fn builder(n: usize) -> WorldBuilder {
        WorldBuilder {
            n,
            mode: Mode::Lockstep,
            step_limit: 10_000_000,
            seed: 0,
            record: true,
            plane: RegisterPlane::default(),
            trace_capacity: DEFAULT_RING_CAPACITY,
            weak: WeakMode::Sc,
            reg_mode: RegMode::Atomic,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// The interleaving mode.
    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// The weak-memory buffering discipline this world simulates
    /// ([`WeakMode::Sc`] unless [`WorldBuilder::weak_memory`] said otherwise).
    pub fn weak_memory_mode(&self) -> WeakMode {
        self.inner.weak
    }

    /// The register consistency model this world simulates
    /// ([`RegMode::Atomic`] unless [`WorldBuilder::reg_mode`] said
    /// otherwise).
    pub fn register_mode(&self) -> RegMode {
        self.inner.reg_mode
    }

    /// The global step budget this world was built with. The systematic
    /// explorer (`explore` module) uses it to bound path depth.
    pub fn step_limit(&self) -> u64 {
        self.inner.step_limit
    }

    /// Names of all registers allocated so far (indexed by register id) —
    /// feed to [`trace::TraceOptions`](crate::trace::TraceOptions) for
    /// labelled timelines.
    pub fn reg_names(&self) -> Vec<String> {
        self.inner.reg_names.lock().clone()
    }

    /// The live metrics registry (counters update while a run is in
    /// flight; [`RunReport::telemetry`] is the end-of-run snapshot).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Allocates a fresh linearizable register initialized to `init`.
    ///
    /// The `name` shows up in debugging output and history dumps.
    pub fn reg<T: Clone + Send + Sync + 'static>(
        &self,
        name: impl Into<String>,
        init: T,
    ) -> crate::reg::Reg<T> {
        let mut names = self.inner.reg_names.lock();
        let id = names.len();
        names.push(name.into());
        crate::reg::Reg::new(id, init, Arc::clone(&self.inner))
    }

    /// Allocates a register on the seqlock fast plane when the payload is a
    /// small [`FastPod`](crate::reg::FastPod) (and the world's
    /// [`RegisterPlane`] allows it); otherwise identical to [`World::reg`].
    ///
    /// Access semantics — scheduling, counters, recorded history — do not
    /// depend on which plane the register lands on.
    pub fn fast_reg<T: crate::reg::FastPod>(
        &self,
        name: impl Into<String>,
        init: T,
    ) -> crate::reg::Reg<T> {
        let mut names = self.inner.reg_names.lock();
        let id = names.len();
        names.push(name.into());
        crate::reg::Reg::new_fast(
            id,
            init,
            Arc::clone(&self.inner),
            self.inner.plane != RegisterPlane::Locked,
        )
    }

    /// Allocates a single-bit register. Under [`RegisterPlane::Packed`]
    /// the bit lands in a shared cache-line chunk
    /// ([`BIT_CHUNK_BITS`](crate::reg::BIT_CHUNK_BITS) booleans per line;
    /// mutation is `fetch_or`/`fetch_and`, so even two-writer bits — the
    /// paper's arrows — stay atomic and neighbours cannot tear each
    /// other). On the other planes this is identical to
    /// [`World::fast_reg`] / [`World::reg`].
    ///
    /// Access semantics — scheduling, counters, recorded history — do not
    /// depend on which plane the register lands on.
    pub fn bit_reg(&self, name: impl Into<String>, init: bool) -> crate::reg::Reg<bool> {
        if self.inner.plane != RegisterPlane::Packed {
            return self.fast_reg(name, init);
        }
        let mut names = self.inner.reg_names.lock();
        let id = names.len();
        names.push(name.into());
        drop(names);
        let mut alloc = self.inner.bit_alloc.lock();
        let chunk = match &alloc.chunk {
            Some(c) if alloc.used < crate::reg::BIT_CHUNK_BITS => Arc::clone(c),
            _ => {
                let c = Arc::new(crate::reg::BitChunk::new());
                alloc.chunk = Some(Arc::clone(&c));
                alloc.used = 0;
                c
            }
        };
        let bit = alloc.used;
        alloc.used += 1;
        drop(alloc);
        crate::reg::Reg::new_bit(id, init, Arc::clone(&self.inner), chunk, bit)
    }

    /// Allocates a shared slab of `lanes` seqlock lanes, `lane_words`
    /// payload words each, for use with [`World::lane_reg`] /
    /// [`World::lane_reg_dyn`]. All version words are contiguous, so a
    /// collect pass validating `lanes` buffered copies through
    /// [`Reg::read_changed`](crate::reg::Reg::read_changed) touches
    /// ⌈lanes/8⌉ cache lines instead of `lanes` scattered cells.
    ///
    /// On planes other than [`RegisterPlane::Packed`] (or when
    /// `lane_words` exceeds
    /// [`MAX_FAST_WORDS_DYN`](crate::reg::MAX_FAST_WORDS_DYN)) the slab is
    /// inert and the lane allocators fall back to [`World::fast_reg`]-style
    /// individual cells — a representation knob, never a semantics change.
    pub fn value_slab(&self, lanes: usize, lane_words: usize) -> ValueSlab {
        let packed = self.inner.plane == RegisterPlane::Packed
            && lane_words >= 1
            && lane_words <= crate::reg::MAX_FAST_WORDS_DYN;
        ValueSlab {
            lane_words,
            slab: packed.then(|| Arc::new(crate::reg::LaneSlab::new(lanes, lane_words))),
        }
    }

    /// Allocates lane `lane` of `slab` as a register (packed width
    /// `T::WORDS` must match the slab's stride); falls back to
    /// [`World::fast_reg`] when the slab is inert or the width differs.
    pub fn lane_reg<T: crate::reg::FastPod>(
        &self,
        slab: &ValueSlab,
        lane: usize,
        name: impl Into<String>,
        init: T,
    ) -> crate::reg::Reg<T> {
        match &slab.slab {
            Some(s) if T::WORDS == slab.lane_words && lane < s.lanes() => {
                let mut names = self.inner.reg_names.lock();
                let id = names.len();
                names.push(name.into());
                drop(names);
                crate::reg::Reg::new_lane(id, init, Arc::clone(&self.inner), Arc::clone(s), lane)
            }
            _ => self.fast_reg(name, init),
        }
    }

    /// The runtime-width counterpart of [`World::lane_reg`]: the initial
    /// value's [`FastDyn::dyn_words`](crate::reg::FastDyn::dyn_words) must
    /// match the slab's stride (every later write must pack to the same
    /// width, as with [`World::fast_reg_dyn`]).
    pub fn lane_reg_dyn<T: crate::reg::FastDyn>(
        &self,
        slab: &ValueSlab,
        lane: usize,
        name: impl Into<String>,
        init: T,
    ) -> crate::reg::Reg<T> {
        match &slab.slab {
            Some(s) if init.dyn_words() == slab.lane_words && lane < s.lanes() => {
                let mut names = self.inner.reg_names.lock();
                let id = names.len();
                names.push(name.into());
                drop(names);
                crate::reg::Reg::new_lane_dyn(
                    id,
                    init,
                    Arc::clone(&self.inner),
                    Arc::clone(s),
                    lane,
                )
            }
            _ => self.fast_reg_dyn(name, init),
        }
    }

    /// Allocates a register on the seqlock fast plane when the payload's
    /// *runtime* packed width ([`FastDyn`](crate::reg::FastDyn)) fits
    /// [`MAX_FAST_WORDS_DYN`](crate::reg::MAX_FAST_WORDS_DYN) (and the
    /// world's [`RegisterPlane`] allows it); otherwise identical to
    /// [`World::reg`]. The width is fixed by `init`: every later write must
    /// pack to the same number of words.
    ///
    /// Access semantics — scheduling, counters, recorded history — do not
    /// depend on which plane the register lands on.
    pub fn fast_reg_dyn<T: crate::reg::FastDyn>(
        &self,
        name: impl Into<String>,
        init: T,
    ) -> crate::reg::Reg<T> {
        let mut names = self.inner.reg_names.lock();
        let id = names.len();
        names.push(name.into());
        crate::reg::Reg::new_fast_dyn(
            id,
            init,
            Arc::clone(&self.inner),
            self.inner.plane != RegisterPlane::Locked,
        )
    }

    /// Runs `n` process bodies to completion under `strategy`.
    ///
    /// In [`Mode::Free`] the strategy is ignored. The calling thread drives
    /// the scheduler; bodies run on spawned threads.
    ///
    /// # Panics
    ///
    /// Panics if `bodies.len() != n`, if called twice, or if the strategy
    /// makes an illegal decision (granting a non-runnable process, crashing
    /// a finished process).
    pub fn run<T: Send + 'static>(
        &mut self,
        bodies: Vec<ProcBody<T>>,
        mut strategy: Box<dyn Strategy>,
    ) -> RunReport<T> {
        assert_eq!(
            bodies.len(),
            self.inner.n,
            "need exactly one body per process"
        );
        assert!(!self.used, "a World is single-shot; build a new one");
        self.used = true;

        let mut handles = Vec::with_capacity(self.inner.n);
        for (pid, body) in bodies.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let seed = inner
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(pid as u64);
            handles.push(std::thread::spawn(move || {
                /// Marks the process finished even if the body panics, so the
                /// scheduler never waits on a dead thread.
                struct FinishGuard {
                    inner: Arc<WorldInner>,
                    pid: usize,
                }
                impl Drop for FinishGuard {
                    fn drop(&mut self) {
                        self.inner.mark_finished(self.pid);
                    }
                }
                let _guard = FinishGuard {
                    inner: Arc::clone(&inner),
                    pid,
                };
                let mut ctx = Ctx {
                    pid,
                    rng: SmallRng::seed_from_u64(seed),
                    inner,
                };
                // Contain panics (the body's own bugs or injected chaos
                // panics): the FinishGuard already told the scheduler this
                // process is done, so the survivors keep running; the panic
                // payload is reported instead of re-thrown.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(&mut ctx)))
                    .map_err(panic_message)
            }));
        }

        if let Mode::Lockstep = self.inner.mode {
            self.inner.scheduler_loop(strategy.as_mut());
        }

        // Join every thread before inspecting results: a panicked process
        // must not make us abandon (and leak) the remaining handles.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        let mut outputs = Vec::with_capacity(self.inner.n);
        let mut halted = Vec::with_capacity(self.inner.n);
        let mut panics = Vec::with_capacity(self.inner.n);
        for j in joined {
            match j.expect("process gate thread never panics (bodies are caught)") {
                Ok(Ok(v)) => {
                    outputs.push(Some(v));
                    halted.push(None);
                    panics.push(None);
                }
                Ok(Err(e)) => {
                    outputs.push(None);
                    halted.push(Some(e));
                    panics.push(None);
                }
                Err(msg) => {
                    outputs.push(None);
                    halted.push(Some(Halted::Panicked));
                    panics.push(Some(msg));
                }
            }
        }

        let telemetry = self.inner.metrics.snapshot();
        // All writers are joined above, so this snapshot sees whole slots.
        let flight = self.inner.recorder.snapshot();
        match self.inner.mode {
            Mode::Lockstep => {
                let mut c = self.inner.central.lock();
                let history = if self.inner.record {
                    Some(std::mem::take(&mut c.history))
                } else {
                    None
                };
                RunReport {
                    outputs,
                    halted,
                    panics,
                    steps: c.steps,
                    per_proc_steps: std::mem::take(&mut c.per_proc_steps),
                    history,
                    telemetry,
                    flight,
                }
            }
            Mode::Free => RunReport {
                outputs,
                halted,
                panics,
                steps: self.inner.free_steps.load(Ordering::Relaxed),
                per_proc_steps: vec![0; self.inner.n],
                history: None,
                telemetry,
                flight,
            },
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{FnStrategy, RandomStrategy, RoundRobin};

    fn two_writer_bodies(
        world: &World,
    ) -> (
        Vec<ProcBody<u32>>,
        crate::reg::Reg<u32>,
        crate::reg::Reg<u32>,
    ) {
        let a = world.reg("a", 0u32);
        let b = world.reg("b", 0u32);
        let (a0, b0) = (a.clone(), b.clone());
        let (a1, b1) = (a.clone(), b.clone());
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| {
                a0.write(ctx, 1)?;
                b0.read(ctx)
            }),
            Box::new(move |ctx| {
                b1.write(ctx, 1)?;
                a1.read(ctx)
            }),
        ];
        (bodies, a, b)
    }

    #[test]
    fn lockstep_round_robin_is_deterministic() {
        let run = || {
            let mut w = World::builder(2).seed(3).build();
            let (bodies, _a, _b) = two_writer_bodies(&w);
            let r = w.run(bodies, Box::new(RoundRobin::new()));
            let ops: Vec<_> = r.history.as_ref().unwrap().ops().collect();
            (r.outputs.clone(), ops)
        };
        let (o1, h1) = run();
        let (o2, h2) = run();
        assert_eq!(o1, o2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn random_strategy_replays_with_same_seed() {
        let run = |seed| {
            let mut w = World::builder(2).seed(5).build();
            let (bodies, _a, _b) = two_writer_bodies(&w);
            let r = w.run(bodies, Box::new(RandomStrategy::new(seed)));
            let ops: Vec<_> = r.history.as_ref().unwrap().ops().collect();
            ops
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn flag_principle_holds_in_lockstep() {
        // Classic: both write their flag then read the other's. At least one
        // must see the other's flag — no schedule lets both read 0.
        for seed in 0..50 {
            let mut w = World::builder(2).seed(seed).build();
            let (bodies, _a, _b) = two_writer_bodies(&w);
            let r = w.run(bodies, Box::new(RandomStrategy::new(seed)));
            let zeros = r.outputs.iter().filter(|o| matches!(o, Some(0))).count();
            assert!(zeros <= 1, "seed {seed}: both readers saw 0");
        }
    }

    #[test]
    fn crash_leaves_other_processes_running() {
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| {
                // Loops forever unless crashed.
                loop {
                    r0.write(ctx, 1)?;
                }
            }),
            Box::new(move |ctx| {
                let mut last = 0;
                for _ in 0..10 {
                    last = r1.read(ctx)?;
                }
                Ok(last)
            }),
        ];
        // Crash process 0 at step 4; otherwise round-robin.
        let strategy = FnStrategy::new(|view| {
            if view.step == 4 && view.runnable.contains(&0) {
                Decision::Crash(0)
            } else {
                Decision::Grant(view.runnable[view.step as usize % view.runnable.len()])
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert_eq!(rep.halted[0], Some(Halted::Crashed));
        assert_eq!(rep.outputs[1], Some(1));
    }

    #[test]
    fn step_limit_halts_divergent_runs() {
        let mut w = World::builder(1).step_limit(100).build();
        let r = w.reg("r", 0u64);
        let bodies: Vec<ProcBody<u64>> = vec![Box::new(move |ctx| loop {
            r.write(ctx, 1)?;
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.halted[0], Some(Halted::StepLimit));
        assert_eq!(rep.steps, 100);
    }

    #[test]
    fn free_mode_runs_and_counts_steps() {
        let mut w = World::builder(4).mode(Mode::Free).build();
        let r = w.reg("r", 0u64);
        let bodies: Vec<ProcBody<u64>> = (0..4)
            .map(|_| {
                let r = r.clone();
                let b: ProcBody<u64> = Box::new(move |ctx| {
                    for _ in 0..100 {
                        r.write(ctx, 7)?;
                    }
                    r.read(ctx)
                });
                b
            })
            .collect();
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert!(rep.outputs.iter().all(|o| *o == Some(7)));
        assert_eq!(rep.steps, 4 * 100 + 4);
    }

    #[test]
    fn history_records_ops_with_tags() {
        let mut w = World::builder(1).build();
        let r = w.reg("r", 0u32);
        let bodies: Vec<ProcBody<()>> = vec![Box::new(move |ctx| {
            r.write_tagged(ctx, 5, 99)?;
            r.read(ctx)?;
            ctx.annotate("done", vec![1, 2]);
            Ok(())
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let h = rep.history.unwrap();
        let ops: Vec<_> = h.ops().collect();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].2, OpKind::Write);
        assert_eq!(ops[0].4, 99);
        assert_eq!(h.notes_labelled("done").count(), 1);
    }

    #[test]
    fn distinct_outputs_dedups() {
        let rep = RunReport {
            outputs: vec![Some(1), Some(1), Some(2), None],
            halted: vec![None, None, None, Some(Halted::Crashed)],
            panics: vec![None, None, None, None],
            steps: 0,
            per_proc_steps: vec![],
            history: None,
            telemetry: Telemetry::empty(4),
            flight: FlightLog::empty(4),
        };
        assert_eq!(rep.distinct_outputs(), vec![&1, &2]);
        assert_eq!(rep.decided_count(), 3);
    }

    #[test]
    fn telemetry_counts_accesses_in_both_modes() {
        for mode in [Mode::Lockstep, Mode::Free] {
            let mut w = World::builder(2).mode(mode).build();
            let (bodies, _a, _b) = two_writer_bodies(&w);
            let rep = w.run(bodies, Box::new(RoundRobin::new()));
            // Each body: one write, one read.
            for pid in 0..2 {
                assert_eq!(rep.telemetry.counter(pid, Counter::RegReads), 1, "{mode:?}");
                assert_eq!(
                    rep.telemetry.counter(pid, Counter::RegWrites),
                    1,
                    "{mode:?}"
                );
            }
            assert_eq!(
                rep.telemetry.total(Counter::RegReads) + rep.telemetry.total(Counter::RegWrites),
                rep.steps
            );
        }
    }

    #[test]
    fn lockstep_telemetry_matches_history_op_counts() {
        let mut w = World::builder(2).seed(9).build();
        let (bodies, _a, _b) = two_writer_bodies(&w);
        let rep = w.run(bodies, Box::new(RandomStrategy::new(9)));
        let h = rep.history.as_ref().unwrap();
        let t = &rep.telemetry;
        for pid in 0..2 {
            let reads = h
                .ops()
                .filter(|&(_, p, k, _, _)| p == pid && k == OpKind::Read)
                .count() as u64;
            let writes = h
                .ops()
                .filter(|&(_, p, k, _, _)| p == pid && k == OpKind::Write)
                .count() as u64;
            assert_eq!(t.counter(pid, Counter::RegReads), reads);
            assert_eq!(t.counter(pid, Counter::RegWrites), writes);
        }
    }

    #[test]
    fn phase_announcements_land_in_telemetry() {
        let mut w = World::builder(1).build();
        let r = w.reg("r", 0u32);
        let bodies: Vec<ProcBody<()>> = vec![Box::new(move |ctx| {
            ctx.phase(PhaseKind::Round(1));
            r.write(ctx, 5)?;
            ctx.phase(PhaseKind::Scan);
            r.read(ctx)?;
            Ok(())
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let phases = rep.telemetry.phases(0);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, PhaseKind::Round(1));
        assert_eq!(phases[1].kind, PhaseKind::Scan);
        assert!(phases[0].step <= phases[1].step);
    }

    /// Suppresses the default panic-to-stderr hook for tests that exercise
    /// panic containment, so expected contained panics don't spam output.
    fn quiet_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .copied()
                    .map(String::from)
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.contains("chaos") && !msg.contains("boom") {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn body_panic_is_contained_and_survivors_finish() {
        quiet_panics();
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| {
                r0.write(ctx, 1)?;
                panic!("boom: deliberate test panic");
            }),
            Box::new(move |ctx| {
                let mut last = 0;
                for _ in 0..10 {
                    last = r1.read(ctx)?;
                }
                Ok(last)
            }),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.halted[0], Some(Halted::Panicked));
        assert!(rep.panics[0].as_deref().unwrap().contains("boom"));
        assert_eq!(rep.outputs[1], Some(1), "survivor must finish normally");
        assert_eq!(rep.panicked_pids(), vec![0]);
    }

    #[test]
    fn injected_panic_decision_poisons_target() {
        quiet_panics();
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| loop {
                r0.write(ctx, 1)?;
            }),
            Box::new(move |ctx| {
                let mut last = 0;
                for _ in 0..10 {
                    last = r1.read(ctx)?;
                }
                Ok(last)
            }),
        ];
        let strategy = FnStrategy::new(|view: &ScheduleView<'_>| {
            if view.step == 4 && view.runnable.contains(&0) {
                Decision::Panic(0)
            } else {
                Decision::Grant(view.runnable[view.step as usize % view.runnable.len()])
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert_eq!(rep.halted[0], Some(Halted::Panicked));
        assert!(rep.panics[0].as_deref().unwrap().contains("chaos"));
        assert_eq!(rep.outputs[1], Some(1));
        // The injection shows up in the recorded history.
        let h = rep.history.unwrap();
        let faults: Vec<_> = h.faults().collect();
        assert!(faults
            .iter()
            .any(|&(_, pid, kind)| pid == 0 && kind == FaultKind::PanicInjected));
    }

    #[test]
    #[should_panic(expected = "illegal strategy decision Crash(0)")]
    fn crashing_a_crashed_process_names_the_illegal_decision() {
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| loop {
                r0.write(ctx, 1)?;
            }),
            Box::new(move |ctx| loop {
                r1.read(ctx)?;
            }),
        ];
        // Crash pid 0, then illegally crash it again.
        let strategy = FnStrategy::new(|_view: &ScheduleView<'_>| Decision::Crash(0));
        let _ = w.run(bodies, Box::new(strategy));
    }

    #[test]
    #[should_panic(expected = "single-shot")]
    fn world_is_single_shot() {
        let mut w = World::builder(1).build();
        let bodies: Vec<ProcBody<()>> = vec![Box::new(|_| Ok(()))];
        let _ = w.run(bodies, Box::new(RoundRobin::new()));
        let bodies: Vec<ProcBody<()>> = vec![Box::new(|_| Ok(()))];
        let _ = w.run(bodies, Box::new(RoundRobin::new()));
    }
}
