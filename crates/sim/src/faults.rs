//! Composable, seedable fault injection — the chaos engine.
//!
//! A [`FaultPlan`] is a declarative description of *when bad things happen*:
//! crash process 2 at global step 40, stall process 0 between steps 100 and
//! 250, inject a panic into process 1 after its 17th own step, starve
//! process 3 after a 500-step allowance. Plans are pure data: they compose
//! with **any** scheduling strategy at either granularity via the
//! [`FaultedStrategy`] (thread/register level, [`Strategy`]) and
//! [`FaultedTurnAdversary`] (turn level, [`TurnAdversary`]) wrappers, so the
//! same chaos scenario can be replayed against round-robin, seeded-random,
//! or bespoke adversaries without touching protocol code.
//!
//! Everything a plan does is visible afterwards: crash decisions appear as
//! crash events, and stall edges, injected panics, and starvation crashes
//! are reported through the wrappers' `drain_fault_notes` hooks, which the
//! world and turn driver record into the run's history / fault log.
//!
//! Semantics chosen to preserve the model's liveness guarantees:
//!
//! * **Crash / panic points** fire the first time their trigger is due *and*
//!   the target is still schedulable; a point whose target already finished
//!   or crashed is silently skipped (it fires at most once). A point whose
//!   target is mid-operation under a coarse-grained strategy (see
//!   [`Strategy::mid_op`]) stays armed and fires at the next operation
//!   boundary — it is neither torn into the operation nor lost.
//! * **Stall windows** hide the process from the wrapped strategy's view.
//!   If hiding would leave the strategy with an empty view (every runnable
//!   process stalled), the full view is passed through instead — a stall
//!   delays, it never wedges the run.
//! * **Starvation** caps a process's *own* granted steps; once the allowance
//!   is spent the process is crashed (starvation-forever is
//!   indistinguishable from a crash to the survivors, so we make it one and
//!   record it as [`FaultKind::Starved`]).
//!
//! [`FaultPlan::seeded`] generates randomized-but-replayable plans that
//! always leave at least one process unharmed — the bread and butter of the
//! chaos test suite (`tests/chaos.rs`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::history::FaultKind;
use crate::sched::{Decision, ScheduleView, Strategy};
use crate::turn::{TurnAdversary, TurnDecision, TurnView};

/// When a fault point becomes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The global step/event counter reaches this value.
    AtStep(u64),
    /// The target process has taken this many of its own steps.
    AtProcStep(u64),
}

/// What happens when a fault point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the process (a clean fail-stop).
    Crash,
    /// Inject a panic (fail-stop with an unwinding cause — exercises the
    /// containment path).
    Panic,
}

/// One crash/panic point of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// The target process.
    pub pid: usize,
    /// When the point becomes due.
    pub trigger: FaultTrigger,
    /// What to do when it fires.
    pub action: FaultAction,
}

/// A window during which a process is withheld from scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled process.
    pub pid: usize,
    /// First global step of the window (inclusive).
    pub from: u64,
    /// First global step after the window (exclusive).
    pub until: u64,
}

/// A declarative, composable fault-injection plan.
///
/// Build one with the chainable constructors, or generate a randomized one
/// with [`FaultPlan::seeded`]; then wrap a strategy with
/// [`FaultedStrategy::new`] or a turn adversary with
/// [`FaultedTurnAdversary::new`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash/panic points.
    pub points: Vec<FaultPoint>,
    /// Stall windows.
    pub stalls: Vec<StallWindow>,
    /// Per-process step allowances: `(pid, max_own_steps)`.
    pub starvation: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crash of `pid` at global step `step`.
    pub fn crash_at(mut self, step: u64, pid: usize) -> Self {
        self.points.push(FaultPoint {
            pid,
            trigger: FaultTrigger::AtStep(step),
            action: FaultAction::Crash,
        });
        self
    }

    /// Adds an injected panic into `pid` at global step `step`.
    pub fn panic_at(mut self, step: u64, pid: usize) -> Self {
        self.points.push(FaultPoint {
            pid,
            trigger: FaultTrigger::AtStep(step),
            action: FaultAction::Panic,
        });
        self
    }

    /// Adds a crash of `pid` once it has taken `own_steps` of its own steps.
    pub fn crash_at_proc_step(mut self, own_steps: u64, pid: usize) -> Self {
        self.points.push(FaultPoint {
            pid,
            trigger: FaultTrigger::AtProcStep(own_steps),
            action: FaultAction::Crash,
        });
        self
    }

    /// Adds a stall window: `pid` is withheld from scheduling while the
    /// global step counter is in `from..until`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn stall(mut self, pid: usize, from: u64, until: u64) -> Self {
        assert!(from < until, "empty stall window {from}..{until}");
        self.stalls.push(StallWindow { pid, from, until });
        self
    }

    /// Caps `pid`'s own granted steps at `allowance`; exceeding it crashes
    /// the process (recorded as [`FaultKind::Starved`]).
    pub fn starve_after(mut self, pid: usize, allowance: u64) -> Self {
        self.starvation.push((pid, allowance));
        self
    }

    /// Number of processes this plan may permanently kill (crash, panic,
    /// or starvation — stalls don't count).
    pub fn kill_count(&self) -> usize {
        let mut killed: Vec<usize> = self
            .points
            .iter()
            .map(|p| p.pid)
            .chain(self.starvation.iter().map(|&(p, _)| p))
            .collect();
        killed.sort_unstable();
        killed.dedup();
        killed.len()
    }

    /// Generates a randomized, replayable plan for `n` processes over a run
    /// of roughly `horizon` steps.
    ///
    /// The plan kills at most `n - 1` distinct processes (the wait-free
    /// model tolerates up to `n - 1` crash faults), mixes crash and panic
    /// points at both global and per-process triggers, and usually adds a
    /// stall window. Same `(seed, n, horizon)` → same plan.
    pub fn seeded(seed: u64, n: usize, horizon: u64) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(horizon >= 4, "horizon too small to place faults");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let max_kills = n.saturating_sub(1);
        let kills = if max_kills == 0 {
            0
        } else {
            rng.gen_range(0..=max_kills)
        };
        // Kill distinct victims so the cap is exact.
        let mut victims: Vec<usize> = (0..n).collect();
        for i in (1..victims.len()).rev() {
            let j = rng.gen_range(0..=i);
            victims.swap(i, j);
        }
        for &pid in victims.iter().take(kills) {
            let step = rng.gen_range(0..horizon);
            plan = match rng.gen_range(0..3u32) {
                0 => plan.crash_at(step, pid),
                1 => plan.panic_at(step, pid),
                _ => plan.crash_at_proc_step(step / (n as u64).max(1) + 1, pid),
            };
        }
        // Stall anyone (stalls are survivable), most of the time.
        if n >= 2 && rng.gen_bool(0.75) {
            let pid = rng.gen_range(0..n);
            let from = rng.gen_range(0..horizon / 2);
            let len = rng.gen_range(1..=horizon / 2);
            plan = plan.stall(pid, from, from + len);
        }
        plan
    }
}

/// Shared runtime state of a plan being executed against a run.
///
/// Both wrappers embed one of these; it tracks which points fired, which
/// stall windows are open, per-process grant counts, and the fault notes
/// not yet drained by the driver.
#[derive(Debug, Clone)]
struct PlanEngine {
    plan: FaultPlan,
    fired: Vec<bool>,
    stall_open: Vec<bool>,
    /// Steps granted to each pid so far (grown on demand).
    per_proc: Vec<u64>,
    /// Starvation allowances already converted into crashes.
    starved: Vec<bool>,
    notes: Vec<(usize, FaultKind)>,
}

impl PlanEngine {
    fn new(plan: FaultPlan) -> Self {
        let points = plan.points.len();
        let stalls = plan.stalls.len();
        let starv = plan.starvation.len();
        PlanEngine {
            plan,
            fired: vec![false; points],
            stall_open: vec![false; stalls],
            per_proc: Vec::new(),
            starved: vec![false; starv],
            notes: Vec::new(),
        }
    }

    fn count_grant(&mut self, pid: usize) {
        if self.per_proc.len() <= pid {
            self.per_proc.resize(pid + 1, 0);
        }
        self.per_proc[pid] += 1;
    }

    fn own_steps(&self, pid: usize) -> u64 {
        self.per_proc.get(pid).copied().unwrap_or(0)
    }

    /// Updates stall-window state for the current step and returns the pids
    /// currently stalled.
    fn update_stalls(&mut self, step: u64) -> Vec<usize> {
        let mut stalled = Vec::new();
        for (i, w) in self.plan.stalls.iter().enumerate() {
            let inside = step >= w.from && step < w.until;
            if inside && !self.stall_open[i] {
                self.stall_open[i] = true;
                self.notes.push((w.pid, FaultKind::StallStart));
            } else if !inside && self.stall_open[i] {
                self.stall_open[i] = false;
                self.notes.push((w.pid, FaultKind::StallEnd));
            }
            if inside {
                stalled.push(w.pid);
            }
        }
        stalled
    }

    /// The first due, unfired point whose target is in `runnable`, if any.
    /// Marks it fired.
    ///
    /// A point whose target is `defer` (currently inside a multi-access
    /// atomic operation — see [`Strategy::mid_op`]) is left **unfired**: it
    /// stays due and is delivered at the next decision point where the
    /// target sits on an operation boundary. A due point whose target is
    /// no longer schedulable at all is spent silently, as before.
    fn due_point(
        &mut self,
        step: u64,
        runnable: &[usize],
        defer: Option<usize>,
    ) -> Option<FaultPoint> {
        for (i, p) in self.plan.points.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if defer == Some(p.pid) {
                // Mid-operation: keep the point armed for the boundary.
                continue;
            }
            let due = match p.trigger {
                FaultTrigger::AtStep(s) => step >= s,
                FaultTrigger::AtProcStep(s) => self.own_steps(p.pid) >= s,
            };
            if due {
                self.fired[i] = true;
                if runnable.contains(&p.pid) {
                    return Some(*p);
                }
                // Target already finished/crashed — the point is spent.
            }
        }
        None
    }

    /// A starvation allowance exhausted by a runnable process, if any.
    /// Marks it spent and records the `Starved` note. Like
    /// [`PlanEngine::due_point`], a `defer`red (mid-operation) target keeps
    /// its allowance armed until the next operation boundary.
    fn due_starvation(&mut self, runnable: &[usize], defer: Option<usize>) -> Option<usize> {
        for (i, &(pid, allowance)) in self.plan.starvation.iter().enumerate() {
            if self.starved[i] {
                continue;
            }
            if defer == Some(pid) {
                continue;
            }
            if self.own_steps(pid) >= allowance {
                self.starved[i] = true;
                if runnable.contains(&pid) {
                    self.notes.push((pid, FaultKind::Starved));
                    return Some(pid);
                }
            }
        }
        None
    }

    fn drain_notes(&mut self) -> Vec<(usize, FaultKind)> {
        std::mem::take(&mut self.notes)
    }
}

/// Composes a [`FaultPlan`] with any register-level [`Strategy`].
///
/// The wrapper fires due crash/panic points and starvation crashes before
/// consulting the inner strategy, and hides stalled processes from the inner
/// strategy's view (falling back to the full view if *everything* runnable
/// is stalled). Fault notes are surfaced through
/// [`Strategy::drain_fault_notes`], so the world records them.
#[derive(Debug)]
pub struct FaultedStrategy<S> {
    inner: S,
    engine: PlanEngine,
}

impl<S: Strategy> FaultedStrategy<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultedStrategy {
            inner,
            engine: PlanEngine::new(plan),
        }
    }
}

impl<S: Strategy> Strategy for FaultedStrategy<S> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        // A process the inner strategy reports as mid-operation (e.g.
        // `OpGrained` half-way through a scan) must not be crashed, panicked,
        // starved, or stalled *now*: the fault stays armed and fires at the
        // next operation boundary instead of tearing the operation.
        let defer = self.inner.mid_op();
        if let Some(p) = self.engine.due_point(view.step, view.runnable, defer) {
            return match p.action {
                FaultAction::Crash => Decision::Crash(p.pid),
                FaultAction::Panic => Decision::Panic(p.pid),
            };
        }
        if let Some(pid) = self.engine.due_starvation(view.runnable, defer) {
            return Decision::Crash(pid);
        }
        let stalled = self.engine.update_stalls(view.step);
        let decision = if stalled.is_empty() {
            self.inner.decide(view)
        } else {
            let mut runnable = Vec::with_capacity(view.runnable.len());
            let mut pending = Vec::with_capacity(view.pending.len());
            for (i, &p) in view.runnable.iter().enumerate() {
                if !stalled.contains(&p) || defer == Some(p) {
                    runnable.push(p);
                    pending.push(view.pending[i]);
                }
            }
            if runnable.is_empty() {
                // Every runnable process stalled: a stall must not wedge the
                // run, so the inner strategy sees the unfiltered view.
                self.inner.decide(view)
            } else {
                let filtered = ScheduleView {
                    step: view.step,
                    runnable: &runnable,
                    pending: &pending,
                    flushable: view.flushable,
                };
                self.inner.decide(&filtered)
            }
        };
        if let Decision::Grant(pid) = decision {
            self.engine.count_grant(pid);
        }
        decision
    }

    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        let mut notes = self.engine.drain_notes();
        notes.extend(self.inner.drain_fault_notes());
        notes
    }

    fn mid_op(&self) -> Option<usize> {
        // Forwarded so stacked wrappers observe the innermost granularity.
        self.inner.mid_op()
    }
}

/// Composes a [`FaultPlan`] with any [`TurnAdversary`] — identical
/// semantics to [`FaultedStrategy`], at scan/write granularity (steps are
/// turn events).
#[derive(Debug)]
pub struct FaultedTurnAdversary<A> {
    inner: A,
    engine: PlanEngine,
}

impl<A> FaultedTurnAdversary<A> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: A, plan: FaultPlan) -> Self {
        FaultedTurnAdversary {
            inner,
            engine: PlanEngine::new(plan),
        }
    }

    /// The wrapped adversary (e.g. to inspect its state after a run).
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<M, A: TurnAdversary<M>> TurnAdversary<M> for FaultedTurnAdversary<A> {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        // Turn events are whole scans/writes, so every decision point is an
        // operation boundary: nothing is ever mid-op here.
        if let Some(p) = self.engine.due_point(view.events, view.active, None) {
            return match p.action {
                FaultAction::Crash => TurnDecision::Crash(p.pid),
                FaultAction::Panic => TurnDecision::Panic(p.pid),
            };
        }
        if let Some(pid) = self.engine.due_starvation(view.active, None) {
            return TurnDecision::Crash(pid);
        }
        let stalled = self.engine.update_stalls(view.events);
        let decision = if stalled.is_empty() {
            self.inner.choose(view)
        } else {
            let active: Vec<usize> = view
                .active
                .iter()
                .copied()
                .filter(|p| !stalled.contains(p))
                .collect();
            if active.is_empty() {
                self.inner.choose(view)
            } else {
                let filtered = TurnView {
                    events: view.events,
                    active: &active,
                    shared: view.shared,
                    phases: view.phases,
                    crashed: view.crashed,
                };
                self.inner.choose(&filtered)
            }
        };
        if let TurnDecision::Step(pid) = decision {
            self.engine.count_grant(pid);
        }
        decision
    }

    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        let mut notes = self.engine.drain_notes();
        notes.extend(self.inner.drain_fault_notes());
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Halted;
    use crate::sched::RoundRobin;
    use crate::turn::{TurnDriver, TurnProcess, TurnRoundRobin, TurnStep};
    use crate::world::{ProcBody, World};

    #[test]
    fn plan_builders_accumulate() {
        let plan = FaultPlan::new()
            .crash_at(10, 0)
            .panic_at(20, 1)
            .crash_at_proc_step(5, 2)
            .stall(0, 3, 9)
            .starve_after(1, 100);
        assert_eq!(plan.points.len(), 3);
        assert_eq!(plan.stalls.len(), 1);
        assert_eq!(plan.starvation.len(), 1);
        assert_eq!(plan.kill_count(), 3);
    }

    #[test]
    #[should_panic(expected = "empty stall window")]
    fn empty_stall_window_rejected() {
        let _ = FaultPlan::new().stall(0, 5, 5);
    }

    #[test]
    fn seeded_plans_replay_and_respect_kill_cap() {
        for seed in 0..200 {
            let a = FaultPlan::seeded(seed, 3, 100);
            let b = FaultPlan::seeded(seed, 3, 100);
            assert_eq!(a, b, "seed {seed} not replayable");
            assert!(a.kill_count() <= 2, "seed {seed} kills too many");
        }
        // Different seeds differ at least once.
        assert!((0..20).any(|s| FaultPlan::seeded(s, 4, 100) != FaultPlan::seeded(s + 1, 4, 100)));
    }

    #[test]
    fn faulted_strategy_crashes_at_step() {
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| loop {
                r0.write(ctx, 1)?;
            }),
            Box::new(move |ctx| {
                let mut last = 0;
                for _ in 0..20 {
                    last = r1.read(ctx)?;
                }
                Ok(last)
            }),
        ];
        let plan = FaultPlan::new().crash_at(6, 0);
        let rep = w.run(
            bodies,
            Box::new(FaultedStrategy::new(RoundRobin::new(), plan)),
        );
        assert_eq!(rep.halted[0], Some(Halted::Crashed));
        assert_eq!(rep.outputs[1], Some(1));
        let h = rep.history.unwrap();
        assert_eq!(h.crashes().count(), 1);
    }

    #[test]
    fn starvation_crashes_after_allowance_and_is_noted() {
        let mut w = World::builder(2).build();
        let r = w.reg("r", 0u32);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| loop {
                r0.write(ctx, 1)?;
            }),
            Box::new(move |ctx| {
                let mut last = 0;
                for _ in 0..20 {
                    last = r1.read(ctx)?;
                }
                Ok(last)
            }),
        ];
        let plan = FaultPlan::new().starve_after(0, 3);
        let rep = w.run(
            bodies,
            Box::new(FaultedStrategy::new(RoundRobin::new(), plan)),
        );
        assert_eq!(rep.halted[0], Some(Halted::Crashed));
        assert_eq!(rep.outputs[1], Some(1));
        let h = rep.history.unwrap();
        // Process 0 got exactly its allowance of own steps before the crash.
        assert_eq!(
            h.ops().filter(|&(_, pid, ..)| pid == 0).count(),
            3,
            "allowance not enforced"
        );
        assert!(h
            .faults()
            .any(|(_, pid, kind)| pid == 0 && kind == FaultKind::Starved));
    }

    #[test]
    fn stall_window_suppresses_and_resumes_with_notes() {
        struct Counter {
            left: u32,
        }
        impl TurnProcess for Counter {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                if self.left == 0 {
                    TurnStep::Decide(0)
                } else {
                    self.left -= 1;
                    TurnStep::Write(self.left)
                }
            }
        }
        let procs = vec![Counter { left: 10 }, Counter { left: 10 }];
        let plan = FaultPlan::new().stall(0, 2, 12);
        let mut adv = FaultedTurnAdversary::new(TurnRoundRobin::new(), plan);
        // While the window is open, pid 0 must not move (pid 1 is available
        // the whole time, so the liveness fallback never triggers): its
        // register stays frozen at whatever it held when the window opened.
        let mut frozen: Option<u32> = None;
        let report = TurnDriver::new(procs).run_observed(&mut adv, 10_000, |d| {
            let ev = d.events();
            if (3..=12).contains(&ev) {
                let cur = d.shared()[0];
                if let Some(f) = frozen {
                    assert_eq!(cur, f, "pid 0 wrote during its stall window");
                } else {
                    frozen = Some(cur);
                }
            }
        });
        assert!(report.completed);
        // Both eventually decide despite the stall.
        assert_eq!(report.outputs, vec![Some(0), Some(0)]);
        let stall_edges: Vec<_> = report
            .fault_events
            .iter()
            .filter(|&&(_, pid, _)| pid == 0)
            .collect();
        assert!(
            stall_edges
                .iter()
                .any(|&&(_, _, k)| k == FaultKind::StallStart),
            "missing StallStart: {stall_edges:?}"
        );
        assert!(
            stall_edges
                .iter()
                .any(|&&(_, _, k)| k == FaultKind::StallEnd),
            "missing StallEnd: {stall_edges:?}"
        );
    }

    #[test]
    fn stall_of_everyone_falls_back_to_full_view() {
        struct Once;
        impl TurnProcess for Once {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                TurnStep::Decide(7)
            }
        }
        // Stall the only process for the whole run: the fallback must let
        // it finish anyway.
        let plan = FaultPlan::new().stall(0, 0, 1_000_000);
        let mut adv = FaultedTurnAdversary::new(TurnRoundRobin::new(), plan);
        let report = TurnDriver::new(vec![Once]).run(&mut adv, 1_000);
        assert!(report.completed);
        assert_eq!(report.outputs[0], Some(7));
    }

    #[test]
    fn turn_level_panic_point_fires() {
        struct Spin;
        impl TurnProcess for Spin {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                TurnStep::Write(0)
            }
        }
        struct Quick;
        impl TurnProcess for Quick {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                TurnStep::Decide(1)
            }
        }
        // Heterogeneous procs need a common type; use an enum.
        enum P {
            Spin(Spin),
            Quick(Quick),
        }
        impl TurnProcess for P {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, view: &[u32]) -> TurnStep<u32, u32> {
                match self {
                    P::Spin(p) => p.on_scan(view),
                    P::Quick(p) => p.on_scan(view),
                }
            }
        }
        let procs = vec![P::Spin(Spin), P::Quick(Quick)];
        let plan = FaultPlan::new().panic_at(4, 0);
        let mut adv = FaultedTurnAdversary::new(TurnRoundRobin::new(), plan);
        let report = TurnDriver::new(procs).run(&mut adv, 1_000);
        assert!(report.completed);
        assert_eq!(report.halted[0], Some(Halted::Panicked));
        assert_eq!(report.outputs[1], Some(1));
        assert!(report
            .fault_events
            .iter()
            .any(|&(_, pid, k)| pid == 0 && k == FaultKind::PanicInjected));
    }

    #[test]
    fn spent_point_does_not_refire() {
        // Crash pid 0 at step 0; once fired the point must not hit again
        // even though `step >= 0` stays true forever.
        let mut engine = PlanEngine::new(FaultPlan::new().crash_at(0, 0));
        assert!(engine.due_point(0, &[0, 1], None).is_some());
        assert!(engine.due_point(5, &[0, 1], None).is_none());
    }

    #[test]
    fn point_on_finished_target_is_skipped() {
        let mut engine = PlanEngine::new(FaultPlan::new().crash_at(3, 0));
        // Due, but pid 0 no longer runnable: spent silently.
        assert!(engine.due_point(10, &[1, 2], None).is_none());
        assert!(engine.due_point(11, &[0, 1, 2], None).is_none());
    }

    #[test]
    fn mid_op_point_defers_without_spending() {
        let mut engine = PlanEngine::new(FaultPlan::new().crash_at(3, 0));
        // Due, target runnable, but mid-operation: armed, not spent.
        assert!(engine.due_point(10, &[0, 1], Some(0)).is_none());
        // A different process mid-op does not shield the target.
        let mut other = PlanEngine::new(FaultPlan::new().crash_at(3, 0));
        assert!(other.due_point(10, &[0, 1], Some(1)).is_some());
        // At the next boundary the point finally fires.
        assert!(engine.due_point(11, &[0, 1], None).is_some());
        assert!(engine.due_point(12, &[0, 1], None).is_none(), "fires once");

        // Starvation defers the same way.
        let mut engine = PlanEngine::new(FaultPlan::new().starve_after(0, 2));
        engine.count_grant(0);
        engine.count_grant(0);
        assert!(engine.due_starvation(&[0, 1], Some(0)).is_none());
        assert!(engine.due_starvation(&[0, 1], None).is_some());
    }
}
