//! Work-stealing job queues for the parallel DFS frontier.
//!
//! [`StealQueues`] is the minimal deque set [`crate::explore::explore_parallel`]
//! schedules subtree jobs on: one double-ended queue per worker plus a
//! global injector. An owner pops its own deque LIFO (depth-first locality:
//! the job it seeded last is the one whose factory state is warmest);
//! thieves take from the injector or a victim's deque FIFO (oldest job —
//! the classic Chase–Lev discipline, here with plain mutexed deques, which
//! the job granularity easily amortizes: one steal per multi-millisecond
//! subtree exploration).
//!
//! The queues are `Sync` for `T: Send` and safe Rust throughout (the crate
//! forbids `unsafe`); fairness and progress come from `pop` falling back to
//! stealing before reporting exhaustion.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Per-worker deques plus a global injector (see the module docs).
#[derive(Debug)]
pub struct StealQueues<T> {
    injector: Mutex<VecDeque<T>>,
    locals: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
    // Per-worker halves of the same story: how many jobs each worker
    // popped at all (`executes`), and how many of those came from the
    // injector or a victim's deque (`worker_steals`). The totals feed
    // `steals()`; the per-worker split feeds explorer telemetry.
    worker_steals: Vec<AtomicU64>,
    executes: Vec<AtomicU64>,
}

impl<T> StealQueues<T> {
    /// Creates queues for `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        StealQueues {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
            worker_steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            executes: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Distributes `jobs` round-robin across the worker deques, so every
    /// worker starts with local work before any stealing happens.
    pub fn seed(&self, jobs: impl IntoIterator<Item = T>) {
        for (i, job) in jobs.into_iter().enumerate() {
            self.locals[i % self.locals.len()].lock().push_back(job);
        }
    }

    /// Pushes a job onto `worker`'s own deque (popped LIFO by the owner).
    pub fn push_local(&self, worker: usize, job: T) {
        self.locals[worker].lock().push_back(job);
    }

    /// Pushes a job onto the global injector (taken FIFO by anyone).
    pub fn push_global(&self, job: T) {
        self.injector.lock().push_back(job);
    }

    /// Takes the next job for `worker`: its own deque LIFO first, then the
    /// injector FIFO, then the other workers' deques FIFO (cyclic scan from
    /// `worker + 1`). Returns `None` only when every queue was observed
    /// empty — with a fixed seeded job set and no concurrent pushes that is
    /// a stable exhaustion signal.
    pub fn pop(&self, worker: usize) -> Option<T> {
        if let Some(job) = self.locals[worker].lock().pop_back() {
            self.executes[worker].fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().pop_front() {
            self.count_steal(worker);
            return Some(job);
        }
        let n = self.locals.len();
        for k in 1..n {
            let victim = (worker + k) % n;
            if let Some(job) = self.locals[victim].lock().pop_front() {
                self.count_steal(worker);
                return Some(job);
            }
        }
        None
    }

    fn count_steal(&self, worker: usize) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        self.worker_steals[worker].fetch_add(1, Ordering::Relaxed);
        self.executes[worker].fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs taken from the injector or another worker's deque.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Per-worker steal counts (same events as [`StealQueues::steals`],
    /// attributed to the thief).
    pub fn worker_steals(&self) -> Vec<u64> {
        self.worker_steals
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-worker job counts: every successful [`StealQueues::pop`],
    /// local or stolen.
    pub fn worker_executes(&self) -> Vec<u64> {
        self.executes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let q = StealQueues::new(2);
        q.push_local(0, 1);
        q.push_local(0, 2);
        q.push_local(0, 3);
        // Owner sees its newest job first.
        assert_eq!(q.pop(0), Some(3));
        // The thief takes the oldest.
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.steals(), 1);
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn injector_feeds_every_worker() {
        let q = StealQueues::new(3);
        q.push_global(10);
        q.push_global(20);
        assert_eq!(q.pop(2), Some(10));
        assert_eq!(q.pop(0), Some(20));
        assert_eq!(q.steals(), 2);
    }

    #[test]
    fn seed_round_robins_and_drains_completely() {
        let q = StealQueues::new(3);
        q.seed(0..10);
        let mut got: Vec<i32> = Vec::new();
        // Worker 0 drains everything, stealing the other deques dry.
        while let Some(j) = q.pop(0) {
            got.push(j);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.steals() > 0, "draining foreign deques counts as steals");
    }

    #[test]
    fn per_worker_counters_split_the_totals() {
        let q = StealQueues::new(2);
        q.push_local(0, 1);
        q.push_local(0, 2);
        q.push_global(3);
        assert_eq!(q.pop(0), Some(2)); // local
        assert_eq!(q.pop(1), Some(3)); // injector steal
        assert_eq!(q.pop(1), Some(1)); // victim steal
        assert_eq!(q.worker_steals(), vec![0, 2]);
        assert_eq!(q.worker_executes(), vec![1, 2]);
        assert_eq!(q.steals(), q.worker_steals().iter().sum::<u64>());
        assert_eq!(
            q.worker_executes().iter().sum::<u64>(),
            3,
            "every popped job is an execute"
        );
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        use std::sync::atomic::AtomicU64;
        let q = StealQueues::new(4);
        q.seed(0..1000u64);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    while let Some(j) = q.pop(w) {
                        sum.fetch_add(j, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
