//! Scheduling strategies — the adversary.
//!
//! In the randomized-consensus literature the scheduler is an *adversary*:
//! it observes everything (memory contents, pending operations, past coin
//! flips) and picks which process takes the next step, possibly crashing
//! processes along the way. A [`Strategy`] is exactly that: at every
//! quiescent point it is shown the runnable set and each process's pending
//! operation, and returns a [`Decision`].
//!
//! Adaptive adversaries that need to inspect memory can capture cloned
//! [`Reg`](crate::reg::Reg) handles and use [`Reg::peek`](crate::reg::Reg::peek)
//! inside their decision function — at decision time no process is mid-access,
//! so peeks observe a consistent global state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::history::{FaultKind, OpKind, RegId};

/// The operation a blocked process will perform once granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOp {
    /// Read or write.
    pub kind: OpKind,
    /// Target register.
    pub reg: RegId,
    /// Tag the process attached (0 if none).
    pub tag: u64,
}

/// What the scheduler sees at a decision point.
#[derive(Debug)]
pub struct ScheduleView<'a> {
    /// Global step index of the step about to be granted.
    pub step: u64,
    /// Processes eligible to run (blocked at a gate, not crashed/finished),
    /// in increasing pid order.
    pub runnable: &'a [usize],
    /// The pending operation of each runnable process (parallel to
    /// [`runnable`](ScheduleView::runnable)).
    pub pending: &'a [PendingOp],
}

impl ScheduleView<'_> {
    /// The pending operation of process `pid`, if runnable.
    pub fn pending_of(&self, pid: usize) -> Option<PendingOp> {
        self.runnable
            .iter()
            .position(|&p| p == pid)
            .map(|i| self.pending[i])
    }
}

/// A scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let this (runnable) process perform its pending operation.
    Grant(usize),
    /// Crash this process: it never takes another step. The scheduler is
    /// then consulted again for the same step.
    Crash(usize),
    /// Inject a panic into this (runnable) process: at its next gate the
    /// process unwinds with a panic, which the world contains and reports
    /// as [`Halted::Panicked`](crate::error::Halted). The scheduler is then
    /// consulted again for the same step.
    Panic(usize),
}

/// The adversary interface.
///
/// Strategies run on the thread that called
/// [`World::run`](crate::world::World::run), so they need not be `Send`.
pub trait Strategy {
    /// Picks the next decision given the current quiescent state.
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision;

    /// Fault events the strategy wants appended to the recorded history.
    ///
    /// The world calls this after every decision and records each entry as
    /// an [`Event::Fault`](crate::history::Event) at the current step —
    /// this is how fault-injection wrappers (see the `faults` module) make
    /// stall windows and starvation visible in replayable histories.
    /// The default implementation reports nothing.
    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        Vec::new()
    }
}

/// Cycles fairly through the runnable processes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin strategy starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for RoundRobin {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        // Grant the first runnable pid >= next (cyclically).
        let pick = view
            .runnable
            .iter()
            .copied()
            .find(|&p| p >= self.next)
            .unwrap_or(view.runnable[0]);
        self.next = pick + 1;
        Decision::Grant(pick)
    }
}

/// Grants a uniformly random runnable process (seeded, replayable).
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    rng: SmallRng,
}

impl RandomStrategy {
    /// Creates a random strategy from a seed.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        let i = self.rng.gen_range(0..view.runnable.len());
        Decision::Grant(view.runnable[i])
    }
}

/// Wraps a closure as a strategy — the quickest way to write a bespoke
/// adversary in a test.
pub struct FnStrategy<F>(F);

impl<F: FnMut(&ScheduleView<'_>) -> Decision> FnStrategy<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnStrategy").finish_non_exhaustive()
    }
}

impl<F: FnMut(&ScheduleView<'_>) -> Decision> Strategy for FnStrategy<F> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        (self.0)(view)
    }
}

/// Runs one process as long as possible, then the next — the "solo burst"
/// adversary. Maximizes the asynchrony between processes, useful for
/// stressing the rounds-strip shrinking logic (one process racing far ahead).
#[derive(Debug, Clone)]
pub struct SoloBursts {
    /// How many consecutive steps each burst grants.
    burst: u64,
    current: usize,
    remaining: u64,
}

impl SoloBursts {
    /// Creates a strategy granting `burst` consecutive steps per process.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn new(burst: u64) -> Self {
        assert!(burst > 0, "burst must be positive");
        SoloBursts {
            burst,
            current: 0,
            remaining: burst,
        }
    }
}

impl Strategy for SoloBursts {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        if !view.runnable.contains(&self.current) || self.remaining == 0 {
            // Move to the next runnable process after current.
            let next = view
                .runnable
                .iter()
                .copied()
                .find(|&p| p > self.current)
                .unwrap_or(view.runnable[0]);
            self.current = next;
            self.remaining = self.burst;
        }
        self.remaining -= 1;
        Decision::Grant(self.current)
    }
}

/// Decorator that crashes given processes at given global steps, delegating
/// every other decision to an inner strategy.
#[derive(Debug)]
pub struct CrashPlan<S> {
    inner: S,
    /// Sorted list of (step, pid) crash points, consumed front to back.
    plan: Vec<(u64, usize)>,
    done: usize,
}

impl<S: Strategy> CrashPlan<S> {
    /// Wraps `inner`, crashing `pid` the first time the global step counter
    /// reaches `step` for each `(step, pid)` in `plan`.
    pub fn new(inner: S, mut plan: Vec<(u64, usize)>) -> Self {
        plan.sort_unstable();
        CrashPlan {
            inner,
            plan,
            done: 0,
        }
    }
}

impl<S: Strategy> Strategy for CrashPlan<S> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        if let Some(&(step, pid)) = self.plan.get(self.done) {
            if view.step >= step {
                self.done += 1;
                if view.runnable.contains(&pid) {
                    return Decision::Crash(pid);
                }
                // Process already finished/crashed; fall through.
            }
        }
        self.inner.decide(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(step: u64, runnable: &'a [usize], pending: &'a [PendingOp]) -> ScheduleView<'a> {
        ScheduleView {
            step,
            runnable,
            pending,
        }
    }

    fn dummy_pending(n: usize) -> Vec<PendingOp> {
        vec![
            PendingOp {
                kind: OpKind::Read,
                reg: 0,
                tag: 0
            };
            n
        ]
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let runnable = [0, 1, 2];
        let pending = dummy_pending(3);
        let picks: Vec<_> = (0..6)
            .map(|s| match rr.decide(&view(s, &runnable, &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_missing_processes() {
        let mut rr = RoundRobin::new();
        let pending = dummy_pending(2);
        // Process 1 not runnable.
        let picks: Vec<_> = (0..4)
            .map(|s| match rr.decide(&view(s, &[0, 2], &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_is_reproducible() {
        let seq = |seed| {
            let mut s = RandomStrategy::new(seed);
            let runnable = [0, 1, 2, 3];
            let pending = dummy_pending(4);
            (0..20)
                .map(|i| match s.decide(&view(i, &runnable, &pending)) {
                    Decision::Grant(p) => p,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }

    #[test]
    fn solo_bursts_stays_then_moves() {
        let mut s = SoloBursts::new(3);
        let runnable = [0, 1];
        let pending = dummy_pending(2);
        let picks: Vec<_> = (0..6)
            .map(|i| match s.decide(&view(i, &runnable, &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn crash_plan_fires_once() {
        let mut s = CrashPlan::new(RoundRobin::new(), vec![(2, 1)]);
        let runnable = [0, 1];
        let pending = dummy_pending(2);
        assert_eq!(s.decide(&view(0, &runnable, &pending)), Decision::Grant(0));
        assert_eq!(s.decide(&view(1, &runnable, &pending)), Decision::Grant(1));
        assert_eq!(s.decide(&view(2, &runnable, &pending)), Decision::Crash(1));
        // After the crash the inner strategy resumes.
        let runnable = [0];
        let pending = dummy_pending(1);
        assert_eq!(s.decide(&view(2, &runnable, &pending)), Decision::Grant(0));
    }

    #[test]
    fn pending_of_finds_by_pid() {
        let runnable = [3, 5];
        let pending = [
            PendingOp {
                kind: OpKind::Write,
                reg: 9,
                tag: 1,
            },
            PendingOp {
                kind: OpKind::Read,
                reg: 2,
                tag: 0,
            },
        ];
        let v = view(0, &runnable, &pending);
        assert_eq!(v.pending_of(5).unwrap().reg, 2);
        assert!(v.pending_of(4).is_none());
    }
}
