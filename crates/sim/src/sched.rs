//! Scheduling strategies — the adversary.
//!
//! In the randomized-consensus literature the scheduler is an *adversary*:
//! it observes everything (memory contents, pending operations, past coin
//! flips) and picks which process takes the next step, possibly crashing
//! processes along the way. A [`Strategy`] is exactly that: at every
//! quiescent point it is shown the runnable set and each process's pending
//! operation, and returns a [`Decision`].
//!
//! Adaptive adversaries that need to inspect memory can capture cloned
//! [`Reg`](crate::reg::Reg) handles and use [`Reg::peek`](crate::reg::Reg::peek)
//! inside their decision function — at decision time no process is mid-access,
//! so peeks observe a consistent global state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::history::{FaultKind, OpKind, RegId};

/// The operation a blocked process will perform once granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOp {
    /// Read or write.
    pub kind: OpKind,
    /// Target register.
    pub reg: RegId,
    /// Tag the process attached (0 if none).
    pub tag: u64,
}

/// What the scheduler sees at a decision point.
#[derive(Debug)]
pub struct ScheduleView<'a> {
    /// Global step index of the step about to be granted.
    pub step: u64,
    /// Processes eligible to run (blocked at a gate, not crashed/finished),
    /// in increasing pid order.
    pub runnable: &'a [usize],
    /// The pending operation of each runnable process (parallel to
    /// [`runnable`](ScheduleView::runnable)).
    pub pending: &'a [PendingOp],
    /// Buffered stores eligible to flush right now, as `(pid, reg)` pairs
    /// in ascending pid order (for each pid: TSO exposes the buffer head,
    /// PSO the oldest entry per register). Always empty under
    /// [`WeakMode::Sc`](crate::weakmem::WeakMode) — strategies written
    /// before the weak-memory plane never see a flushable entry and keep
    /// their exact decision streams.
    pub flushable: &'a [(usize, RegId)],
}

impl ScheduleView<'_> {
    /// The pending operation of process `pid`, if runnable.
    pub fn pending_of(&self, pid: usize) -> Option<PendingOp> {
        self.runnable
            .iter()
            .position(|&p| p == pid)
            .map(|i| self.pending[i])
    }
}

/// A scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let this (runnable) process perform its pending operation.
    Grant(usize),
    /// Crash this process: it never takes another step. The scheduler is
    /// then consulted again for the same step.
    Crash(usize),
    /// Inject a panic into this (runnable) process: at its next gate the
    /// process unwinds with a panic, which the world contains and reports
    /// as [`Halted::Panicked`](crate::error::Halted). The scheduler is then
    /// consulted again for the same step.
    Panic(usize),
    /// Land one buffered store of `pid` targeting `reg` in shared memory
    /// (weak-memory modes only; the pair must appear in
    /// [`ScheduleView::flushable`]). Like a crash, a flush does not consume
    /// a step — the scheduler is consulted again for the same step.
    Flush {
        /// The process whose store buffer drains one entry.
        pid: usize,
        /// The register of the entry to flush (disambiguates under PSO;
        /// under TSO it must match the buffer head).
        reg: RegId,
    },
}

/// The adversary interface.
///
/// Strategies run on the thread that called
/// [`World::run`](crate::world::World::run), so they need not be `Send`.
pub trait Strategy {
    /// Picks the next decision given the current quiescent state.
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision;

    /// Fault events the strategy wants appended to the recorded history.
    ///
    /// The world calls this after every decision and records each entry as
    /// an [`Event::Fault`](crate::history::Event) at the current step —
    /// this is how fault-injection wrappers (see the `faults` module) make
    /// stall windows and starvation visible in replayable histories.
    /// The default implementation reports nothing.
    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        Vec::new()
    }

    /// The process currently *inside* a multi-access atomic operation, if
    /// this strategy schedules at a coarser-than-register granularity (see
    /// `OpGrained` in the snapshot crate, which grants a whole scan or
    /// update as one turn).
    ///
    /// Fault-injection wrappers consult this before delivering a due
    /// crash/panic point: a fault landing mid-operation would tear the very
    /// atomicity the strategy exists to provide, so the wrapper defers it
    /// to the next operation boundary instead of firing (or silently
    /// skipping) it. The default — every quiescent point is a boundary —
    /// returns `None`.
    fn mid_op(&self) -> Option<usize> {
        None
    }
}

/// Cycles fairly through the runnable processes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin strategy starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for RoundRobin {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        // Grant the first runnable pid >= next (cyclically).
        let pick = view
            .runnable
            .iter()
            .copied()
            .find(|&p| p >= self.next)
            .unwrap_or(view.runnable[0]);
        self.next = pick + 1;
        Decision::Grant(pick)
    }
}

/// Grants a uniformly random runnable process (seeded, replayable).
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    rng: SmallRng,
}

impl RandomStrategy {
    /// Creates a random strategy from a seed.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        let i = self.rng.gen_range(0..view.runnable.len());
        Decision::Grant(view.runnable[i])
    }
}

/// Wraps a closure as a strategy — the quickest way to write a bespoke
/// adversary in a test.
pub struct FnStrategy<F>(F);

impl<F: FnMut(&ScheduleView<'_>) -> Decision> FnStrategy<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnStrategy").finish_non_exhaustive()
    }
}

impl<F: FnMut(&ScheduleView<'_>) -> Decision> Strategy for FnStrategy<F> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        (self.0)(view)
    }
}

/// Runs one process as long as possible, then the next — the "solo burst"
/// adversary. Maximizes the asynchrony between processes, useful for
/// stressing the rounds-strip shrinking logic (one process racing far ahead).
#[derive(Debug, Clone)]
pub struct SoloBursts {
    /// How many consecutive steps each burst grants.
    burst: u64,
    current: usize,
    remaining: u64,
}

impl SoloBursts {
    /// Creates a strategy granting `burst` consecutive steps per process.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn new(burst: u64) -> Self {
        assert!(burst > 0, "burst must be positive");
        SoloBursts {
            burst,
            current: 0,
            remaining: burst,
        }
    }
}

impl Strategy for SoloBursts {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        if !view.runnable.contains(&self.current) || self.remaining == 0 {
            // Move to the next runnable process after current.
            let next = view
                .runnable
                .iter()
                .copied()
                .find(|&p| p > self.current)
                .unwrap_or(view.runnable[0]);
            self.current = next;
            self.remaining = self.burst;
        }
        self.remaining -= 1;
        Decision::Grant(self.current)
    }
}

/// Decorator that crashes given processes at given global steps, delegating
/// every other decision to an inner strategy.
#[derive(Debug)]
pub struct CrashPlan<S> {
    inner: S,
    /// Sorted list of (step, pid) crash points still awaiting delivery. An
    /// entry is only removed when its crash is actually issued: the target
    /// may be absent from `view.runnable` at the due step without being
    /// dead — an outer wrapper (e.g. a stall window from the `faults`
    /// module) can hide a live pid from this view, and the crash must still
    /// land once the pid reappears.
    plan: Vec<(u64, usize)>,
}

impl<S: Strategy> CrashPlan<S> {
    /// Wraps `inner`, crashing `pid` the first time the global step counter
    /// reaches `step` *and* `pid` is visible as runnable, for each
    /// `(step, pid)` in `plan`.
    pub fn new(inner: S, mut plan: Vec<(u64, usize)>) -> Self {
        plan.sort_unstable();
        CrashPlan { inner, plan }
    }

    /// Crash points not yet delivered (targets that finished before their
    /// due step simply stay here; they are never illegally crashed).
    pub fn undelivered(&self) -> &[(u64, usize)] {
        &self.plan
    }
}

impl<S: Strategy> Strategy for CrashPlan<S> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        // Deliver the earliest due entry whose target is currently visible.
        // Due-but-hidden entries are retried at every later decision point.
        let due = self
            .plan
            .iter()
            .position(|&(step, pid)| view.step >= step && view.runnable.contains(&pid));
        if let Some(i) = due {
            let (_, pid) = self.plan.remove(i);
            return Decision::Crash(pid);
        }
        self.inner.decide(view)
    }

    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        self.inner.drain_fault_notes()
    }
}

/// PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS'10).
///
/// Samples a random priority assignment over the `n` processes plus `d`
/// priority *change points* over the step horizon, then always grants the
/// highest-priority runnable process. A schedule drawn this way exposes any
/// bug of depth ≤ d+1 with probability ≥ 1/(n·kᵈ) for a k-step program — a
/// guarantee uniform random walks lack. With `d = 0` the strategy degenerates
/// to a fixed priority order: the top-priority process runs solo to
/// completion, then the next, and so on.
#[derive(Debug, Clone)]
pub struct PctStrategy {
    /// Current priority of each pid; higher wins. Initial priorities are a
    /// random permutation of `d+1 ..= d+n`, so every change-point demotion
    /// (to `d - i` for the i-th change point) sinks below all of them.
    priorities: Vec<u64>,
    /// Sorted steps at which the currently-leading runnable process is
    /// demoted.
    change_points: Vec<u64>,
    next_cp: usize,
    /// Sorted steps at which the currently-leading runnable process is
    /// *crashed* (empty unless built with [`PctStrategy::with_faults`]).
    fault_points: Vec<u64>,
    next_fp: usize,
}

impl PctStrategy {
    /// Creates a PCT schedule sampler for a world of `n` processes with `d`
    /// priority change points drawn uniformly over `0..horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero. Granting panics if the world contains a pid
    /// ≥ `n` — size the strategy to the world it drives.
    pub fn new(seed: u64, n: usize, d: usize, horizon: u64) -> Self {
        assert!(n > 0, "PCT needs at least one process");
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = d as u64;
        let mut priorities: Vec<u64> = (0..n as u64).map(|i| base + 1 + i).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            priorities.swap(i, j);
        }
        let mut change_points: Vec<u64> =
            (0..d).map(|_| rng.gen_range(0..horizon.max(1))).collect();
        change_points.sort_unstable();
        PctStrategy {
            priorities,
            change_points,
            next_cp: 0,
            fault_points: Vec::new(),
            next_fp: 0,
        }
    }

    /// Like [`PctStrategy::new`], plus `faults` *fault points* drawn
    /// uniformly over the horizon: at each one the currently-leading
    /// runnable process is **crashed** instead of demoted, extending the
    /// PCT depth-d guarantee to bugs that additionally require crash
    /// faults. A fault point due while only one process remains runnable is
    /// skipped (crashing the sole survivor would wedge the run), keeping
    /// every sampled schedule a complete execution.
    ///
    /// The fault steps are drawn from a stream derived from (but
    /// independent of) `seed`, so `with_faults(seed, .., 0)` samples
    /// exactly the same schedule as `new(seed, ..)`.
    pub fn with_faults(seed: u64, n: usize, d: usize, horizon: u64, faults: usize) -> Self {
        let mut pct = Self::new(seed, n, d, horizon);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut fault_points: Vec<u64> = (0..faults)
            .map(|_| rng.gen_range(0..horizon.max(1)))
            .collect();
        fault_points.sort_unstable();
        pct.fault_points = fault_points;
        pct
    }

    /// Current priority of each pid (higher runs first). Exposed for
    /// distribution-sanity tests.
    pub fn priorities(&self) -> &[u64] {
        &self.priorities
    }

    fn top(&self, runnable: &[usize]) -> usize {
        runnable
            .iter()
            .copied()
            .max_by_key(|&p| self.priorities[p])
            .expect("world guarantees a non-empty runnable set at decisions")
    }
}

impl Strategy for PctStrategy {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        while self.next_cp < self.change_points.len()
            && view.step >= self.change_points[self.next_cp]
        {
            let leader = self.top(view.runnable);
            // The i-th change point demotes to d - i: below every initial
            // priority, and below earlier demotions of other processes.
            self.priorities[leader] = (self.change_points.len() - self.next_cp) as u64 - 1;
            self.next_cp += 1;
        }
        while self.next_fp < self.fault_points.len() && view.step >= self.fault_points[self.next_fp]
        {
            self.next_fp += 1;
            if view.runnable.len() > 1 {
                return Decision::Crash(self.top(view.runnable));
            }
            // Sole survivor: spend the point without firing and grant.
        }
        Decision::Grant(self.top(view.runnable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(step: u64, runnable: &'a [usize], pending: &'a [PendingOp]) -> ScheduleView<'a> {
        ScheduleView {
            step,
            runnable,
            pending,
            flushable: &[],
        }
    }

    fn dummy_pending(n: usize) -> Vec<PendingOp> {
        vec![
            PendingOp {
                kind: OpKind::Read,
                reg: 0,
                tag: 0
            };
            n
        ]
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let runnable = [0, 1, 2];
        let pending = dummy_pending(3);
        let picks: Vec<_> = (0..6)
            .map(|s| match rr.decide(&view(s, &runnable, &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_missing_processes() {
        let mut rr = RoundRobin::new();
        let pending = dummy_pending(2);
        // Process 1 not runnable.
        let picks: Vec<_> = (0..4)
            .map(|s| match rr.decide(&view(s, &[0, 2], &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_is_reproducible() {
        let seq = |seed| {
            let mut s = RandomStrategy::new(seed);
            let runnable = [0, 1, 2, 3];
            let pending = dummy_pending(4);
            (0..20)
                .map(|i| match s.decide(&view(i, &runnable, &pending)) {
                    Decision::Grant(p) => p,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }

    #[test]
    fn solo_bursts_stays_then_moves() {
        let mut s = SoloBursts::new(3);
        let runnable = [0, 1];
        let pending = dummy_pending(2);
        let picks: Vec<_> = (0..6)
            .map(|i| match s.decide(&view(i, &runnable, &pending)) {
                Decision::Grant(p) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn crash_plan_fires_once() {
        let mut s = CrashPlan::new(RoundRobin::new(), vec![(2, 1)]);
        let runnable = [0, 1];
        let pending = dummy_pending(2);
        assert_eq!(s.decide(&view(0, &runnable, &pending)), Decision::Grant(0));
        assert_eq!(s.decide(&view(1, &runnable, &pending)), Decision::Grant(1));
        assert_eq!(s.decide(&view(2, &runnable, &pending)), Decision::Crash(1));
        // After the crash the inner strategy resumes.
        let runnable = [0];
        let pending = dummy_pending(1);
        assert_eq!(s.decide(&view(2, &runnable, &pending)), Decision::Grant(0));
    }

    /// A crash whose target is hidden from the view at the due step (as a
    /// stall wrapper does) must not be dropped: it fires as soon as the pid
    /// is visible again.
    #[test]
    fn crash_plan_retries_hidden_targets() {
        let mut s = CrashPlan::new(RoundRobin::new(), vec![(2, 1)]);
        let pending = dummy_pending(1);
        // At the due step pid 1 is not visible; the plan entry must survive.
        assert_eq!(s.decide(&view(2, &[0], &pending)), Decision::Grant(0));
        assert_eq!(s.decide(&view(3, &[0], &pending)), Decision::Grant(0));
        assert_eq!(s.undelivered(), &[(2, 1)]);
        // Pid 1 reappears two steps later: the crash lands.
        let pending = dummy_pending(2);
        assert_eq!(s.decide(&view(4, &[0, 1], &pending)), Decision::Crash(1));
        assert!(s.undelivered().is_empty());
    }

    /// Every planned crash is delivered, even when several become due at the
    /// same step or their targets are hidden in different windows.
    #[test]
    fn crash_plan_delivers_every_planned_crash() {
        let mut s = CrashPlan::new(RoundRobin::new(), vec![(1, 2), (1, 0)]);
        let pending = dummy_pending(3);
        assert_eq!(s.decide(&view(0, &[0, 1, 2], &pending)), Decision::Grant(0));
        // Both entries due at step 1; pid 0 is hidden, pid 2 visible.
        let pending2 = dummy_pending(2);
        assert_eq!(s.decide(&view(1, &[1, 2], &pending2)), Decision::Crash(2));
        assert_eq!(
            s.decide(&view(1, &[1], &dummy_pending(1))),
            Decision::Grant(1)
        );
        // Pid 0 becomes visible again: its crash still fires.
        assert_eq!(s.decide(&view(2, &[0, 1], &pending2)), Decision::Crash(0));
        assert!(s.undelivered().is_empty());
    }

    /// A target that genuinely finished before its due step stays pending
    /// harmlessly and never produces an illegal crash decision.
    #[test]
    fn crash_plan_never_crashes_finished_processes() {
        let mut s = CrashPlan::new(RoundRobin::new(), vec![(0, 5)]);
        let pending = dummy_pending(2);
        for step in 0..4 {
            match s.decide(&view(step, &[0, 1], &pending)) {
                Decision::Grant(_) => {}
                d => panic!("unexpected {d:?}"),
            }
        }
        assert_eq!(s.undelivered(), &[(0, 5)]);
    }

    #[test]
    fn pct_with_zero_change_points_is_strict_priority_order() {
        let mut s = PctStrategy::new(7, 3, 0, 100);
        let order: Vec<usize> = {
            let mut pids: Vec<usize> = (0..3).collect();
            pids.sort_by_key(|&p| std::cmp::Reverse(s.priorities()[p]));
            pids
        };
        let runnable = [0, 1, 2];
        let pending = dummy_pending(3);
        for step in 0..9 {
            match s.decide(&view(step, &runnable, &pending)) {
                Decision::Grant(p) => assert_eq!(p, order[0], "d=0 must run the leader solo"),
                d => panic!("unexpected {d:?}"),
            }
        }
        // Leader gone: the next priority takes over.
        let rest = [order[1], order[2]];
        let mut rest_sorted = rest;
        rest_sorted.sort_unstable();
        let pending = dummy_pending(2);
        match s.decide(&view(9, &rest_sorted, &pending)) {
            Decision::Grant(p) => assert_eq!(p, order[1]),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn pct_change_point_demotes_the_leader() {
        // One change point at step 0: the initial leader is demoted before
        // the first grant, so some other process runs first.
        let n = 4;
        let mut s = PctStrategy::new(11, n, 1, 1);
        let initial_leader = (0..n).max_by_key(|&p| s.priorities()[p]).unwrap();
        let runnable: Vec<usize> = (0..n).collect();
        let pending = dummy_pending(n);
        match s.decide(&view(0, &runnable, &pending)) {
            Decision::Grant(p) => {
                assert_ne!(p, initial_leader, "change point must demote the leader");
                assert!(s.priorities()[initial_leader] == 0);
            }
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn pct_fault_point_crashes_the_leader_but_never_the_sole_survivor() {
        // Horizon 1 pins the sampled fault point to step 0 regardless of
        // the seed: the leader is crashed, then the remaining processes
        // are scheduled by priority.
        let n = 3;
        let mut s = PctStrategy::with_faults(13, n, 0, 1, 1);
        let leader = (0..n).max_by_key(|&p| s.priorities()[p]).unwrap();
        let runnable: Vec<usize> = (0..n).collect();
        let pending = dummy_pending(n);
        match s.decide(&view(0, &runnable, &pending)) {
            Decision::Crash(p) => assert_eq!(p, leader, "fault point must hit the leader"),
            d => panic!("unexpected {d:?}"),
        }
        // Re-consulted at the same step, it grants (the point is spent).
        let rest: Vec<usize> = (0..n).filter(|&p| p != leader).collect();
        let pending = dummy_pending(rest.len());
        assert!(matches!(
            s.decide(&view(0, &rest, &pending)),
            Decision::Grant(_)
        ));

        // A due fault point with one survivor is skipped, not fired.
        let mut lone = PctStrategy::with_faults(13, 2, 0, 1, 1);
        let pending = dummy_pending(1);
        match lone.decide(&view(0, &[1], &pending)) {
            Decision::Grant(p) => assert_eq!(p, 1, "sole survivor must keep running"),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn pct_with_zero_faults_matches_new() {
        let mut a = PctStrategy::new(42, 3, 2, 50);
        let mut b = PctStrategy::with_faults(42, 3, 2, 50, 0);
        let runnable = [0, 1, 2];
        let pending = dummy_pending(3);
        for step in 0..50 {
            let da = a.decide(&view(step, &runnable, &pending));
            let db = b.decide(&view(step, &runnable, &pending));
            assert_eq!(da, db, "step {step}: fault-free sampling must agree");
        }
    }

    #[test]
    fn pending_of_finds_by_pid() {
        let runnable = [3, 5];
        let pending = [
            PendingOp {
                kind: OpKind::Write,
                reg: 9,
                tag: 1,
            },
            PendingOp {
                kind: OpKind::Read,
                reg: 2,
                tag: 0,
            },
        ];
        let v = view(0, &runnable, &pending);
        assert_eq!(v.pending_of(5).unwrap().reg, 2);
        assert!(v.pending_of(4).is_none());
    }
}
