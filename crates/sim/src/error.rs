//! Error types for simulated executions.

use std::error::Error;
use std::fmt;

/// Why a process's execution was cut short.
///
/// A process body has the signature `FnOnce(&mut Ctx) -> Result<T, Halted>`;
/// every shared-memory access returns `Result<_, Halted>` so that a process
/// stopped by the scheduler (crashed, global shutdown, or step-limit
/// exhaustion) unwinds promptly via `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Halted {
    /// The scheduler crashed this process: it will never be granted another
    /// shared-memory step. Models a crash fault in the wait-free model —
    /// the *other* processes must still terminate.
    Crashed,
    /// The run is over (all other processes finished or the run was aborted);
    /// pending accesses are refused so threads can be joined.
    Shutdown,
    /// The global step budget was exhausted. Used to bound potentially
    /// non-terminating adversarial schedules (e.g. a scan livelocked by a
    /// hostile writer) and convert them into a reported outcome.
    StepLimit,
    /// The process body panicked — either a bug in the body or a panic
    /// injected by a fault plan (see `bprc_sim::faults`). The panic is
    /// contained: the world keeps scheduling the survivors, and the panic
    /// message is surfaced in [`RunReport::panics`](crate::world::RunReport).
    /// Models a byzantine-free crash with a diagnosable cause.
    Panicked,
    /// A snapshot scan exhausted its retry budget under concurrent-writer
    /// pressure and degraded gracefully instead of livelocking (see
    /// `ScannableMemory::set_scan_retry_budget` in `bprc-snapshot`).
    ScanStarved,
}

impl fmt::Display for Halted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Halted::Crashed => write!(f, "process was crashed by the scheduler"),
            Halted::Shutdown => write!(f, "world shut down"),
            Halted::StepLimit => write!(f, "global step limit exhausted"),
            Halted::Panicked => write!(f, "process body panicked (contained)"),
            Halted::ScanStarved => write!(f, "scan exhausted its retry budget"),
        }
    }
}

impl Error for Halted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for h in [
            Halted::Crashed,
            Halted::Shutdown,
            Halted::StepLimit,
            Halted::Panicked,
            Halted::ScanStarved,
        ] {
            let s = h.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(Halted::Crashed);
    }

    #[test]
    fn eq_and_hash_derivations() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Halted::Crashed);
        s.insert(Halted::Crashed);
        assert_eq!(s.len(), 1);
        assert_ne!(Halted::Crashed, Halted::Shutdown);
    }
}
