//! Linearizable shared registers.
//!
//! [`Reg<T>`] models the atomic read/write register of the paper's model.
//! The paper's algorithms deliberately use **no read-modify-write
//! operations** — consensus is impossible deterministically in this model
//! precisely because registers only support reads and writes, and the
//! bounded-polynomial stack lives within that interface. The one RMW this
//! crate *does* expose, [`Reg::swap`], exists for the protocol arena's
//! successor algorithms (swap has consensus number 2); it is a separate
//! [`OpKind`] in the history, so checkers can tell at a glance whether a
//! protocol stayed inside the paper's model.
//!
//! # The register planes
//!
//! A register handle hides one of four backings:
//!
//! * **Locked** — the original `parking_lot::RwLock<T>` cell. Works for any
//!   `T: Clone`, and is what [`World::reg`](crate::world::World::reg)
//!   allocates.
//! * **Seq** — a *seqlock*: the payload packed into a small array of
//!   `AtomicU64` words guarded by an even/odd version word. Readers are
//!   lock-free (optimistic read, retry if the version moved); writers
//!   acquire the odd state with a CAS, so even the paper's two-writer arrow
//!   registers are safe on this plane. Allocated by
//!   [`World::fast_reg`](crate::world::World::fast_reg) for payloads that
//!   implement [`FastPod`]; payloads wider than [`MAX_FAST_WORDS`] words
//!   fall back to the locked backing transparently.
//! * **Bit** — a single boolean packed into one bit of a shared cache-line
//!   chunk of atomic words ([`BIT_CHUNK_BITS`] = 512 booleans per line).
//!   Raise/lower are `fetch_or`/`fetch_and` RMWs, so two writers on the
//!   same bit — the paper's arrow registers — stay atomic, and neighbours
//!   packed into the same word can never tear each other. Allocated by
//!   [`World::bit_reg`](crate::world::World::bit_reg) under
//!   `RegisterPlane::Packed`.
//! * **Lane** — a seqlock lane inside a shared [`World::value_slab`]: all
//!   `n` version words live in one contiguous array (and all payload words
//!   in another), so a collect pass that only has to *check* versions walks
//!   ⌈n/8⌉ cache lines instead of `n` scattered cells. Same even/odd
//!   protocol as **Seq**, per lane.
//!
//! Both planes sit *behind* the world's access gate, so scheduling,
//! telemetry counters and history recording are identical regardless of
//! backing — the fast plane only changes how the granted access touches
//! memory, never when it happens or how it is counted. In lockstep mode the
//! gate serializes every access, so the seqlock never even retries there;
//! it earns its keep in [`Mode::Free`](crate::world::Mode::Free), where the
//! OS interleaves accesses for real.
//!
//! The seqlock is written in safe Rust (this crate is
//! `#![forbid(unsafe_code)]`): the payload words are themselves atomics, so
//! a torn *word* is impossible by construction, and the version check
//! rejects any read window that overlapped a write — a reader can never
//! observe a mix of two writes' words.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::Halted;
use crate::history::{OpKind, RegId};
use crate::metrics::Counter;
use crate::weakmem::BufferedStore;
use crate::world::{Ctx, WorldInner};

/// Widest payload (in 64-bit words) the seqlock plane accepts; wider
/// [`FastPod`] types fall back to the locked backing.
pub const MAX_FAST_WORDS: usize = 4;

/// Widest *runtime-sized* payload (in 64-bit words) the dynamic seqlock
/// path ([`FastDyn`]) accepts; wider values fall back to the locked
/// backing. Larger than [`MAX_FAST_WORDS`] because the dynamic path exists
/// precisely for payloads whose width depends on run parameters (the
/// wait-free snapshot's embedded views grow with the process count `n`).
pub const MAX_FAST_WORDS_DYN: usize = 64;

/// Version token returned by [`Reg::read_changed`] when the backing has no
/// seqlock version word (locked and bit cells). It is odd, so it can never
/// equal a published (even) seqlock version: passing it back as the cached
/// token always re-runs the closure, which is exactly the fail-safe
/// behaviour those backings need.
pub const NO_VERSION: u64 = u64::MAX;

/// Atomic words per bit chunk — one 64-byte cache line.
const BIT_CHUNK_WORDS: usize = 8;

/// Single-bit registers packed per [`BitChunk`]: 8 words × 64 bits.
pub const BIT_CHUNK_BITS: usize = BIT_CHUNK_WORDS * 64;

/// Plain-old-data payloads that can ride the seqlock fast plane.
///
/// A `FastPod` value packs into a fixed number of 64-bit words and unpacks
/// losslessly: `unpack(pack(v)) == v`. Implementations must be pure
/// (no interior mutability, no heap indirection) — the seqlock stores the
/// words themselves, so anything behind a pointer would defeat atomicity.
pub trait FastPod: Clone + Send + Sync + 'static {
    /// How many 64-bit words [`FastPod::pack`] fills.
    const WORDS: usize;

    /// Serializes `self` into exactly [`FastPod::WORDS`] words.
    fn pack(&self, out: &mut [u64]);

    /// Reconstructs a value from words produced by [`FastPod::pack`].
    fn unpack(words: &[u64]) -> Self;
}

/// Payloads whose packed width is only known at *runtime* but fixed per
/// register — the dynamic cousin of [`FastPod`].
///
/// The seqlock cell sizes its word array from the **initial** value, so
/// every value subsequently written to the same register must report the
/// same [`dyn_words`](FastDyn::dyn_words). (The wait-free snapshot's slots
/// satisfy this by construction: the embedded view always has exactly `n`
/// entries.) Widths above [`MAX_FAST_WORDS_DYN`] fall back to the locked
/// backing transparently.
///
/// There is deliberately **no** blanket `FastPod → FastDyn` impl: it would
/// forbid downstream crates from implementing `FastDyn` for their own slot
/// types (coherence disallows the overlap), and those runtime-width slots
/// are the whole point of this trait.
pub trait FastDyn: Clone + Send + Sync + 'static {
    /// How many 64-bit words [`pack_dyn`](FastDyn::pack_dyn) fills for
    /// *this* value. Must be identical for every value written to a given
    /// register.
    fn dyn_words(&self) -> usize;

    /// Serializes `self` into exactly [`dyn_words`](FastDyn::dyn_words)
    /// words.
    fn pack_dyn(&self, out: &mut [u64]);

    /// Reconstructs a value from words produced by
    /// [`pack_dyn`](FastDyn::pack_dyn).
    fn unpack_dyn(words: &[u64]) -> Self;
}

/// A fixed-length `Vec<u64>` is the simplest runtime-width payload: one
/// header word for the length, then the elements. (The length header keeps
/// `unpack_dyn` total even though the register's width already implies it.)
impl FastDyn for Vec<u64> {
    fn dyn_words(&self) -> usize {
        1 + self.len()
    }
    fn pack_dyn(&self, out: &mut [u64]) {
        out[0] = self.len() as u64;
        out[1..=self.len()].copy_from_slice(self);
    }
    fn unpack_dyn(words: &[u64]) -> Self {
        let len = words[0] as usize;
        words[1..=len].to_vec()
    }
}

macro_rules! fast_pod_int {
    ($($t:ty),*) => {$(
        impl FastPod for $t {
            const WORDS: usize = 1;
            fn pack(&self, out: &mut [u64]) {
                out[0] = *self as u64;
            }
            fn unpack(words: &[u64]) -> Self {
                words[0] as $t
            }
        }
    )*};
}

fast_pod_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl FastPod for bool {
    const WORDS: usize = 1;
    fn pack(&self, out: &mut [u64]) {
        out[0] = u64::from(*self);
    }
    fn unpack(words: &[u64]) -> Self {
        words[0] != 0
    }
}

impl FastPod for (u64, u64) {
    const WORDS: usize = 2;
    fn pack(&self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
    }
    fn unpack(words: &[u64]) -> Self {
        (words[0], words[1])
    }
}

impl FastPod for (u64, u64, u64) {
    const WORDS: usize = 3;
    fn pack(&self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
        out[2] = self.2;
    }
    fn unpack(words: &[u64]) -> Self {
        (words[0], words[1], words[2])
    }
}

/// The seqlock cell: an even/odd version word guarding a small array of
/// atomic payload words. See the module docs for the memory-ordering
/// argument; the pack/unpack function pointers are captured at construction
/// so the cell stays usable through the type-erased [`Backing`] enum.
struct SeqCell<T> {
    version: AtomicU64,
    words: Box<[AtomicU64]>,
    pack: fn(&T, &mut [u64]),
    unpack: fn(&[u64]) -> T,
}

impl<T: FastPod> SeqCell<T> {
    fn new(init: &T) -> Self {
        debug_assert!(T::WORDS >= 1 && T::WORDS <= MAX_FAST_WORDS);
        let mut buf = [0u64; MAX_FAST_WORDS];
        init.pack(&mut buf[..T::WORDS]);
        SeqCell {
            version: AtomicU64::new(0),
            words: buf[..T::WORDS].iter().map(|&w| AtomicU64::new(w)).collect(),
            pack: T::pack,
            unpack: T::unpack,
        }
    }
}

impl<T: FastDyn> SeqCell<T> {
    /// Builds a cell whose word count comes from the initial value's
    /// [`FastDyn::dyn_words`] instead of a compile-time constant. The
    /// load/store machinery is shared with the const-width path — the cell
    /// already type-erases packing into function pointers.
    fn new_dyn(init: &T) -> Self {
        let w = init.dyn_words();
        debug_assert!(w >= 1 && w <= MAX_FAST_WORDS_DYN);
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        init.pack_dyn(&mut buf[..w]);
        SeqCell {
            version: AtomicU64::new(0),
            words: buf[..w].iter().map(|&b| AtomicU64::new(b)).collect(),
            pack: T::pack_dyn,
            unpack: T::unpack_dyn,
        }
    }
}

/// The seqlock read protocol over any (version word, payload words) pair —
/// shared by [`SeqCell`] (own words) and [`LaneCell`] (a lane of a shared
/// slab). Optimistic lock-free read: snapshot the version (must be even),
/// read the payload words, fence, re-check the version. A concurrent writer
/// moves the version, so a stable even version brackets a quiescent window
/// and the words form one consistent write. Returns the validated version.
#[inline]
fn seq_load_words(version: &AtomicU64, words: &[AtomicU64], buf: &mut [u64]) -> u64 {
    loop {
        let v1 = version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            std::hint::spin_loop();
            continue;
        }
        for (b, w) in buf.iter_mut().zip(words.iter()) {
            *b = w.load(Ordering::Relaxed);
        }
        // Orders the word loads before the version re-read; pairs with
        // the writer's Release store of the even version.
        fence(Ordering::Acquire);
        if version.load(Ordering::Relaxed) == v1 {
            return v1;
        }
        std::hint::spin_loop();
    }
}

/// The seqlock write protocol (shared like [`seq_load_words`]): CAS the
/// version even→odd (serializes concurrent writers — the paper's arrow
/// registers have two), store the words, publish the next even version with
/// Release.
#[inline]
fn seq_store_words(version: &AtomicU64, words: &[AtomicU64], buf: &[u64]) {
    let mut v = version.load(Ordering::Relaxed);
    loop {
        if v & 1 == 1 {
            std::hint::spin_loop();
            v = version.load(Ordering::Relaxed);
            continue;
        }
        match version.compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => break,
            Err(cur) => v = cur,
        }
    }
    for (b, w) in buf.iter().zip(words.iter()) {
        w.store(*b, Ordering::Relaxed);
    }
    version.store(v + 2, Ordering::Release);
}

/// Version-token read: if the current version still equals `cached`, no
/// write has been published since the read that produced `cached` (the
/// writer's even→odd CAS is a globally visible RMW, so "version unchanged"
/// proves no write even *began* publishing) — the payload words are
/// provably identical to what that read returned and are not touched at
/// all. Otherwise this is [`seq_load_words`]. Returns `(version, loaded)`;
/// `loaded == false` means `buf` was left alone.
#[inline]
fn seq_load_words_changed(
    version: &AtomicU64,
    words: &[AtomicU64],
    cached: u64,
    buf: &mut [u64],
) -> (u64, bool) {
    let v = version.load(Ordering::Acquire);
    if v == cached && v & 1 == 0 {
        return (v, false);
    }
    (seq_load_words(version, words, buf), true)
}

impl<T> SeqCell<T> {
    fn load(&self) -> T {
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        seq_load_words(&self.version, &self.words, &mut buf[..self.words.len()]);
        (self.unpack)(&buf[..self.words.len()])
    }

    fn store(&self, value: &T) {
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        (self.pack)(value, &mut buf[..self.words.len()]);
        seq_store_words(&self.version, &self.words, &buf[..self.words.len()]);
    }

    /// See [`seq_load_words_changed`]: skips unpacking (and `f`) entirely
    /// when the version token proves the register unchanged.
    fn load_if_changed(&self, cached: u64, f: impl FnOnce(&T)) -> u64 {
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        let (v, loaded) = seq_load_words_changed(
            &self.version,
            &self.words,
            cached,
            &mut buf[..self.words.len()],
        );
        if loaded {
            f(&(self.unpack)(&buf[..self.words.len()]));
        }
        v
    }
}

/// One cache line of packed single-bit registers: 8 atomic words = 512
/// booleans. All mutation is RMW (`fetch_or` to set, `fetch_and` to clear),
/// so bits sharing a word never tear each other and even a *two-writer* bit
/// (the paper's arrow registers: writer raises, scanner lowers) stays
/// atomic without a version word.
#[repr(align(64))]
pub(crate) struct BitChunk {
    words: [AtomicU64; BIT_CHUNK_WORDS],
}

impl BitChunk {
    pub(crate) fn new() -> Self {
        BitChunk {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One bit of a shared [`BitChunk`]. The `to_bit`/`from_bit` function
/// pointers exist only so the type-erased [`Backing`] enum stays generic;
/// in practice `T = bool` and both are the identity.
struct BitCell<T> {
    chunk: Arc<BitChunk>,
    word: usize,
    mask: u64,
    to_bit: fn(&T) -> bool,
    from_bit: fn(bool) -> T,
}

impl BitCell<bool> {
    fn new(chunk: Arc<BitChunk>, bit: usize, init: bool) -> Self {
        let cell = BitCell {
            chunk,
            word: bit / 64,
            mask: 1u64 << (bit % 64),
            to_bit: |b: &bool| *b,
            from_bit: |b| b,
        };
        cell.set(init);
        cell
    }
}

impl<T> BitCell<T> {
    #[inline]
    fn get(&self) -> bool {
        self.chunk.words[self.word].load(Ordering::SeqCst) & self.mask != 0
    }

    #[inline]
    fn set(&self, bit: bool) {
        let w = &self.chunk.words[self.word];
        if bit {
            w.fetch_or(self.mask, Ordering::SeqCst);
        } else {
            w.fetch_and(!self.mask, Ordering::SeqCst);
        }
    }
}

/// A contiguous slab of seqlock lanes: every lane's version word lives in
/// one shared array (`versions`), every lane's payload words in another
/// (`words`, stride `lane_words`). A collect pass whose buffered copies are
/// still valid therefore touches only ⌈lanes/8⌉ version cache lines — the
/// payload arrays stay cold. Allocated by
/// [`World::value_slab`](crate::world::World::value_slab).
pub(crate) struct LaneSlab {
    lane_words: usize,
    versions: Box<[AtomicU64]>,
    words: Box<[AtomicU64]>,
}

impl LaneSlab {
    pub(crate) fn new(lanes: usize, lane_words: usize) -> Self {
        assert!(lanes >= 1 && lane_words >= 1);
        LaneSlab {
            lane_words,
            versions: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            words: (0..lanes * lane_words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn lane_words(&self) -> usize {
        self.lane_words
    }

    pub(crate) fn lanes(&self) -> usize {
        self.versions.len()
    }

    #[inline]
    fn parts(&self, lane: usize) -> (&AtomicU64, &[AtomicU64]) {
        let lo = lane * self.lane_words;
        (&self.versions[lane], &self.words[lo..lo + self.lane_words])
    }
}

/// One lane of a [`LaneSlab`] — the seqlock protocol of [`SeqCell`], with
/// the version and payload words held in the slab's shared arrays.
struct LaneCell<T> {
    slab: Arc<LaneSlab>,
    lane: usize,
    pack: fn(&T, &mut [u64]),
    unpack: fn(&[u64]) -> T,
}

impl<T> LaneCell<T> {
    fn load(&self) -> T {
        let (version, words) = self.slab.parts(self.lane);
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        seq_load_words(version, words, &mut buf[..words.len()]);
        (self.unpack)(&buf[..words.len()])
    }

    fn store(&self, value: &T) {
        let (version, words) = self.slab.parts(self.lane);
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        (self.pack)(value, &mut buf[..words.len()]);
        seq_store_words(version, words, &buf[..words.len()]);
    }

    fn load_if_changed(&self, cached: u64, f: impl FnOnce(&T)) -> u64 {
        let (version, words) = self.slab.parts(self.lane);
        let mut buf = [0u64; MAX_FAST_WORDS_DYN];
        let (v, loaded) = seq_load_words_changed(version, words, cached, &mut buf[..words.len()]);
        if loaded {
            f(&(self.unpack)(&buf[..words.len()]));
        }
        v
    }
}

/// A register's storage: the locked plane (any `T`), the seqlock fast
/// plane (small [`FastPod`] payloads), one bit of a shared [`BitChunk`], or
/// a lane of a shared [`LaneSlab`].
enum Backing<T> {
    Lock(RwLock<T>),
    Seq(SeqCell<T>),
    Bit(BitCell<T>),
    Lane(LaneCell<T>),
}

impl<T: Clone> Backing<T> {
    #[inline]
    fn load(&self) -> T {
        match self {
            Backing::Lock(l) => l.read().clone(),
            Backing::Seq(s) => s.load(),
            Backing::Bit(b) => (b.from_bit)(b.get()),
            Backing::Lane(c) => c.load(),
        }
    }

    #[inline]
    fn store(&self, value: T) {
        match self {
            Backing::Lock(l) => *l.write() = value,
            Backing::Seq(s) => s.store(&value),
            Backing::Bit(b) => b.set((b.to_bit)(&value)),
            Backing::Lane(c) => c.store(&value),
        }
    }

    /// Applies `f` to the current value without handing out an owned clone
    /// (the locked plane maps under the read guard; the fast plane
    /// materializes the small payload on the stack).
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        match self {
            Backing::Lock(l) => f(&l.read()),
            Backing::Seq(s) => f(&s.load()),
            Backing::Bit(b) => f(&(b.from_bit)(b.get())),
            Backing::Lane(c) => f(&c.load()),
        }
    }

    /// Version-token read (see [`Reg::read_changed`]): seqlock backings skip
    /// `f` — without even touching the payload words — when the version
    /// still equals `cached`; the locked and bit backings have no version
    /// word, always run `f`, and return [`NO_VERSION`].
    #[inline]
    fn with_changed(&self, cached: u64, f: impl FnOnce(&T)) -> u64 {
        match self {
            Backing::Lock(l) => {
                f(&l.read());
                NO_VERSION
            }
            Backing::Seq(s) => s.load_if_changed(cached, f),
            Backing::Bit(b) => {
                f(&(b.from_bit)(b.get()));
                NO_VERSION
            }
            Backing::Lane(c) => c.load_if_changed(cached, f),
        }
    }

    /// Exchanges the stored value, returning the previous one. The locked
    /// plane is a true atomic exchange (`mem::replace` under the write
    /// lock) in both world modes; the lock-free planes load-then-store,
    /// which is atomic only under the lockstep gate — see [`Reg::swap`].
    #[inline]
    fn swap_value(&self, value: T) -> T {
        match self {
            Backing::Lock(l) => std::mem::replace(&mut *l.write(), value),
            other => {
                let prev = other.load();
                other.store(value);
                prev
            }
        }
    }
}

/// A linearizable multi-reader register allocated from a
/// [`World`](crate::world::World).
///
/// Every [`read`](Reg::read) and [`write`](Reg::write) counts as one
/// scheduled step; in lockstep mode the scheduler decides when it happens.
/// Clone the handle to share the register between process bodies.
///
/// Single-writer (SWMR) discipline is a *protocol* property, not enforced
/// here — the [`bprc-registers`](../../registers) crate layers it on top.
pub struct Reg<T> {
    id: RegId,
    cell: Arc<Backing<T>>,
    world: Arc<WorldInner>,
}

impl<T> Clone for Reg<T> {
    fn clone(&self) -> Self {
        Reg {
            id: self.id,
            cell: Arc::clone(&self.cell),
            world: Arc::clone(&self.world),
        }
    }
}

impl<T> std::fmt::Debug for Reg<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reg").field("id", &self.id).finish()
    }
}

impl<T: Clone + Send + Sync + 'static> Reg<T> {
    pub(crate) fn new(id: RegId, init: T, world: Arc<WorldInner>) -> Self {
        Reg {
            id,
            cell: Arc::new(Backing::Lock(RwLock::new(init))),
            world,
        }
    }

    /// This register's id within its world.
    pub fn id(&self) -> RegId {
        self.id
    }

    /// Whether this register rides a lock-free backing (seqlock cell,
    /// packed bit, or slab lane) rather than the `RwLock` cell.
    pub fn is_fast(&self) -> bool {
        !matches!(*self.cell, Backing::Lock(_))
    }

    /// Whether this register is one bit of a packed [`BitChunk`].
    pub fn is_bit(&self) -> bool {
        matches!(*self.cell, Backing::Bit(_))
    }

    /// Whether this register is a lane of a shared [`World::value_slab`]
    /// (contiguous version words).
    ///
    /// [`World::value_slab`]: crate::world::World::value_slab
    pub fn is_lane(&self) -> bool {
        matches!(*self.cell, Backing::Lane(_))
    }

    /// Atomically reads the register (one scheduled step).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read(&self, ctx: &mut Ctx) -> Result<T, Halted> {
        let cell = &*self.cell;
        if ctx.inner().weak_buffering() {
            let (pid, id) = (ctx.pid(), self.id);
            // Store-to-load forwarding: this process's newest buffered
            // write to the register wins over shared memory.
            return ctx.inner().access_central(pid, OpKind::Read, id, 0, |c| {
                match c.forwarded::<T>(pid, id) {
                    Some(v) => v.clone(),
                    None => cell.load(),
                }
            });
        }
        ctx.inner()
            .access(ctx.pid(), OpKind::Read, self.id, 0, || cell.load())
    }

    /// Atomically reads the register and maps the value under the access —
    /// one scheduled step, identical history/telemetry footprint to
    /// [`read`](Reg::read), but `f` borrows the stored value, so callers
    /// that only need to *inspect* (or conditionally clone) skip the
    /// unconditional clone. This is what makes the snapshot layer's
    /// buffer-reuse collects allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read_with<R>(&self, ctx: &mut Ctx, f: impl FnOnce(&T) -> R) -> Result<R, Halted> {
        let cell = &*self.cell;
        if ctx.inner().weak_buffering() {
            let (pid, id) = (ctx.pid(), self.id);
            return ctx.inner().access_central(pid, OpKind::Read, id, 0, |c| {
                match c.forwarded::<T>(pid, id) {
                    Some(v) => f(v),
                    None => cell.with(f),
                }
            });
        }
        ctx.inner()
            .access(ctx.pid(), OpKind::Read, self.id, 0, || cell.with(f))
    }

    /// Atomically reads the register with a *version token*: one scheduled
    /// step, identical history/telemetry footprint to
    /// [`read_with`](Reg::read_with), but when the caller already holds a
    /// copy validated at token `cached` and the register provably has not
    /// been written since, `f` is **skipped entirely** — the payload words
    /// are not even loaded. Returns the new token to cache.
    ///
    /// Soundness: on the seqlock backings the token is the cell's even/odd
    /// version word. A writer's first publishing act is an atomic even→odd
    /// CAS on that word, so observing `version == cached` (Acquire) proves
    /// no write began publishing after the read that produced `cached` —
    /// the skip linearizes as an ordinary optimistic read that won the
    /// race. Backings without a version word (locked, bit) always run `f`
    /// and return [`NO_VERSION`], which never matches.
    ///
    /// The snapshot layer's batched collect validation is built on this:
    /// with the value registers on a [`World::value_slab`], a steady
    /// collect walks only the slab's contiguous version array.
    ///
    /// [`World::value_slab`]: crate::world::World::value_slab
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn read_changed(
        &self,
        ctx: &mut Ctx,
        cached: u64,
        f: impl FnOnce(&T),
    ) -> Result<u64, Halted> {
        let cell = &*self.cell;
        if ctx.inner().weak_buffering() {
            let (pid, id) = (ctx.pid(), self.id);
            // A forwarded value has no backing version yet (the write is
            // still buffered), so the caller can never cache it: run `f`
            // unconditionally and hand back NO_VERSION.
            return ctx.inner().access_central(pid, OpKind::Read, id, 0, |c| {
                match c.forwarded::<T>(pid, id) {
                    Some(v) => {
                        f(v);
                        NO_VERSION
                    }
                    None => cell.with_changed(cached, f),
                }
            });
        }
        ctx.inner().access(ctx.pid(), OpKind::Read, self.id, 0, || {
            cell.with_changed(cached, f)
        })
    }

    /// Atomically writes the register (one scheduled step).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn write(&self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        self.write_tagged(ctx, value, 0)
    }

    /// Like [`write`](Reg::write) but records `tag` in the history.
    ///
    /// Tags are invisible to the algorithms; offline checkers use them as
    /// hidden sequence numbers.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn write_tagged(&self, ctx: &mut Ctx, value: T, tag: u64) -> Result<(), Halted> {
        let cell = &*self.cell;
        if ctx.inner().weak_buffering() {
            let (pid, id) = (ctx.pid(), self.id);
            // The write parks in the process's store buffer: globally
            // invisible until a Flush decision, a fence, or the end-of-run
            // drain lands it. `value` is kept twice — a forwarding copy
            // for this process's own later reads, and the move captured by
            // the deferred `apply` closure that hits the backing.
            let fwd = value.clone();
            let backing = Arc::clone(&self.cell);
            let res = ctx
                .inner()
                .access_central(pid, OpKind::Write, id, tag, move |c| {
                    c.buffer_store(
                        pid,
                        BufferedStore {
                            reg: id,
                            tag,
                            value: Box::new(fwd),
                            apply: Box::new(move || backing.store(value)),
                        },
                    );
                });
            if res.is_ok() {
                ctx.count(Counter::StoresBuffered, 1);
            }
            return res;
        }
        ctx.inner()
            .access(ctx.pid(), OpKind::Write, self.id, tag, || cell.store(value))
    }

    /// Atomically exchanges the register's value, returning the previous
    /// one — a single scheduled step ([`OpKind::Swap`]), counted as **both**
    /// a read and a write in telemetry (the parity checkers apply the same
    /// rule), and recorded as a `RegWrite` flight event.
    ///
    /// Swap is a read-modify-write primitive (consensus number 2) and so
    /// lives *outside* the paper's read/write model; it exists for the
    /// protocol arena's swap-based consensus entrants (Ovens,
    /// arXiv 2305.06507). Under the weak-memory and regular-register
    /// planes a granted swap first lands the caller's own buffered stores
    /// (an RMW drains the store buffer on every modeled architecture),
    /// then exchanges against shared memory — never against the buffer.
    ///
    /// On the lock-free backings (seqlock/bit/lane) the exchange is
    /// load-then-store, atomic only because the lockstep gate serializes
    /// the whole access; for [`Mode::Free`](crate::world::Mode::Free) runs
    /// allocate swap registers with [`World::reg`] (locked backing), where
    /// the exchange is a true `mem::replace` under the write lock.
    ///
    /// [`World::reg`]: crate::world::World::reg
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    #[inline]
    pub fn swap(&self, ctx: &mut Ctx, value: T) -> Result<T, Halted> {
        let cell = Arc::clone(&self.cell);
        if ctx.inner().weak_buffering() {
            let (pid, id) = (ctx.pid(), self.id);
            let inner = Arc::clone(ctx.inner());
            return ctx
                .inner()
                .access_central(pid, OpKind::Swap, id, 0, move |c| {
                    inner.drain_own_buffer(c, pid);
                    cell.swap_value(value)
                });
        }
        ctx.inner()
            .access(ctx.pid(), OpKind::Swap, self.id, 0, move || {
                cell.swap_value(value)
            })
    }

    /// Reads the register **without scheduling** — for adversary strategies,
    /// offline checkers and test setup only. Never call this from a process
    /// body: it would be a side channel outside the model.
    pub fn peek(&self) -> T {
        self.cell.load()
    }

    /// Writes the register **without scheduling** — for test setup only.
    pub fn poke(&self, value: T) {
        self.cell.store(value)
    }
}

impl<T: FastPod + Clone + Send + Sync + 'static> Reg<T> {
    /// Allocates on the fast plane when the payload fits (and the world's
    /// register plane allows it); falls back to the locked backing
    /// otherwise. Called via [`World::fast_reg`](crate::world::World::fast_reg).
    pub(crate) fn new_fast(id: RegId, init: T, world: Arc<WorldInner>, allow_fast: bool) -> Self {
        let cell = if allow_fast && T::WORDS <= MAX_FAST_WORDS {
            Backing::Seq(SeqCell::new(&init))
        } else {
            Backing::Lock(RwLock::new(init))
        };
        Reg {
            id,
            cell: Arc::new(cell),
            world,
        }
    }
}

impl Reg<bool> {
    /// Allocates one bit of `chunk` (bit index `bit`, chunk-relative).
    /// Called via [`World::bit_reg`](crate::world::World::bit_reg) under
    /// `RegisterPlane::Packed`.
    pub(crate) fn new_bit(
        id: RegId,
        init: bool,
        world: Arc<WorldInner>,
        chunk: Arc<BitChunk>,
        bit: usize,
    ) -> Self {
        debug_assert!(bit < BIT_CHUNK_BITS);
        Reg {
            id,
            cell: Arc::new(Backing::Bit(BitCell::new(chunk, bit, init))),
            world,
        }
    }
}

impl<T: FastPod + Clone + Send + Sync + 'static> Reg<T> {
    /// Allocates lane `lane` of `slab` (whose stride must equal
    /// `T::WORDS`). Called via
    /// [`World::lane_reg`](crate::world::World::lane_reg).
    pub(crate) fn new_lane(
        id: RegId,
        init: T,
        world: Arc<WorldInner>,
        slab: Arc<LaneSlab>,
        lane: usize,
    ) -> Self {
        debug_assert_eq!(slab.lane_words(), T::WORDS);
        let cell = LaneCell {
            slab,
            lane,
            pack: T::pack,
            unpack: T::unpack,
        };
        cell.store(&init);
        Reg {
            id,
            cell: Arc::new(Backing::Lane(cell)),
            world,
        }
    }
}

impl<T: FastDyn> Reg<T> {
    /// The runtime-width counterpart of [`new_lane`](Reg::new_lane): the
    /// slab stride must equal the initial value's [`FastDyn::dyn_words`].
    /// Called via [`World::lane_reg_dyn`](crate::world::World::lane_reg_dyn).
    pub(crate) fn new_lane_dyn(
        id: RegId,
        init: T,
        world: Arc<WorldInner>,
        slab: Arc<LaneSlab>,
        lane: usize,
    ) -> Self {
        debug_assert_eq!(slab.lane_words(), init.dyn_words());
        let cell = LaneCell {
            slab,
            lane,
            pack: T::pack_dyn,
            unpack: T::unpack_dyn,
        };
        cell.store(&init);
        Reg {
            id,
            cell: Arc::new(Backing::Lane(cell)),
            world,
        }
    }

    /// The runtime-width counterpart of [`new_fast`](Reg::new_fast): takes
    /// the seqlock backing when the initial value's [`FastDyn::dyn_words`]
    /// fits [`MAX_FAST_WORDS_DYN`] (and the world's plane allows it), the
    /// locked backing otherwise. Called via
    /// [`World::fast_reg_dyn`](crate::world::World::fast_reg_dyn).
    pub(crate) fn new_fast_dyn(
        id: RegId,
        init: T,
        world: Arc<WorldInner>,
        allow_fast: bool,
    ) -> Self {
        let w = init.dyn_words();
        let cell = if allow_fast && w >= 1 && w <= MAX_FAST_WORDS_DYN {
            Backing::Seq(SeqCell::new_dyn(&init))
        } else {
            Backing::Lock(RwLock::new(init))
        };
        Reg {
            id,
            cell: Arc::new(cell),
            world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use crate::world::{Mode, ProcBody, RegisterPlane, World};

    #[test]
    fn peek_poke_do_not_consume_steps() {
        let mut w = World::builder(1).build();
        let r = w.reg("r", 10u32);
        assert_eq!(r.peek(), 10);
        r.poke(20);
        assert_eq!(r.peek(), 20);
        let r2 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![Box::new(move |ctx| r2.read(ctx))];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0], Some(20));
        assert_eq!(rep.steps, 1);
    }

    #[test]
    fn clone_shares_the_cell() {
        let w = World::builder(1).mode(Mode::Free).build();
        let r = w.reg("r", 0u8);
        let r2 = r.clone();
        r.poke(7);
        assert_eq!(r2.peek(), 7);
        assert_eq!(r.id(), r2.id());
    }

    #[test]
    fn registers_get_distinct_ids() {
        let w = World::builder(1).build();
        let a = w.reg("a", 0u8);
        let b = w.reg("b", 0u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn fast_pod_round_trips() {
        fn rt<T: FastPod + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = [0u64; MAX_FAST_WORDS];
            v.pack(&mut buf[..T::WORDS]);
            assert_eq!(T::unpack(&buf[..T::WORDS]), v);
        }
        rt(true);
        rt(false);
        rt(0xABu8);
        rt(0xDEAD_BEEFu32);
        rt(u64::MAX);
        rt(usize::MAX);
        rt(-7i64);
        rt((3u64, u64::MAX));
        rt((1u64, 2, 3));
    }

    #[test]
    fn fast_reg_reads_and_writes_like_locked() {
        let mut w = World::builder(1).build();
        let r = w.fast_reg("fast", 5u64);
        assert!(r.is_fast());
        assert_eq!(r.peek(), 5);
        r.poke(9);
        let r2 = r.clone();
        let bodies: Vec<ProcBody<u64>> = vec![Box::new(move |ctx| {
            let seen = r2.read(ctx)?;
            r2.write(ctx, seen + 1)?;
            r2.read(ctx)
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0], Some(10));
        assert_eq!(rep.steps, 3, "fast-plane ops are scheduled steps too");
    }

    #[test]
    fn locked_plane_knob_forces_lock_backing() {
        let w = World::builder(1)
            .register_plane(RegisterPlane::Locked)
            .build();
        let r = w.fast_reg("would-be-fast", 0u64);
        assert!(!r.is_fast());
        r.poke(3);
        assert_eq!(r.peek(), 3);
    }

    #[test]
    fn read_with_maps_without_cloning() {
        let mut w = World::builder(1).build();
        let r = w.reg("r", vec![1u32, 2, 3]);
        let r2 = r.clone();
        let bodies: Vec<ProcBody<usize>> =
            vec![Box::new(move |ctx| r2.read_with(ctx, |v| v.len()))];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0], Some(3));
        assert_eq!(rep.steps, 1, "read_with is one scheduled read");
    }

    #[test]
    fn raw_seqlock_torture_no_torn_pairs() {
        // Hammer the seqlock *outside* the scheduler (peek/poke bypass the
        // gate): two writer threads and two reader threads on one cell; the
        // pair invariant (b == 3a) must hold on every read, or the seqlock
        // leaked a torn value. Multi-writer exercises the CAS-odd path.
        let w = World::builder(1).mode(Mode::Free).build();
        let r = w.fast_reg("pair", (0u64, 0u64));
        assert!(r.is_fast());
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..20_000u64 {
                    let a = k * 2 + t;
                    r.poke((a, a.wrapping_mul(3)));
                }
            }));
        }
        for _ in 0..2 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let (a, b) = r.peek();
                    assert_eq!(b, a.wrapping_mul(3), "torn seqlock read: ({a}, {b})");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
