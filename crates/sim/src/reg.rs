//! Linearizable shared registers.
//!
//! [`Reg<T>`] models the atomic read/write register of the paper's model.
//! There are deliberately **no read-modify-write operations** — consensus is
//! impossible deterministically in this model precisely because registers
//! only support reads and writes, and the algorithms here must live within
//! that interface.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::Halted;
use crate::history::{OpKind, RegId};
use crate::world::{Ctx, WorldInner};

/// A linearizable multi-reader register allocated from a
/// [`World`](crate::world::World).
///
/// Every [`read`](Reg::read) and [`write`](Reg::write) counts as one
/// scheduled step; in lockstep mode the scheduler decides when it happens.
/// Clone the handle to share the register between process bodies.
///
/// Single-writer (SWMR) discipline is a *protocol* property, not enforced
/// here — the [`bprc-registers`](../../registers) crate layers it on top.
pub struct Reg<T> {
    id: RegId,
    cell: Arc<RwLock<T>>,
    world: Arc<WorldInner>,
}

impl<T> Clone for Reg<T> {
    fn clone(&self) -> Self {
        Reg {
            id: self.id,
            cell: Arc::clone(&self.cell),
            world: Arc::clone(&self.world),
        }
    }
}

impl<T> std::fmt::Debug for Reg<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reg").field("id", &self.id).finish()
    }
}

impl<T: Clone + Send + Sync + 'static> Reg<T> {
    pub(crate) fn new(id: RegId, init: T, world: Arc<WorldInner>) -> Self {
        Reg {
            id,
            cell: Arc::new(RwLock::new(init)),
            world,
        }
    }

    /// This register's id within its world.
    pub fn id(&self) -> RegId {
        self.id
    }

    /// Atomically reads the register (one scheduled step).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn read(&self, ctx: &mut Ctx) -> Result<T, Halted> {
        let cell = &self.cell;
        ctx.inner()
            .clone()
            .access(ctx.pid(), OpKind::Read, self.id, 0, || cell.read().clone())
    }

    /// Atomically writes the register (one scheduled step).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn write(&self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        self.write_tagged(ctx, value, 0)
    }

    /// Like [`write`](Reg::write) but records `tag` in the history.
    ///
    /// Tags are invisible to the algorithms; offline checkers use them as
    /// hidden sequence numbers.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn write_tagged(&self, ctx: &mut Ctx, value: T, tag: u64) -> Result<(), Halted> {
        let cell = &self.cell;
        ctx.inner()
            .clone()
            .access(ctx.pid(), OpKind::Write, self.id, tag, || {
                *cell.write() = value;
            })
    }

    /// Reads the register **without scheduling** — for adversary strategies,
    /// offline checkers and test setup only. Never call this from a process
    /// body: it would be a side channel outside the model.
    pub fn peek(&self) -> T {
        self.cell.read().clone()
    }

    /// Writes the register **without scheduling** — for test setup only.
    pub fn poke(&self, value: T) {
        *self.cell.write() = value;
    }
}

#[cfg(test)]
mod tests {
    use crate::sched::RoundRobin;
    use crate::world::{Mode, ProcBody, World};

    #[test]
    fn peek_poke_do_not_consume_steps() {
        let mut w = World::builder(1).build();
        let r = w.reg("r", 10u32);
        assert_eq!(r.peek(), 10);
        r.poke(20);
        assert_eq!(r.peek(), 20);
        let r2 = r.clone();
        let bodies: Vec<ProcBody<u32>> = vec![Box::new(move |ctx| r2.read(ctx))];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0], Some(20));
        assert_eq!(rep.steps, 1);
    }

    #[test]
    fn clone_shares_the_cell() {
        let w = World::builder(1).mode(Mode::Free).build();
        let r = w.reg("r", 0u8);
        let r2 = r.clone();
        r.poke(7);
        assert_eq!(r2.peek(), 7);
        assert_eq!(r.id(), r2.id());
    }

    #[test]
    fn registers_get_distinct_ids() {
        let w = World::builder(1).build();
        let a = w.reg("a", 0u8);
        let b = w.reg("b", 0u8);
        assert_ne!(a.id(), b.id());
    }
}
