//! Turn-based (scan/write granularity) protocol driver.
//!
//! Every protocol in this workspace is a loop of
//!
//! > *scan the shared memory atomically → compute locally → write my own
//! > register*
//!
//! (the paper's §5 pseudocode is literally `repeat forever: scan; ...;
//! write`). This module schedules protocols at exactly that granularity:
//! a [`TurnProcess`] is the per-process state machine, and a [`TurnDriver`]
//! applies *scan* and *write* events one at a time under the control of a
//! [`TurnAdversary`].
//!
//! The scan here is an **atomic snapshot**: exactly the abstraction the
//! paper's §2 scannable memory implements (verified separately in
//! `bprc-snapshot` at the register level). Running against the abstraction
//! keeps Monte-Carlo experiments exact with respect to the model while being
//! orders of magnitude faster than thread-based execution — the adversary at
//! this granularity is the standard strong adversary of \[AH88\]: it sees all
//! process states and pending writes, and may delay a pending write
//! arbitrarily long after the scan that produced it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::Halted;
use crate::history::FaultKind;
use crate::metrics::{Counter, Gauge, MetricsRegistry, ProcMetrics, Telemetry};

/// What a process does after observing a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurnStep<M, O> {
    /// Publish a new value of the process's register.
    Write(M),
    /// Decide and halt.
    Decide(O),
}

/// A cheap, allocation-free telemetry probe a [`TurnProcess`] exposes to
/// its driver (see [`TurnProcess::probe`]).
///
/// The threaded adapter in `bprc-core` polls it once per protocol
/// iteration to bridge round changes into phase spans; the turn driver
/// reads it once at the end of a run to set the round gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TurnProbe {
    /// The round the process has reached, if the protocol has rounds.
    pub round: Option<u64>,
    /// Local coin flips performed so far.
    pub coin_flips: u64,
}

/// A per-process protocol state machine driven by [`TurnDriver`].
pub trait TurnProcess {
    /// The register value this process publishes.
    type Msg: Clone;
    /// The decision value.
    type Out;

    /// The first value the process writes before its first scan.
    fn initial_msg(&mut self) -> Self::Msg;

    /// One protocol turn: observe an atomic snapshot of all registers
    /// (indexed by pid) and return the next action.
    fn on_scan(&mut self, view: &[Self::Msg]) -> TurnStep<Self::Msg, Self::Out>;

    /// A cheap snapshot of protocol-level progress (round, coin flips).
    /// Polled per iteration by drivers that bridge progress into phase
    /// spans — keep it a few field reads. Default: empty.
    fn probe(&self) -> TurnProbe {
        TurnProbe::default()
    }

    /// Publishes cumulative protocol-level counters (round advances,
    /// demotions, strip wraps, …) into the metrics shard `m`. Called
    /// once when a run finishes — not per step — so implementations may
    /// simply dump their accumulated stats. Default: nothing.
    fn publish_telemetry(&self, m: &ProcMetrics<'_>) {
        let _ = m;
    }
}

/// Where a process currently is in its scan/write cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Phase<M> {
    /// About to write this value (the adversary may inspect it).
    Write(M),
    /// About to scan.
    Scan,
    /// Decided (or returned) — takes no further steps.
    Done,
}

impl<M> Phase<M> {
    /// The pending write value, if the process is about to write.
    pub fn pending_write(&self) -> Option<&M> {
        match self {
            Phase::Write(m) => Some(m),
            _ => None,
        }
    }
}

/// What the adversary sees before choosing the next event.
#[derive(Debug)]
pub struct TurnView<'a, M> {
    /// Events applied so far.
    pub events: u64,
    /// Processes eligible for a step (not done, not crashed), ascending.
    pub active: &'a [usize],
    /// Current contents of every process's register.
    pub shared: &'a [M],
    /// Each process's phase (indexed by pid).
    pub phases: &'a [Phase<M>],
    /// Which processes have been crashed (indexed by pid).
    pub crashed: &'a [bool],
}

/// An adversary decision at turn granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnDecision {
    /// Let this active process perform its next event (scan or write).
    Step(usize),
    /// Crash this process.
    Crash(usize),
    /// Inject a panic into this (active) process: it halts as
    /// [`Halted::Panicked`] and the injection is recorded in
    /// [`TurnReport::fault_events`]. At turn granularity there is no thread
    /// to unwind, so the effect is a crash with a diagnosable cause.
    Panic(usize),
}

/// The strong adversary at scan/write granularity.
pub trait TurnAdversary<M> {
    /// Chooses the next event.
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision;

    /// Fault events the adversary wants appended to the run's fault log
    /// (see [`TurnReport::fault_events`]). The driver calls this after every
    /// decision; fault-injection wrappers (the `faults` module) use it to
    /// make stall windows and starvation visible. Default: nothing.
    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        Vec::new()
    }
}

impl<M, A: TurnAdversary<M> + ?Sized> TurnAdversary<M> for Box<A> {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        (**self).choose(view)
    }

    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        (**self).drain_fault_notes()
    }
}

/// Fair rotation among active processes.
#[derive(Debug, Clone, Default)]
pub struct TurnRoundRobin {
    next: usize,
}

impl TurnRoundRobin {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M> TurnAdversary<M> for TurnRoundRobin {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        let pick = view
            .active
            .iter()
            .copied()
            .find(|&p| p >= self.next)
            .unwrap_or(view.active[0]);
        self.next = pick + 1;
        TurnDecision::Step(pick)
    }
}

/// Uniformly random active process (seeded).
#[derive(Debug, Clone)]
pub struct TurnRandom {
    rng: SmallRng,
}

impl TurnRandom {
    /// Creates the strategy from a seed.
    pub fn new(seed: u64) -> Self {
        TurnRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<M> TurnAdversary<M> for TurnRandom {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        let i = self.rng.gen_range(0..view.active.len());
        TurnDecision::Step(view.active[i])
    }
}

/// The barrier-synchronous ("simultaneous reveal") adversary: it first
/// steps every active process through its *scan* — all of them observing
/// the same memory — and only then releases the resulting writes, one
/// after the other.
///
/// This is the classic worst case for protocols that resolve disagreement
/// with *independent local coins*: every round all processes flip blindly
/// against the same view, so progress needs spontaneous unanimity
/// (probability `2^{−(n−1)}` per round). Shared-coin protocols are immune:
/// the simultaneous reveal cannot bias the walk by more than one step per
/// process.
#[derive(Debug, Clone, Default)]
pub struct TurnBsp {
    releasing: bool,
    rr: usize,
}

impl TurnBsp {
    /// Creates the adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M> TurnAdversary<M> for TurnBsp {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        // Two strict phases: *gather* steps only scanners (memory is
        // frozen, everyone observes the same state) until none remain;
        // *release* steps only writers until none remain — a process that
        // finishes its write re-enters the scan phase but is NOT scheduled
        // again until the release completes, so no one observes a partial
        // reveal.
        let scanners: Vec<usize> = view
            .active
            .iter()
            .copied()
            .filter(|&p| matches!(view.phases[p], Phase::Scan))
            .collect();
        let writers: Vec<usize> = view
            .active
            .iter()
            .copied()
            .filter(|&p| matches!(view.phases[p], Phase::Write(_)))
            .collect();
        if self.releasing && writers.is_empty() {
            self.releasing = false;
        } else if !self.releasing && scanners.is_empty() {
            self.releasing = true;
        }
        let pool = if self.releasing { &writers } else { &scanners };
        self.rr = (self.rr + 1) % pool.len();
        TurnDecision::Step(pool[self.rr])
    }
}

/// Closure adapter for bespoke adversaries.
pub struct TurnFn<F>(pub F);

impl<F> std::fmt::Debug for TurnFn<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TurnFn").finish_non_exhaustive()
    }
}

impl<M, F: FnMut(&TurnView<'_, M>) -> TurnDecision> TurnAdversary<M> for TurnFn<F> {
    fn choose(&mut self, view: &TurnView<'_, M>) -> TurnDecision {
        (self.0)(view)
    }
}

/// Outcome of [`TurnDriver::run`].
#[derive(Debug, Clone)]
pub struct TurnReport<O> {
    /// Per-process decisions (`None` for crashed / event-limited processes).
    pub outputs: Vec<Option<O>>,
    /// Per-process halt reason: `Crashed` for adversary crashes, `Panicked`
    /// for contained `on_scan` panics and injected panics, `StepLimit` for
    /// processes still undecided when the event budget ran out.
    pub halted: Vec<Option<Halted>>,
    /// Fault-injection events, as `(event_index, pid, kind)` in the order
    /// they occurred — injected panics plus whatever the adversary reported
    /// via [`TurnAdversary::drain_fault_notes`].
    pub fault_events: Vec<(u64, usize, FaultKind)>,
    /// Total events applied (scans + writes).
    pub events: u64,
    /// Events per process.
    pub per_proc_events: Vec<u64>,
    /// True if every non-crashed process decided within the event budget.
    pub completed: bool,
    /// The metrics-plane snapshot: scans/updates counted by the driver,
    /// plus whatever each process published via
    /// [`TurnProcess::publish_telemetry`] (round gauge included).
    pub telemetry: Telemetry,
}

impl<O: PartialEq> TurnReport<O> {
    /// Distinct decision values (agreement check helper).
    pub fn distinct_outputs(&self) -> Vec<&O> {
        let mut out: Vec<&O> = Vec::new();
        for v in self.outputs.iter().flatten() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

/// Drives `n` [`TurnProcess`]es under a [`TurnAdversary`].
#[derive(Debug)]
pub struct TurnDriver<P: TurnProcess> {
    procs: Vec<P>,
    shared: Vec<P::Msg>,
    phases: Vec<Phase<P::Msg>>,
    crashed: Vec<bool>,
    halted: Vec<Option<Halted>>,
    fault_log: Vec<(u64, usize, FaultKind)>,
    outputs: Vec<Option<P::Out>>,
    events: u64,
    per_proc_events: Vec<u64>,
    metrics: MetricsRegistry,
}

impl<P: TurnProcess> TurnDriver<P> {
    /// Creates a driver. Each process starts about to perform its initial
    /// write; the shared array initially holds those initial values (the
    /// model's registers have well-defined initial contents).
    ///
    /// For a stronger adversary — one that can schedule other processes
    /// *before* a process's initial value becomes visible — use
    /// [`TurnDriver::with_initial_shared`] with explicit register initial
    /// contents.
    pub fn new(mut procs: Vec<P>) -> Self {
        let initials: Vec<P::Msg> = procs.iter_mut().map(|p| p.initial_msg()).collect();
        Self::with_initial_shared(procs, initials)
    }

    /// Creates a driver whose registers initially hold `shared` (one value
    /// per process) rather than the processes' first writes; each process's
    /// `initial_msg` becomes an ordinary pending write the adversary may
    /// delay arbitrarily.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty or `shared.len() != procs.len()`.
    pub fn with_initial_shared(mut procs: Vec<P>, shared: Vec<P::Msg>) -> Self {
        assert!(!procs.is_empty(), "need at least one process");
        assert_eq!(shared.len(), procs.len(), "one initial value per process");
        let n = procs.len();
        let phases = procs
            .iter_mut()
            .map(|p| Phase::Write(p.initial_msg()))
            .collect();
        TurnDriver {
            procs,
            shared,
            phases,
            crashed: vec![false; n],
            halted: vec![None; n],
            fault_log: Vec::new(),
            outputs: (0..n).map(|_| None).collect(),
            events: 0,
            per_proc_events: vec![0; n],
            metrics: MetricsRegistry::new(n),
        }
    }

    /// The driver's live metrics registry (observers use the global shard
    /// for run-wide gauges such as memory high-water marks).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Events applied so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Current register contents (test/diagnostic access).
    pub fn shared(&self) -> &[P::Msg] {
        &self.shared
    }

    /// Current phases (test/diagnostic access).
    pub fn phases(&self) -> &[Phase<P::Msg>] {
        &self.phases
    }

    /// Decisions made so far.
    pub fn outputs(&self) -> &[Option<P::Out>] {
        &self.outputs
    }

    /// Active pids (not done, not crashed), ascending.
    pub fn active(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&p| !self.crashed[p] && !matches!(self.phases[p], Phase::Done))
            .collect()
    }

    /// Applies one event for `pid` (must be active).
    ///
    /// A panic inside the process's `on_scan` is contained: the process
    /// halts as [`Halted::Panicked`] and everyone else keeps going.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is done or crashed.
    pub fn step(&mut self, pid: usize) {
        assert!(!self.crashed[pid], "process {pid} is crashed");
        self.events += 1;
        self.per_proc_events[pid] += 1;
        match std::mem::replace(&mut self.phases[pid], Phase::Scan) {
            Phase::Write(m) => {
                self.shared[pid] = m;
                self.metrics.proc(pid).incr(Counter::Updates, 1);
                // phase already set to Scan
            }
            Phase::Scan => {
                self.metrics.proc(pid).incr(Counter::Scans, 1);
                let proc = &mut self.procs[pid];
                let shared = &self.shared;
                let step =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| proc.on_scan(shared)));
                match step {
                    Ok(TurnStep::Write(m)) => self.phases[pid] = Phase::Write(m),
                    Ok(TurnStep::Decide(o)) => {
                        self.outputs[pid] = Some(o);
                        self.phases[pid] = Phase::Done;
                        self.metrics.proc(pid).incr(Counter::Decisions, 1);
                    }
                    Err(_) => {
                        self.crashed[pid] = true;
                        self.halted[pid] = Some(Halted::Panicked);
                    }
                }
            }
            Phase::Done => panic!("process {pid} already decided"),
        }
    }

    /// Crashes `pid`: it takes no further events.
    pub fn crash(&mut self, pid: usize) {
        assert!(!self.crashed[pid], "process {pid} crashed twice");
        self.crashed[pid] = true;
        if !matches!(self.phases[pid], Phase::Done) {
            self.halted[pid] = Some(Halted::Crashed);
        }
    }

    /// Runs under `adversary` until every active process decided or
    /// `max_events` is reached, and returns the report.
    pub fn run(
        self,
        adversary: &mut dyn TurnAdversary<P::Msg>,
        max_events: u64,
    ) -> TurnReport<P::Out> {
        self.run_observed(adversary, max_events, |_| {})
    }

    /// Like [`run`](TurnDriver::run), calling `observer` with the driver's
    /// state after every applied event (for memory meters, invariant
    /// checkers, trace collectors).
    pub fn run_observed(
        mut self,
        adversary: &mut dyn TurnAdversary<P::Msg>,
        max_events: u64,
        mut observer: impl FnMut(&Self),
    ) -> TurnReport<P::Out> {
        loop {
            let active = self.active();
            if active.is_empty() {
                return self.finish(true);
            }
            if self.events >= max_events {
                return self.finish(false);
            }
            let decision = {
                let view = TurnView {
                    events: self.events,
                    active: &active,
                    shared: &self.shared,
                    phases: &self.phases,
                    crashed: &self.crashed,
                };
                adversary.choose(&view)
            };
            match decision {
                TurnDecision::Step(pid) => {
                    assert!(active.contains(&pid), "adversary stepped inactive {pid}");
                    self.step(pid);
                }
                TurnDecision::Crash(pid) => self.crash(pid),
                TurnDecision::Panic(pid) => {
                    assert!(active.contains(&pid), "adversary panicked inactive {pid}");
                    self.crashed[pid] = true;
                    self.halted[pid] = Some(Halted::Panicked);
                    self.fault_log
                        .push((self.events, pid, FaultKind::PanicInjected));
                }
            }
            for (pid, kind) in adversary.drain_fault_notes() {
                self.fault_log.push((self.events, pid, kind));
            }
            observer(&self);
        }
    }

    fn finish(mut self, completed: bool) -> TurnReport<P::Out> {
        if !completed {
            // Processes still undecided when the budget ran out.
            for p in 0..self.procs.len() {
                if !self.crashed[p]
                    && !matches!(self.phases[p], Phase::Done)
                    && self.halted[p].is_none()
                {
                    self.halted[p] = Some(Halted::StepLimit);
                }
            }
        }
        // Drain protocol-level telemetry once, at the end: cumulative
        // stats cost nothing per step this way.
        for (pid, proc) in self.procs.iter().enumerate() {
            let m = self.metrics.proc(pid);
            proc.publish_telemetry(&m);
            if let Some(r) = proc.probe().round {
                m.gauge_set(Gauge::Round, r);
            }
        }
        TurnReport {
            outputs: self.outputs,
            halted: self.halted,
            fault_events: self.fault_log,
            events: self.events,
            per_proc_events: self.per_proc_events,
            completed,
            telemetry: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: write your input, scan, decide the maximum seen.
    struct MaxFinder {
        input: u32,
    }

    impl TurnProcess for MaxFinder {
        type Msg = u32;
        type Out = u32;

        fn initial_msg(&mut self) -> u32 {
            self.input
        }

        fn on_scan(&mut self, view: &[u32]) -> TurnStep<u32, u32> {
            TurnStep::Decide(*view.iter().max().expect("nonempty"))
        }
    }

    #[test]
    fn max_finder_round_robin() {
        let procs: Vec<MaxFinder> = (0..4).map(|i| MaxFinder { input: i * 10 }).collect();
        let driver = TurnDriver::new(procs);
        let report = driver.run(&mut TurnRoundRobin::new(), 1_000);
        assert!(report.completed);
        // Everyone wrote before anyone scanned under round robin, so all saw 30.
        assert!(report.outputs.iter().all(|o| *o == Some(30)));
        // 4 writes + 4 scans.
        assert_eq!(report.events, 8);
    }

    #[test]
    fn adversary_can_hide_a_write() {
        // Let process 1 scan before process 3 writes: initial register
        // contents are the initial msgs, so the view still contains 30 —
        // initial values are published at driver construction. Instead hide
        // by crashing: crash process 3 before its write... its initial value
        // is already in shared. This documents the "registers have initial
        // contents" convention.
        let procs: Vec<MaxFinder> = (0..4).map(|i| MaxFinder { input: i * 10 }).collect();
        let mut driver = TurnDriver::new(procs);
        driver.crash(3);
        let active = driver.active();
        assert_eq!(active, vec![0, 1, 2]);
        // Drive manually: step 0 twice (write then scan+decide).
        driver.step(0);
        driver.step(0);
        assert_eq!(driver.outputs()[0], Some(30));
    }

    #[test]
    fn random_adversary_is_reproducible() {
        let run = |seed| {
            let procs: Vec<MaxFinder> = (0..3).map(|i| MaxFinder { input: i }).collect();
            TurnDriver::new(procs)
                .run(&mut TurnRandom::new(seed), 1_000)
                .outputs
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn event_limit_reports_incomplete() {
        /// Never decides.
        struct Spinner;
        impl TurnProcess for Spinner {
            type Msg = ();
            type Out = ();
            fn initial_msg(&mut self) {}
            fn on_scan(&mut self, _: &[()]) -> TurnStep<(), ()> {
                TurnStep::Write(())
            }
        }
        let report = TurnDriver::new(vec![Spinner, Spinner]).run(&mut TurnRoundRobin::new(), 10);
        assert!(!report.completed);
        assert_eq!(report.events, 10);
    }

    #[test]
    fn turn_fn_adversary_gets_pending_writes() {
        struct Toggler {
            left: u32,
        }
        impl TurnProcess for Toggler {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                if self.left == 0 {
                    TurnStep::Decide(99)
                } else {
                    self.left -= 1;
                    TurnStep::Write(self.left)
                }
            }
        }
        let mut saw_pending = false;
        let report = TurnDriver::new(vec![Toggler { left: 3 }]).run(
            &mut TurnFn(|view: &TurnView<'_, u32>| {
                if view.phases[0].pending_write().is_some() {
                    saw_pending = true;
                }
                TurnDecision::Step(view.active[0])
            }),
            1_000,
        );
        assert!(report.completed);
        assert!(saw_pending);
        assert_eq!(report.outputs[0], Some(99));
    }

    #[test]
    fn distinct_outputs_helper() {
        let r = TurnReport {
            outputs: vec![Some(1u32), Some(2), Some(1), None],
            halted: vec![None, None, None, Some(Halted::Crashed)],
            fault_events: vec![],
            events: 0,
            per_proc_events: vec![],
            completed: true,
            telemetry: Telemetry::empty(4),
        };
        assert_eq!(r.distinct_outputs(), vec![&1, &2]);
    }

    #[test]
    fn driver_counts_scans_updates_decisions() {
        let procs: Vec<MaxFinder> = (0..4).map(|i| MaxFinder { input: i * 10 }).collect();
        let report = TurnDriver::new(procs).run(&mut TurnRoundRobin::new(), 1_000);
        let t = &report.telemetry;
        // 4 initial writes, then one scan each ending in a decision.
        assert_eq!(t.total(Counter::Updates), 4);
        assert_eq!(t.total(Counter::Scans), 4);
        assert_eq!(t.total(Counter::Decisions), 4);
        assert_eq!(
            t.total(Counter::Scans) + t.total(Counter::Updates),
            report.events
        );
        for pid in 0..4 {
            assert_eq!(t.counter(pid, Counter::Scans), 1);
        }
    }

    #[test]
    fn publish_telemetry_and_probe_feed_the_report() {
        struct Prober {
            left: u32,
        }
        impl TurnProcess for Prober {
            type Msg = ();
            type Out = u32;
            fn initial_msg(&mut self) {}
            fn on_scan(&mut self, _: &[()]) -> TurnStep<(), u32> {
                if self.left == 0 {
                    TurnStep::Decide(7)
                } else {
                    self.left -= 1;
                    TurnStep::Write(())
                }
            }
            fn probe(&self) -> TurnProbe {
                TurnProbe {
                    round: Some(3 - self.left as u64),
                    coin_flips: 0,
                }
            }
            fn publish_telemetry(&self, m: &ProcMetrics<'_>) {
                m.incr(Counter::RoundAdvances, (3 - self.left) as u64);
            }
        }
        let report = TurnDriver::new(vec![Prober { left: 3 }]).run(&mut TurnRoundRobin::new(), 100);
        assert_eq!(report.telemetry.counter(0, Counter::RoundAdvances), 3);
        assert_eq!(report.telemetry.gauge(0, Gauge::Round), Some(3));
    }

    #[test]
    fn on_scan_panic_is_contained() {
        /// Panics on its first scan.
        struct Bomb;
        impl TurnProcess for Bomb {
            type Msg = u32;
            type Out = u32;
            fn initial_msg(&mut self) -> u32 {
                0
            }
            fn on_scan(&mut self, _: &[u32]) -> TurnStep<u32, u32> {
                panic!("chaos: deliberate on_scan panic");
            }
        }
        // Silence the expected panic's default stderr report.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = TurnDriver::new(vec![Bomb, Bomb]).run(&mut TurnRoundRobin::new(), 100);
        std::panic::set_hook(prev);
        assert!(report.completed, "both bombs halt, so the run completes");
        assert_eq!(report.halted, vec![Some(Halted::Panicked); 2]);
        assert_eq!(report.outputs, vec![None, None]);
    }

    #[test]
    fn injected_panic_decision_halts_target() {
        let procs: Vec<MaxFinder> = (0..3).map(|i| MaxFinder { input: i * 10 }).collect();
        let report = TurnDriver::new(procs).run(
            &mut TurnFn(|view: &TurnView<'_, u32>| {
                if view.events == 0 && view.active.contains(&2) {
                    TurnDecision::Panic(2)
                } else {
                    TurnDecision::Step(view.active[0])
                }
            }),
            1_000,
        );
        assert!(report.completed);
        assert_eq!(report.halted[2], Some(Halted::Panicked));
        assert_eq!(report.outputs[2], None);
        // Survivors still decide (they saw pid 2's initial value).
        assert_eq!(report.outputs[0], Some(20));
        assert_eq!(report.fault_events, vec![(0, 2, FaultKind::PanicInjected)]);
    }

    #[test]
    fn event_limit_reports_step_limit_halt() {
        struct Spinner;
        impl TurnProcess for Spinner {
            type Msg = ();
            type Out = ();
            fn initial_msg(&mut self) {}
            fn on_scan(&mut self, _: &[()]) -> TurnStep<(), ()> {
                TurnStep::Write(())
            }
        }
        let report = TurnDriver::new(vec![Spinner]).run(&mut TurnRoundRobin::new(), 5);
        assert_eq!(report.halted, vec![Some(Halted::StepLimit)]);
    }
}
