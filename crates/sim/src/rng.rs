//! Deterministic randomness helpers shared across the workspace.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a child seed from a master seed and a stream index.
///
/// Used to hand unrelated deterministic RNG streams to each process /
/// trial without correlation (SplitMix64-style mixing).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a [`SmallRng`] for the given master seed and stream index.
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(0, 1), derive_seed(1, 1));
    }

    #[test]
    fn stream_rngs_produce_distinct_sequences() {
        let mut a = stream_rng(7, 0);
        let mut b = stream_rng(7, 1);
        let sa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(sa, sb);
    }
}
