//! Weak-memory fidelity: TSO/PSO store buffers as scheduler decisions.
//!
//! The paper's P1–P3 properties are proved over *atomic* registers; the
//! packed/seqlock register plane is safe Rust over relaxed-to-acquire
//! atomics, and nothing in the SC scheduler exercises the orderings those
//! atomics permit on real hardware. This module closes that gap without a
//! new model checker: each process gets a FIFO **store buffer**, a granted
//! write becomes a buffer insertion, and the moment a buffered write
//! reaches shared memory is a first-class scheduler decision
//! ([`Decision::Flush`](crate::sched::Decision)) — explorable by the
//! existing DFS/sleep-set and PCT machinery exactly like a grant, and
//! serialized into `bprc-trace-v1` counterexamples as `{"flush": ...}`
//! steps that shrink and replay unchanged.
//!
//! # The two buffer disciplines
//!
//! * [`WeakMode::Tso`] — one FIFO per process, flushed strictly in order:
//!   only the buffer *head* is flushable. Write→write order is preserved;
//!   a later read may complete while an earlier write is still buffered
//!   (the `SB` litmus outcome).
//! * [`WeakMode::Pso`] — per-register FIFO order only: the oldest buffered
//!   write *of each register* is flushable, so writes to distinct
//!   registers drain in any order (additionally the `MP` litmus outcome).
//!
//! Both disciplines do **store-to-load forwarding**: a process reading a
//! register it has buffered writes for sees its own newest buffered value,
//! never the stale memory cell. Reads are never delayed or reordered, so
//! load-buffering (`LB`) and `IRIW` outcomes stay unreachable — store
//! buffers are multi-copy atomic. The litmus corpus
//! ([`crate::litmus`]) pins all of this as executable physics.
//!
//! # Soundness of exploring flushes as decisions
//!
//! A flush decision has no private effect on the flushing process (its own
//! reads already forward from the buffer) and exactly one shared effect:
//! the store lands in memory. That is the same shape as a granted write
//! under SC, so the branch-per-decision DFS enumerates reorderings the way
//! it enumerates interleavings. Flush edges are treated as **dependent
//! with everything** (they never enter a sleep set and reset the child's
//! sleep set), which is conservative — it costs pruning, never coverage.
//! [`Ctx::fence`](crate::world::Ctx::fence) drains the caller's own buffer
//! as one scheduled gate, and fences are likewise dependent with
//! everything in the independence relation.
//!
//! When the world shuts down cleanly with non-empty buffers, the scheduler
//! drains them deterministically (ascending pid, FIFO) — no survivor can
//! observe that order, so it adds no schedules. A **crash drops the
//! victim's buffer**: the never-flushed writes model a process dying with
//! stores still in flight, and the explorer separately branches
//! flush-then-crash to cover the published variants.
//!
//! # Critical cycles
//!
//! When a weak-memory run violates a property, the raw schedule says
//! *where* but not *why*. [`critical_cycle`] rebuilds the execution's
//! memory-order graph from the recorded [`History`] — program order `po`,
//! reads-from `rf`, coherence `co`, and from-reads `fr` — and returns the
//! shortest cycle through those edges. A cycle is exactly a certificate of
//! non-SC behaviour (an acyclic po ∪ rf ∪ co ∪ fr graph embeds in a
//! sequential order), and the reported edge list names the reordering:
//! "this write overtook that read".

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::history::{Event, FaultKind, History, OpKind, RegId};
use crate::sched::{Decision, ScheduleView, Strategy};

/// The register id [`Ctx::fence`](crate::world::Ctx::fence) gates on: a
/// sentinel outside every real register's id space (registers are dense
/// from 0). Fence ops carry it in [`PendingOp`](crate::sched::PendingOp)
/// and in recorded [`Event::Op`]s.
pub const FENCE_REG: RegId = usize::MAX;

/// Which memory model the lockstep scheduler simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeakMode {
    /// Sequential consistency: writes land in memory at their grant (the
    /// pre-weakmem behaviour; store buffers stay empty).
    #[default]
    Sc,
    /// Total store order: per-process FIFO store buffers, head-only
    /// flushes, store-to-load forwarding.
    Tso,
    /// Partial store order: like TSO but only per-*register* FIFO order —
    /// buffered writes to distinct registers flush in any order.
    Pso,
}

impl WeakMode {
    /// The mode's stable lowercase name (JSON / CLI key).
    pub fn name(self) -> &'static str {
        match self {
            WeakMode::Sc => "sc",
            WeakMode::Tso => "tso",
            WeakMode::Pso => "pso",
        }
    }
}

impl fmt::Display for WeakMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A write sitting in a process's store buffer: the typed value for
/// store-to-load forwarding, plus the deferred effect that lands it in the
/// backing cell when flushed.
pub(crate) struct BufferedStore {
    /// Target register.
    pub reg: RegId,
    /// The caller's tag (rides into nothing further; the Op event already
    /// recorded it at grant time).
    #[allow(dead_code)]
    pub tag: u64,
    /// The buffered value, for same-process forwarding reads.
    pub value: Box<dyn Any + Send>,
    /// Applies the store to the backing cell.
    pub apply: Box<dyn FnOnce() + Send>,
}

impl fmt::Debug for BufferedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferedStore")
            .field("reg", &self.reg)
            .finish_non_exhaustive()
    }
}

/// The flushable entries of one process's buffer under `mode`: TSO exposes
/// the head only; PSO exposes the oldest entry per register, in buffer
/// order of first occurrence.
pub(crate) fn flushable_of(mode: WeakMode, buffer: &VecDeque<BufferedStore>) -> Vec<RegId> {
    match mode {
        WeakMode::Sc => Vec::new(),
        WeakMode::Tso => buffer.front().map(|e| e.reg).into_iter().collect(),
        WeakMode::Pso => {
            let mut regs = Vec::new();
            for e in buffer {
                if !regs.contains(&e.reg) {
                    regs.push(e.reg);
                }
            }
            regs
        }
    }
}

/// One memory operation in a critical cycle, formatted from the recorded
/// history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleNode {
    /// The acting process.
    pub pid: usize,
    /// Read or write.
    pub kind: OpKind,
    /// Target register.
    pub reg: RegId,
    /// The op's global step index (its grant position).
    pub step: u64,
    /// Display name of the register (`r<id>` when the history has no
    /// name table).
    pub reg_name: String,
}

impl fmt::Display for CycleNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            OpKind::Read => "R",
            OpKind::Write => "W",
            OpKind::Fence => "F",
            OpKind::Swap => "X",
        };
        write!(f, "{k} p{} {}@{}", self.pid, self.reg_name, self.step)
    }
}

/// The relation an edge of a critical cycle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Program order: same process, consecutive in its instruction stream.
    Po,
    /// Reads-from: the write the read observed.
    Rf,
    /// Coherence: memory order between two writes to the same register.
    Co,
    /// From-read: the read observed a write that the target write
    /// coherence-overwrites.
    Fr,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeKind::Po => "po",
            EdgeKind::Rf => "rf",
            EdgeKind::Co => "co",
            EdgeKind::Fr => "fr",
        })
    }
}

/// A minimal certificate that an execution is not sequentially consistent:
/// the shortest cycle in its po ∪ rf ∪ co ∪ fr graph, plus the po edge the
/// store buffer actually broke.
#[derive(Debug, Clone)]
pub struct CriticalCycle {
    /// The cycle as `(from, relation, to)` edges; the last edge closes
    /// back to the first node.
    pub edges: Vec<(CycleNode, EdgeKind, CycleNode)>,
    /// Human explanation of the reordered po edge: which write overtook
    /// which later access of the same process (the buffered write's flush
    /// landed after its po-successor executed). Empty when no single po
    /// edge explains it (cannot happen for store-buffer executions of
    /// this module, but the type does not promise it).
    pub reordered: String,
}

impl fmt::Display for CriticalCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "critical cycle ({} edges): ", self.edges.len())?;
        for (i, (from, kind, _)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{from} -{kind}->")?;
        }
        if let Some((first, _, _)) = self.edges.first() {
            write!(f, " {first}")?;
        }
        if !self.reordered.is_empty() {
            write!(f, "; {}", self.reordered)?;
        }
        Ok(())
    }
}

/// One node of the access-event graph built from a history.
struct AegOp {
    pid: usize,
    kind: OpKind,
    reg: RegId,
    step: u64,
    /// Index of the Op event in the history (issue order).
    issue: usize,
    /// For writes: the history index at which the store became visible in
    /// memory — its matching Flush event, or its own Op event when the
    /// history has no flushes (SC runs). `None` = never flushed
    /// (crash-dropped).
    vis: Option<usize>,
}

/// Rebuilds po ∪ rf ∪ co ∪ fr from a recorded lockstep history and returns
/// the shortest cycle, or `None` when the execution is sequentially
/// consistent (the graph is acyclic). `reg_names` maps register ids to
/// display names; out-of-range ids render as `r<id>`.
///
/// Writes are matched to [`Event::Flush`] entries per process in FIFO
/// order (first buffered write of the flushed register); histories without
/// flush events — SC runs — get every write visible at its own grant, so
/// the function is total over both modes and returns `None` on SC
/// histories by construction.
pub fn critical_cycle(history: &History, reg_names: &[String]) -> Option<CriticalCycle> {
    // -- Collect memory ops (fences carry no value; they only order). --
    let events = history.events();
    let mut ops: Vec<AegOp> = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        if let Event::Op {
            step,
            pid,
            kind,
            reg,
            tag: _,
        } = ev
        {
            if *kind == OpKind::Fence {
                continue;
            }
            ops.push(AegOp {
                pid: *pid,
                kind: *kind,
                reg: *reg,
                step: *step,
                issue: idx,
                vis: match kind {
                    OpKind::Write => None, // resolved below
                    _ => Some(idx),
                },
            });
        }
    }
    // -- Resolve write visibility: match Flush events per pid, FIFO over
    // the flushed register; no flushes at all ⇒ SC ⇒ visible at grant. --
    let any_flush = events.iter().any(|e| matches!(e, Event::Flush { .. }));
    if any_flush {
        for (idx, ev) in events.iter().enumerate() {
            if let Event::Flush { pid, reg, .. } = ev {
                let slot = ops.iter_mut().find(|o| {
                    o.kind == OpKind::Write && o.pid == *pid && o.reg == *reg && o.vis.is_none()
                });
                if let Some(o) = slot {
                    o.vis = Some(idx);
                }
            }
        }
    } else {
        for o in ops.iter_mut() {
            if o.kind == OpKind::Write {
                o.vis = Some(o.issue);
            }
        }
    }

    // -- Edges. Adjacency over op indices. --
    let m = ops.len();
    let mut adj: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); m];
    // po: consecutive ops of each pid (transitively closed by path search).
    let mut last_of: Vec<Option<usize>> = Vec::new();
    for i in 0..m {
        let pid = ops[i].pid;
        if last_of.len() <= pid {
            last_of.resize(pid + 1, None);
        }
        if let Some(prev) = last_of[pid] {
            adj[prev].push((i, EdgeKind::Po));
        }
        last_of[pid] = Some(i);
    }
    // co: per-register visibility order over flushed writes.
    let mut by_reg: Vec<(RegId, Vec<usize>)> = Vec::new();
    for i in 0..m {
        if ops[i].kind == OpKind::Write && ops[i].vis.is_some() {
            match by_reg.iter_mut().find(|(r, _)| *r == ops[i].reg) {
                Some((_, v)) => v.push(i),
                None => by_reg.push((ops[i].reg, vec![i])),
            }
        }
    }
    for (_, writes) in by_reg.iter_mut() {
        writes.sort_by_key(|&i| ops[i].vis);
        for w in writes.windows(2) {
            adj[w[0]].push((w[1], EdgeKind::Co));
        }
    }
    // rf + fr per read: forwarding from the newest own buffered-at-read
    // write, else the last write visible before the read; fr goes to the
    // source's immediate co-successor (co chains reach the rest).
    for r in 0..m {
        if ops[r].kind != OpKind::Read {
            continue;
        }
        let (reg, at, pid) = (ops[r].reg, ops[r].issue, ops[r].pid);
        let forwarded = (0..m)
            .filter(|&w| {
                ops[w].kind == OpKind::Write
                    && ops[w].pid == pid
                    && ops[w].reg == reg
                    && ops[w].issue < at
                    && ops[w].vis.map_or(true, |v| v > at)
            })
            .max_by_key(|&w| ops[w].issue);
        let source = forwarded.or_else(|| {
            (0..m)
                .filter(|&w| {
                    ops[w].kind == OpKind::Write
                        && ops[w].reg == reg
                        && ops[w].vis.is_some_and(|v| v < at)
                })
                .max_by_key(|&w| ops[w].vis)
        });
        let co_order = by_reg
            .iter()
            .find(|(rr, _)| *rr == reg)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[]);
        match source {
            Some(w) => {
                adj[w].push((r, EdgeKind::Rf));
                // fr: the read is before every write co-after its source.
                let succ = co_order
                    .iter()
                    .position(|&x| x == w)
                    .and_then(|p| co_order.get(p + 1));
                if let Some(&w2) = succ {
                    adj[r].push((w2, EdgeKind::Fr));
                } else if ops[w].vis.is_none() {
                    // Forwarded from a never-flushed write: the read is
                    // before every flushed write of the register.
                    if let Some(&first) = co_order.first() {
                        adj[r].push((first, EdgeKind::Fr));
                    }
                }
            }
            None => {
                // Read of the initial value: before every flushed write.
                if let Some(&first) = co_order.first() {
                    adj[r].push((first, EdgeKind::Fr));
                }
            }
        }
    }

    // -- Shortest cycle: BFS from every node back to itself. --
    let mut best: Option<Vec<(usize, EdgeKind, usize)>> = None;
    for start in 0..m {
        let mut prev: Vec<Option<(usize, EdgeKind)>> = vec![None; m];
        let mut seen = vec![false; m];
        let mut queue = VecDeque::new();
        for &(next, kind) in &adj[start] {
            if next == start {
                let cycle = vec![(start, kind, start)];
                if best.as_ref().map_or(true, |b| b.len() > 1) {
                    best = Some(cycle);
                }
                continue;
            }
            if !seen[next] {
                seen[next] = true;
                prev[next] = Some((start, kind));
                queue.push_back(next);
            }
        }
        'bfs: while let Some(u) = queue.pop_front() {
            for &(v, kind) in &adj[u] {
                if v == start {
                    // Reconstruct start -> ... -> u -> start.
                    let mut path = vec![(u, kind, start)];
                    let mut cur = u;
                    while cur != start {
                        let (p, k) = prev[cur].expect("BFS predecessor");
                        path.push((p, k, cur));
                        cur = p;
                    }
                    path.reverse();
                    if best.as_ref().map_or(true, |b| b.len() > path.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some((u, kind));
                    queue.push_back(v);
                }
            }
        }
    }
    let cycle = best?;

    let name = |reg: RegId| -> String {
        reg_names
            .get(reg)
            .cloned()
            .unwrap_or_else(|| format!("r{reg}"))
    };
    let node = |i: usize| CycleNode {
        pid: ops[i].pid,
        kind: ops[i].kind,
        reg: ops[i].reg,
        step: ops[i].step,
        reg_name: name(ops[i].reg),
    };
    // Name the broken po edge: a write whose visibility lands after its
    // po-successor in the cycle executed.
    let mut reordered = String::new();
    for &(a, kind, b) in &cycle {
        if kind == EdgeKind::Po && ops[a].kind == OpKind::Write {
            let late = match ops[a].vis {
                Some(v) => v > ops[b].issue,
                None => true,
            };
            if late {
                reordered = format!(
                    "write of {} by p{} stayed buffered past its program-order \
                     successor ({} of {}) — the store overtook the later access",
                    name(ops[a].reg),
                    ops[a].pid,
                    match ops[b].kind {
                        OpKind::Read => "read",
                        OpKind::Write => "write",
                        OpKind::Fence => "fence",
                        OpKind::Swap => "swap",
                    },
                    name(ops[b].reg),
                );
                break;
            }
        }
    }
    Some(CriticalCycle {
        edges: cycle
            .into_iter()
            .map(|(a, k, b)| (node(a), k, node(b)))
            .collect(),
        reordered,
    })
}

/// Decorator that randomly interleaves flush decisions with an inner
/// strategy — the weak-memory counterpart of
/// [`RandomStrategy`](crate::sched::RandomStrategy) for PCT/random sweeps.
/// With probability `percent`% (default 40) at each decision point with a
/// non-empty flushable set, it flushes a uniformly chosen entry; otherwise
/// it delegates. Seeded and replayable; under SC the flushable set is
/// always empty, so `RandomFlushes` degenerates to its inner strategy with
/// an identical decision stream (the RNG is only consulted when flushes
/// exist).
#[derive(Debug)]
pub struct RandomFlushes<S> {
    inner: S,
    rng: SmallRng,
    percent: u32,
}

impl<S: Strategy> RandomFlushes<S> {
    /// Wraps `inner` with a fresh flush-coin stream.
    pub fn new(inner: S, seed: u64) -> Self {
        RandomFlushes {
            inner,
            rng: SmallRng::seed_from_u64(seed ^ 0xF1A5_F1A5_F1A5_F1A5),
            percent: 40,
        }
    }

    /// Overrides the per-decision flush probability (in percent, clamped
    /// to 100).
    pub fn with_percent(mut self, percent: u32) -> Self {
        self.percent = percent.min(100);
        self
    }
}

impl<S: Strategy> Strategy for RandomFlushes<S> {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        if !view.flushable.is_empty() && self.rng.gen_range(0..100u32) < self.percent {
            let (pid, reg) = view.flushable[self.rng.gen_range(0..view.flushable.len())];
            return Decision::Flush { pid, reg };
        }
        self.inner.decide(view)
    }

    fn drain_fault_notes(&mut self) -> Vec<(usize, FaultKind)> {
        self.inner.drain_fault_notes()
    }

    fn mid_op(&self) -> Option<usize> {
        self.inner.mid_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(step: u64, pid: usize, kind: OpKind, reg: RegId) -> Event {
        Event::Op {
            step,
            pid,
            kind,
            reg,
            tag: 0,
        }
    }

    fn flush(step: u64, pid: usize, reg: RegId) -> Event {
        Event::Flush { step, pid, reg }
    }

    /// The SB execution with both writes flushed after both reads: the
    /// canonical 4-edge cycle Wx -po-> Ry -fr-> Wy -po-> Rx -fr-> Wx.
    #[test]
    fn sb_reordering_yields_the_canonical_four_edge_cycle() {
        let h = History::from_events(vec![
            op(0, 0, OpKind::Write, 0), // p0: x = 1 (buffered)
            op(1, 1, OpKind::Write, 1), // p1: y = 1 (buffered)
            op(2, 0, OpKind::Read, 1),  // p0: reads y = 0
            op(3, 1, OpKind::Read, 0),  // p1: reads x = 0
            flush(4, 0, 0),
            flush(4, 1, 1),
        ]);
        let names = vec!["x".to_string(), "y".to_string()];
        let cycle = critical_cycle(&h, &names).expect("SB reordering is not SC");
        assert_eq!(cycle.edges.len(), 4);
        let kinds: Vec<EdgeKind> = cycle.edges.iter().map(|&(_, k, _)| k).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == EdgeKind::Po).count(), 2);
        assert_eq!(kinds.iter().filter(|&&k| k == EdgeKind::Fr).count(), 2);
        assert!(
            cycle.reordered.contains("stayed buffered"),
            "must name the broken po edge: {}",
            cycle.reordered
        );
        let rendered = cycle.to_string();
        assert!(rendered.contains("-po->") && rendered.contains("-fr->"));
    }

    /// The same four ops in an SC-reachable order (writes visible at
    /// grant): acyclic, no cycle reported.
    #[test]
    fn sc_execution_has_no_cycle() {
        let h = History::from_events(vec![
            op(0, 0, OpKind::Write, 0),
            op(1, 0, OpKind::Read, 1),
            op(2, 1, OpKind::Write, 1),
            op(3, 1, OpKind::Read, 0), // reads x = 1: fine
        ]);
        assert!(critical_cycle(&h, &[]).is_none());
    }

    /// Store-to-load forwarding shows up as an rf edge from a still-
    /// buffered write, and a flushed overwrite closes an fr edge through
    /// the co order.
    #[test]
    fn forwarding_reads_from_unflushed_writes() {
        // p0: x = 1 (buffered); reads x (forwards 1); p1: x = 2 flushed
        // immediately; then p0's x = 1 flushes last.
        let h = History::from_events(vec![
            op(0, 0, OpKind::Write, 0),
            op(1, 0, OpKind::Read, 0), // forwards p0's buffered 1
            op(2, 1, OpKind::Write, 0),
            flush(3, 1, 0),
            flush(3, 0, 0),
        ]);
        // co: W(p1) -> W(p0); rf: W(p0) -> R(p0). The read forwards from a
        // write that is co-*after* the p1 write, so no fr edge contradicts
        // anything: acyclic.
        assert!(critical_cycle(&h, &[]).is_none());
    }

    /// MP under PSO: flag flushes before data, the reader sees flag=1 but
    /// data=0 — a cycle must exist and name data's broken po edge.
    #[test]
    fn mp_pso_reordering_is_cyclic() {
        let h = History::from_events(vec![
            op(0, 0, OpKind::Write, 0), // data = 1 (buffered)
            op(1, 0, OpKind::Write, 1), // flag = 1 (buffered)
            flush(2, 0, 1),             // PSO: flag first
            op(2, 1, OpKind::Read, 1),  // reader: flag = 1
            op(3, 1, OpKind::Read, 0),  // reader: data = 0 (!)
            flush(4, 0, 0),             // data lands too late
        ]);
        let names = vec!["data".to_string(), "flag".to_string()];
        let cycle = critical_cycle(&h, &names).expect("MP reordering is not SC");
        assert!(
            cycle.reordered.contains("data"),
            "must name the data write as the buffered one: {}",
            cycle.reordered
        );
    }

    #[test]
    fn flushable_respects_the_buffer_discipline() {
        let mk = |reg: RegId| BufferedStore {
            reg,
            tag: 0,
            value: Box::new(0u64),
            apply: Box::new(|| {}),
        };
        let buf: VecDeque<BufferedStore> = vec![mk(3), mk(5), mk(3)].into();
        assert_eq!(flushable_of(WeakMode::Sc, &buf), Vec::<RegId>::new());
        assert_eq!(flushable_of(WeakMode::Tso, &buf), vec![3]);
        assert_eq!(flushable_of(WeakMode::Pso, &buf), vec![3, 5]);
        assert!(flushable_of(WeakMode::Tso, &VecDeque::new()).is_empty());
    }

    #[test]
    fn weak_mode_names_are_stable() {
        assert_eq!(WeakMode::Sc.name(), "sc");
        assert_eq!(WeakMode::Tso.name(), "tso");
        assert_eq!(WeakMode::Pso.name(), "pso");
        assert_eq!(WeakMode::Pso.to_string(), "pso");
        assert_eq!(WeakMode::default(), WeakMode::Sc);
    }
}
