//! The metrics plane: cheap cross-backend counters, gauges, and phase
//! spans.
//!
//! Histories ([`crate::history`]) give a perfect record of lockstep runs,
//! but they do not exist in [`Mode::Free`](crate::Mode::Free) and they
//! cost an allocation per event. This module is the complementary
//! "flight recorder": a [`MetricsRegistry`] of per-process **sharded
//! atomic counters** that works identically under the lockstep scheduler
//! and free-running OS threads, because every increment is a relaxed
//! atomic add on a cache-line-padded shard owned by one process.
//!
//! Three kinds of signal live here:
//!
//! - **Counters** ([`Counter`]) — monotonic event counts, incremented at
//!   the crate that owns the event: register reads/writes in `bprc-sim`'s
//!   access gate, scan attempts/retries/starvations in `bprc-snapshot`,
//!   arrow toggles in `bprc-registers`, coin flips and walk extremes in
//!   `bprc-coin`/`bprc-core`, strip counter increments and mod-3K wraps
//!   in `bprc-core` (via `bprc-strip`), round advances in `bprc-core`.
//! - **Gauges** ([`Gauge`]) — last-written or high-water values, e.g. the
//!   round a process reached or the register-width high-water mark that
//!   backs E6's §6 space accounting.
//! - **Phase spans** ([`PhaseEvent`]) — a per-process log of protocol
//!   phases (`round(r)`/`scan`/`write`/`coin`), stamped with the world
//!   step counter. A new phase implicitly ends the previous one. The
//!   unified trace renderer ([`crate::trace::render_unified`]) merges
//!   them with fault events from the history into one timeline.
//!
//! A [`Telemetry`] snapshot freezes the registry into plain data; it
//! rides on every [`RunReport`](crate::world::RunReport) and serializes
//! to JSONL for the experiment exporter.
//!
//! Overhead: counters are one `fetch_add(Relaxed)` on an uncontended
//! cache line (~1 ns); phase events take an uncontended per-shard mutex
//! and are emitted at protocol granularity (a handful per scan), not per
//! register access. The registry is always on — there is no feature gate
//! to drift out of date.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::json::Value;
use crate::tracing::{now_nanos, AtomicHistogram, Hist, Histogram};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Every event class the metrics plane counts.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Counter {
            $($(#[$doc])* $variant,)*
        }

        impl Counter {
            /// All counters, in declaration (and export) order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant),*];

            /// The counter's stable snake_case name (JSONL key).
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)*
                }
            }
        }
    };
}

counters! {
    /// Scheduled register reads (counted at the world's access gate).
    RegReads => "reg_reads",
    /// Scheduled register writes (counted at the world's access gate).
    RegWrites => "reg_writes",
    /// Completed snapshot scans.
    Scans => "scans",
    /// Double-collect attempts (each scan makes ≥ 1).
    ScanAttempts => "scan_attempts",
    /// Value-register reads performed inside collects — recorded per
    /// attempt, including the final attempt of a starved scan.
    CollectReads => "collect_reads",
    /// Attempts beyond the first within one scan call.
    ScanRetries => "scan_retries",
    /// Scan calls that exhausted their retry budget.
    ScanStarved => "scan_starved",
    /// Snapshot updates (writes through a port).
    Updates => "updates",
    /// Arrow cells raised.
    ArrowRaises => "arrow_raises",
    /// Arrow cells lowered.
    ArrowLowers => "arrow_lowers",
    /// Arrow cells read (handshake checks during collects).
    ArrowChecks => "arrow_checks",
    /// Local coin flips feeding the shared-coin walk.
    CoinFlips => "coin_flips",
    /// Walk steps that hit the ±(m+1) saturation bound.
    WalkExtremes => "walk_extremes",
    /// Strip edge-counter increments (one per neighbour per round advance).
    StripIncs => "strip_incs",
    /// Strip edge counters that wrapped mod 3K.
    StripWraps => "strip_wraps",
    /// Protocol round advances.
    RoundAdvances => "round_advances",
    /// Preferences demoted to ⊥ (protocol line 5).
    Demotions => "demotions",
    /// Coin values adopted after a demotion (protocol line 6).
    CoinAdoptions => "coin_adoptions",
    /// Decisions reached.
    Decisions => "decisions",
    /// Schedules fully explored by the systematic explorer (`explore`).
    SchedulesExplored => "schedules_explored",
    /// Branches the explorer's sleep-set reduction proved redundant and
    /// skipped.
    SchedulesPruned => "schedules_pruned",
    /// Explorer paths cut short by the step budget.
    SchedulesTruncated => "schedules_truncated",
    /// Candidate re-executions performed by the trace shrinker.
    ShrinkRuns => "shrink_runs",
    /// Crash decisions injected by the explorer's fault branches.
    FaultsInjected => "faults_injected",
    /// Lazy-mode scans answered by revalidating and reusing the previous
    /// view instead of a full double collect.
    LazyScanHits => "lazy_scan_hits",
    /// Writes parked in a per-process store buffer instead of landing in
    /// shared memory (weak-memory modes only).
    StoresBuffered => "stores_buffered",
    /// Buffered writes that became globally visible — via an explicit
    /// flush decision, a fence drain, or the end-of-run drain.
    StoresFlushed => "stores_flushed",
    /// Memory fences that actually drained a buffer (free no-ops under
    /// sequential consistency are not counted).
    Fences => "fences",
}

macro_rules! gauges {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Last-written / high-water values tracked per process.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Gauge {
            $($(#[$doc])* $variant,)*
        }

        impl Gauge {
            /// All gauges, in declaration (and export) order.
            pub const ALL: &'static [Gauge] = &[$(Gauge::$variant),*];

            /// The gauge's stable snake_case name (JSONL key).
            pub fn name(self) -> &'static str {
                match self {
                    $(Gauge::$variant => $name,)*
                }
            }
        }
    };
}

gauges! {
    /// The round this process has reached.
    Round => "round",
    /// High-water single-register width in bits (§6 accounting).
    MaxRegisterBits => "max_register_bits",
    /// High-water total-memory width in bits.
    MaxTotalBits => "max_total_bits",
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_GAUGES: usize = Gauge::ALL.len();
const N_HISTS: usize = Hist::ALL.len();

/// Gauges store `value + 1` so the all-zeros initial state means "never
/// set" and `fetch_max` still implements high-water semantics.
const GAUGE_UNSET: u64 = 0;

/// A protocol phase a process can announce (see [`PhaseEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Entered round `r`.
    Round(u64),
    /// Started a snapshot scan.
    Scan,
    /// Started a snapshot update (write).
    Write,
    /// Consulted / advanced the shared coin.
    Coin,
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseKind::Round(r) => write!(f, "round({r})"),
            PhaseKind::Scan => write!(f, "scan"),
            PhaseKind::Write => write!(f, "write"),
            PhaseKind::Coin => write!(f, "coin"),
        }
    }
}

/// One phase announcement: at world step `step` the process entered
/// `kind`. A later event from the same process implicitly ends it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEvent {
    /// World step counter at announcement time (approximate global order
    /// in free mode, exact in lockstep).
    pub step: u64,
    /// Monotonic nanoseconds ([`now_nanos`]) at announcement time: the
    /// stamp that stays meaningful under
    /// [`Mode::Free`](crate::Mode::Free), where the step counter is only
    /// an approximate order, and the feed for Chrome-trace span
    /// durations.
    pub nanos: u64,
    /// The phase entered.
    pub kind: PhaseKind,
}

/// One process's slice of the registry. `#[repr(align(64))]` pads each
/// shard to its own cache line so free-mode increments never false-share.
#[repr(align(64))]
struct Shard {
    counters: [AtomicU64; N_COUNTERS],
    gauges: [AtomicU64; N_GAUGES],
    hists: [AtomicHistogram; N_HISTS],
    phases: Mutex<Vec<PhaseEvent>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(GAUGE_UNSET)),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
            phases: Mutex::new(Vec::new()),
        }
    }
}

/// Sharded counters/gauges/phase logs for `n` processes plus one global
/// shard (pid-less accounting such as the §6 memory high-water).
///
/// Cloneable handles are taken with [`MetricsRegistry::proc`]; snapshots
/// with [`MetricsRegistry::snapshot`].
pub struct MetricsRegistry {
    n: usize,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("n", &self.n)
            .finish()
    }
}

impl MetricsRegistry {
    /// A registry for `n` processes (plus the global shard).
    pub fn new(n: usize) -> Self {
        MetricsRegistry {
            n,
            shards: (0..n + 1).map(|_| Shard::new()).collect(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The metrics handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn proc(&self, pid: usize) -> ProcMetrics<'_> {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        ProcMetrics {
            shard: &self.shards[pid],
        }
    }

    /// The pid-less global shard (high-water gauges, aggregate counts).
    pub fn global(&self) -> ProcMetrics<'_> {
        ProcMetrics {
            shard: &self.shards[self.n],
        }
    }

    /// Freezes the registry into a plain-data [`Telemetry`] snapshot.
    pub fn snapshot(&self) -> Telemetry {
        Telemetry {
            n: self.n,
            counters: self
                .shards
                .iter()
                .map(|s| {
                    s.counters
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect()
                })
                .collect(),
            gauges: self
                .shards
                .iter()
                .map(|s| {
                    s.gauges
                        .iter()
                        .map(|g| match g.load(Ordering::Relaxed) {
                            GAUGE_UNSET => None,
                            v => Some(v - 1),
                        })
                        .collect()
                })
                .collect(),
            hists: self
                .shards
                .iter()
                .map(|s| s.hists.iter().map(|h| h.snapshot()).collect())
                .collect(),
            phases: self
                .shards
                .iter()
                .map(|s| s.phases.lock().clone())
                .collect(),
        }
    }
}

/// A borrowed handle for one shard: the write API handed to process
/// bodies (via [`Ctx`](crate::world::Ctx)) and to protocol layers.
#[derive(Clone, Copy)]
pub struct ProcMetrics<'a> {
    shard: &'a Shard,
}

impl<'a> ProcMetrics<'a> {
    /// Adds `k` to counter `c` (relaxed, uncontended — ~1 ns).
    pub fn incr(&self, c: Counter, k: u64) {
        self.shard.counters[c as usize].fetch_add(k, Ordering::Relaxed);
    }

    /// Reads counter `c` from this shard.
    pub fn get(&self, c: Counter) -> u64 {
        self.shard.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Sets gauge `g` to `v` (last-write-wins).
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        self.shard.gauges[g as usize].store(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Raises gauge `g` to at least `v` (high-water semantics).
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        self.shard.gauges[g as usize].fetch_max(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Reads gauge `g`; `None` if it was never set.
    pub fn gauge(&self, g: Gauge) -> Option<u64> {
        match self.shard.gauges[g as usize].load(Ordering::Relaxed) {
            GAUGE_UNSET => None,
            v => Some(v - 1),
        }
    }

    /// Appends a phase announcement stamped with world step `step` and
    /// the monotonic-nanosecond clock (the free-mode-proof half of the
    /// dual stamp).
    pub fn phase(&self, step: u64, kind: PhaseKind) {
        let nanos = now_nanos();
        self.shard
            .phases
            .lock()
            .push(PhaseEvent { step, nanos, kind });
    }

    /// Records one latency sample into histogram `h` (relaxed atomics).
    pub fn hist_record(&self, h: Hist, v: u64) {
        self.shard.hists[h as usize].record(v);
    }
}

/// A frozen, plain-data view of a [`MetricsRegistry`]: what a run's
/// [`RunReport`](crate::world::RunReport) and the JSONL exporter carry.
///
/// Shards `0..n` are per-process; shard `n` is the global shard.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    n: usize,
    counters: Vec<Vec<u64>>,
    gauges: Vec<Vec<Option<u64>>>,
    hists: Vec<Vec<Histogram>>,
    phases: Vec<Vec<PhaseEvent>>,
}

impl Telemetry {
    /// An empty snapshot for `n` processes (used when a run never
    /// started).
    pub fn empty(n: usize) -> Self {
        MetricsRegistry::new(n).snapshot()
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Counter `c` for process `pid`.
    pub fn counter(&self, pid: usize, c: Counter) -> u64 {
        self.counters[pid][c as usize]
    }

    /// Counter `c` summed over all shards (processes + global).
    pub fn total(&self, c: Counter) -> u64 {
        self.counters.iter().map(|s| s[c as usize]).sum()
    }

    /// Gauge `g` for process `pid` (`None` if never set).
    pub fn gauge(&self, pid: usize, g: Gauge) -> Option<u64> {
        self.gauges[pid][g as usize]
    }

    /// Gauge `g` on the global shard.
    pub fn gauge_global(&self, g: Gauge) -> Option<u64> {
        self.gauges[self.n][g as usize]
    }

    /// The maximum of gauge `g` over every shard that set it.
    pub fn gauge_max_all(&self, g: Gauge) -> Option<u64> {
        self.gauges.iter().filter_map(|s| s[g as usize]).max()
    }

    /// Histogram `h` for process `pid`.
    pub fn hist(&self, pid: usize, h: Hist) -> &Histogram {
        &self.hists[pid][h as usize]
    }

    /// Histogram `h` merged over all shards (processes + global): the
    /// run-wide latency distribution.
    pub fn hist_merged(&self, h: Hist) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.hists {
            out.merge(&shard[h as usize]);
        }
        out
    }

    /// Process `pid`'s phase log, in announcement order.
    pub fn phases(&self, pid: usize) -> &[PhaseEvent] {
        &self.phases[pid]
    }

    /// All phase announcements merged across processes, sorted by step
    /// (ties by pid): the unified-timeline feed.
    pub fn merged_phases(&self) -> Vec<(u64, usize, PhaseKind)> {
        let mut all: Vec<(u64, usize, PhaseKind)> = self
            .phases
            .iter()
            .enumerate()
            .flat_map(|(pid, log)| log.iter().map(move |e| (e.step, pid, e.kind)))
            .collect();
        all.sort_by_key(|&(step, pid, _)| (step, pid));
        all
    }

    /// One JSON object per shard (`"pid": n` is the global shard),
    /// counters and set gauges keyed by their stable names.
    pub fn to_json(&self) -> Value {
        let shards: Vec<Value> = (0..=self.n)
            .map(|pid| {
                let mut pairs: Vec<(String, Value)> = vec![
                    ("pid".to_string(), pid.into()),
                    (
                        "kind".to_string(),
                        if pid == self.n { "global" } else { "proc" }.into(),
                    ),
                ];
                let counters: Vec<(String, Value)> = Counter::ALL
                    .iter()
                    .filter(|&&c| self.counters[pid][c as usize] != 0)
                    .map(|&c| (c.name().to_string(), self.counters[pid][c as usize].into()))
                    .collect();
                pairs.push(("counters".to_string(), Value::Obj(counters)));
                let gauges: Vec<(String, Value)> = Gauge::ALL
                    .iter()
                    .filter_map(|&g| {
                        self.gauges[pid][g as usize].map(|v| (g.name().to_string(), v.into()))
                    })
                    .collect();
                pairs.push(("gauges".to_string(), Value::Obj(gauges)));
                pairs.push(("phases".to_string(), self.phases[pid].len().into()));
                Value::Obj(pairs)
            })
            .collect();
        Value::obj(vec![
            ("n", self.n.into()),
            ("totals", self.totals_json()),
            ("histograms", self.hists_json()),
            ("shards", Value::Arr(shards)),
        ])
    }

    fn hists_json(&self) -> Value {
        Value::Obj(
            Hist::ALL
                .iter()
                .map(|&h| (h.name().to_string(), self.hist_merged(h).to_json()))
                .filter(|(_, v)| v.get("count").and_then(|c| c.as_num()) != Some(0.0))
                .collect(),
        )
    }

    fn totals_json(&self) -> Value {
        Value::Obj(
            Counter::ALL
                .iter()
                .filter(|&&c| self.total(c) != 0)
                .map(|&c| (c.name().to_string(), self.total(c).into()))
                .collect(),
        )
    }

    /// JSONL: one `{"type":"metrics",...}` line per shard followed by one
    /// `{"type":"phase",...}` line per phase announcement.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for pid in 0..=self.n {
            let mut pairs: Vec<(String, Value)> = vec![
                ("type".to_string(), "metrics".into()),
                ("pid".to_string(), pid.into()),
            ];
            for &c in Counter::ALL {
                if self.counters[pid][c as usize] != 0 {
                    pairs.push((c.name().to_string(), self.counters[pid][c as usize].into()));
                }
            }
            for &g in Gauge::ALL {
                if let Some(v) = self.gauges[pid][g as usize] {
                    pairs.push((g.name().to_string(), v.into()));
                }
            }
            out.push_str(&Value::Obj(pairs).render());
            out.push('\n');
        }
        for (step, pid, kind) in self.merged_phases() {
            let mut pairs: Vec<(String, Value)> = vec![
                ("type".to_string(), "phase".into()),
                ("step".to_string(), step.into()),
                ("pid".to_string(), pid.into()),
            ];
            match kind {
                PhaseKind::Round(r) => {
                    pairs.push(("phase".to_string(), "round".into()));
                    pairs.push(("round".to_string(), r.into()));
                }
                PhaseKind::Scan => pairs.push(("phase".to_string(), "scan".into())),
                PhaseKind::Write => pairs.push(("phase".to_string(), "write".into())),
                PhaseKind::Coin => pairs.push(("phase".to_string(), "coin".into())),
            }
            out.push_str(&Value::Obj(pairs).render());
            out.push('\n');
        }
        out
    }

    /// A one-paragraph human summary of the interesting totals.
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for &c in Counter::ALL {
            let t = self.total(c);
            if t != 0 {
                parts.push(format!("{} {}", c.name(), t));
            }
        }
        if let Some(r) = self.gauge_max_all(Gauge::Round) {
            parts.push(format!("max round {r}"));
        }
        for &h in Hist::ALL {
            let merged = self.hist_merged(h);
            if !merged.is_empty() {
                parts.push(format!(
                    "{} p50 {} p99 {} max {}",
                    h.name(),
                    merged.p50(),
                    merged.p99(),
                    merged.max()
                ));
            }
        }
        format!("telemetry: {}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_by_pid_and_total() {
        let reg = MetricsRegistry::new(3);
        reg.proc(0).incr(Counter::RegReads, 2);
        reg.proc(1).incr(Counter::RegReads, 5);
        reg.proc(2).incr(Counter::RegWrites, 1);
        reg.global().incr(Counter::RegReads, 1);
        let t = reg.snapshot();
        assert_eq!(t.counter(0, Counter::RegReads), 2);
        assert_eq!(t.counter(1, Counter::RegReads), 5);
        assert_eq!(t.total(Counter::RegReads), 8);
        assert_eq!(t.total(Counter::RegWrites), 1);
        assert_eq!(t.total(Counter::Scans), 0);
    }

    #[test]
    fn gauges_distinguish_unset_zero_and_max() {
        let reg = MetricsRegistry::new(2);
        let t0 = reg.snapshot();
        assert_eq!(t0.gauge(0, Gauge::Round), None);
        reg.proc(0).gauge_set(Gauge::Round, 0);
        reg.proc(1).gauge_max(Gauge::MaxRegisterBits, 7);
        reg.proc(1).gauge_max(Gauge::MaxRegisterBits, 3);
        let t = reg.snapshot();
        assert_eq!(t.gauge(0, Gauge::Round), Some(0));
        assert_eq!(t.gauge(1, Gauge::MaxRegisterBits), Some(7));
        assert_eq!(t.gauge_max_all(Gauge::MaxRegisterBits), Some(7));
        assert_eq!(t.gauge_global(Gauge::MaxTotalBits), None);
    }

    #[test]
    fn phases_merge_in_step_order() {
        let reg = MetricsRegistry::new(2);
        reg.proc(1).phase(5, PhaseKind::Scan);
        reg.proc(0).phase(2, PhaseKind::Round(1));
        reg.proc(0).phase(9, PhaseKind::Coin);
        reg.proc(1).phase(2, PhaseKind::Write);
        let t = reg.snapshot();
        assert_eq!(
            t.merged_phases(),
            vec![
                (2, 0, PhaseKind::Round(1)),
                (2, 1, PhaseKind::Write),
                (5, 1, PhaseKind::Scan),
                (9, 0, PhaseKind::Coin),
            ]
        );
        assert_eq!(t.phases(0).len(), 2);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        use std::sync::Arc;
        let reg = Arc::new(MetricsRegistry::new(4));
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        reg.proc(pid).incr(Counter::RegWrites, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().total(Counter::RegWrites), 40_000);
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let reg = MetricsRegistry::new(2);
        reg.proc(0).incr(Counter::Scans, 3);
        reg.proc(0).gauge_set(Gauge::Round, 4);
        reg.proc(1).phase(7, PhaseKind::Round(2));
        let t = reg.snapshot();
        for line in t.to_jsonl().lines() {
            let v = crate::json::parse(line).expect("every JSONL line parses");
            assert!(v.get("type").is_some());
        }
        let v = t.to_json();
        assert_eq!(
            v.get("totals").unwrap().get("scans").unwrap().as_num(),
            Some(3.0)
        );
    }

    #[test]
    fn summary_names_nonzero_counters() {
        let reg = MetricsRegistry::new(1);
        reg.proc(0).incr(Counter::CoinFlips, 12);
        reg.proc(0).gauge_set(Gauge::Round, 3);
        let s = reg.snapshot().summary();
        assert!(s.contains("coin_flips 12"));
        assert!(s.contains("max round 3"));
    }

    #[test]
    fn summary_skips_empty_histograms_and_names_filled_ones() {
        let reg = MetricsRegistry::new(1);
        reg.proc(0).incr(Counter::Scans, 1);
        let quiet = reg.snapshot().summary();
        assert!(
            !quiet.contains("scan_latency_ns"),
            "empty histograms stay out of the summary: {quiet}"
        );
        reg.proc(0).hist_record(Hist::ScanLatencyNs, 1000);
        let s = reg.snapshot().summary();
        assert!(s.contains("scan_latency_ns p50"), "{s}");
    }

    #[test]
    fn histograms_shard_by_pid_and_merge() {
        let reg = MetricsRegistry::new(2);
        reg.proc(0).hist_record(Hist::ScanLatencyNs, 100);
        reg.proc(0).hist_record(Hist::ScanLatencyNs, 200);
        reg.proc(1).hist_record(Hist::ScanLatencyNs, 4000);
        reg.proc(1).hist_record(Hist::DecisionLatencyNs, 7);
        let t = reg.snapshot();
        assert_eq!(t.hist(0, Hist::ScanLatencyNs).count(), 2);
        assert_eq!(t.hist(1, Hist::ScanLatencyNs).count(), 1);
        let merged = t.hist_merged(Hist::ScanLatencyNs);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), 4000);
        assert_eq!(t.hist_merged(Hist::RoundDurationNs).count(), 0);
        let j = t.to_json();
        let hists = j.get("histograms").expect("histograms key");
        assert!(hists.get("scan_latency_ns").is_some());
        assert!(
            hists.get("round_duration_ns").is_none(),
            "empty histograms are omitted"
        );
    }

    #[test]
    fn phase_events_carry_monotonic_nanos() {
        let reg = MetricsRegistry::new(1);
        reg.proc(0).phase(1, PhaseKind::Scan);
        reg.proc(0).phase(2, PhaseKind::Write);
        reg.proc(0).phase(3, PhaseKind::Coin);
        let t = reg.snapshot();
        let phases = t.phases(0);
        assert!(phases.windows(2).all(|w| w[0].nanos <= w[1].nanos));
        assert!(phases.iter().all(|p| p.nanos > 0));
    }
}
