//! Human-readable rendering of recorded histories.
//!
//! Lockstep runs record a [`History`]; this module renders it as a timeline
//! with one column per process — the format you want in front of you when a
//! property checker reports a violation at step 4711.
//!
//! ```text
//! step  p0                   p1
//! ────  ───────────────────  ───────────────────
//!    0  W V_0 #1
//!       ⟨snap:upd:start 1⟩
//!    1                       R V_0
//! ```

use std::fmt::Write as _;

use crate::history::{Event, History, OpKind};

/// Options for [`render`].
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Register names (indexed by register id); missing ids print as `r<id>`.
    pub reg_names: Vec<String>,
    /// Only render steps in this range (inclusive start, exclusive end).
    pub steps: Option<(u64, u64)>,
    /// Include annotation (note) lines.
    pub notes: bool,
    /// Column width per process.
    pub width: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            reg_names: Vec::new(),
            steps: None,
            notes: true,
            width: 22,
        }
    }
}

impl TraceOptions {
    fn reg(&self, id: usize) -> String {
        self.reg_names
            .get(id)
            .cloned()
            .unwrap_or_else(|| format!("r{id}"))
    }
}

/// Renders a history as a per-process timeline.
pub fn render(history: &History, n: usize, opts: &TraceOptions) -> String {
    let mut out = String::new();
    let w = opts.width;
    // Header.
    let _ = write!(out, "{:>6}  ", "step");
    for p in 0..n {
        let _ = write!(out, "{:<w$}", format!("p{p}"), w = w);
    }
    out.push('\n');
    let _ = write!(out, "{:─>6}  ", "");
    for _ in 0..n {
        let _ = write!(out, "{:─<w$}", "", w = w);
    }
    out.push('\n');

    for ev in history.events() {
        let step = ev.step();
        if let Some((lo, hi)) = opts.steps {
            if step < lo || step >= hi {
                continue;
            }
        }
        let (pid, cell, show_step) = match ev {
            Event::Op {
                pid, kind, reg, tag, ..
            } => {
                let k = match kind {
                    OpKind::Read => "R",
                    OpKind::Write => "W",
                };
                let t = if *tag != 0 {
                    format!(" #{tag}")
                } else {
                    String::new()
                };
                (*pid, format!("{k} {}{t}", opts.reg(*reg)), true)
            }
            Event::Note { pid, note, .. } => {
                if !opts.notes {
                    continue;
                }
                let data = note
                    .data
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let text = if data.is_empty() {
                    format!("⟨{}⟩", note.label)
                } else {
                    format!("⟨{} {}⟩", note.label, data)
                };
                (*pid, text, false)
            }
            Event::Crash { pid, .. } => (*pid, "☠ CRASHED".to_string(), true),
            Event::Fault { pid, kind, .. } => (*pid, format!("⚡ {kind}"), true),
        };
        if show_step {
            let _ = write!(out, "{step:>6}  ");
        } else {
            let _ = write!(out, "{:>6}  ", "");
        }
        for p in 0..n {
            if p == pid {
                let mut c = cell.clone();
                if c.chars().count() > w.saturating_sub(1) {
                    c = c.chars().take(w.saturating_sub(2)).collect::<String>() + "…";
                }
                let _ = write!(out, "{c:<w$}");
            } else {
                let _ = write!(out, "{:<w$}", "", w = w);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// One-line statistics summary of a history.
pub fn summary(history: &History, n: usize) -> String {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut per_proc = vec![0u64; n];
    let mut crashes = 0u64;
    let mut faults = 0u64;
    for ev in history.events() {
        match ev {
            Event::Op { pid, kind, .. } => {
                match kind {
                    OpKind::Read => reads += 1,
                    OpKind::Write => writes += 1,
                }
                if *pid < n {
                    per_proc[*pid] += 1;
                }
            }
            Event::Crash { .. } => crashes += 1,
            Event::Fault { .. } => faults += 1,
            Event::Note { .. } => {}
        }
    }
    format!(
        "{} reads, {} writes, {} crashes, {} faults; ops per process: {:?}",
        reads, writes, crashes, faults, per_proc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use crate::world::{ProcBody, World};

    fn sample_history() -> (History, usize) {
        let mut w = World::builder(2).build();
        let r = w.reg("flag", 0u8);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u8>> = vec![
            Box::new(move |ctx| {
                ctx.annotate("phase", vec![1]);
                r0.write_tagged(ctx, 1, 7)?;
                Ok(0)
            }),
            Box::new(move |ctx| r1.read(ctx)),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        (rep.history.unwrap(), 2)
    }

    #[test]
    fn render_produces_columns_and_ops() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            reg_names: vec!["flag".into()],
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("p0"));
        assert!(text.contains("p1"));
        assert!(text.contains("W flag #7"));
        assert!(text.contains("R flag"));
        assert!(text.contains("⟨phase 1⟩"));
    }

    #[test]
    fn render_respects_step_range_and_note_filter() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            steps: Some((0, 1)),
            notes: false,
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("W r0"));
        assert!(!text.contains("R r0"), "step 1 excluded:\n{text}");
        assert!(!text.contains("⟨"));
    }

    #[test]
    fn summary_counts() {
        let (h, n) = sample_history();
        let s = summary(&h, n);
        assert!(s.contains("1 reads, 1 writes, 0 crashes"), "{s}");
    }

    #[test]
    fn long_cells_are_truncated() {
        use crate::history::{Annotation, Event};
        let h = History::from_events(vec![Event::Note {
            step: 0,
            pid: 0,
            note: Annotation::new("averyveryverylonglabelthatwontfit", vec![1, 2, 3]),
        }]);
        let text = render(&h, 1, &TraceOptions::default());
        assert!(text.contains('…'));
    }
}
