//! Human-readable rendering of recorded histories.
//!
//! Lockstep runs record a [`History`]; this module renders it as a timeline
//! with one column per process — the format you want in front of you when a
//! property checker reports a violation at step 4711.
//!
//! ```text
//! step  p0                   p1
//! ────  ───────────────────  ───────────────────
//!    0  W V_0 #1
//!       ⟨snap:upd:start 1⟩
//!    1                       R V_0
//! ```
//!
//! [`render`] shows every recorded event (register granularity).
//! [`render_unified`] is the zoomed-out view: protocol **phase spans**
//! from the metrics plane (`round(r)`/`scan`/`write`/`coin`) merged with
//! **fault and crash events** from the history into one timeline — what
//! the chaos example prints to explain a run.

use std::fmt::Write as _;

use crate::history::{Event, History, OpKind};
use crate::metrics::Telemetry;

/// Options for [`render`].
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Register names (indexed by register id); missing ids print as `r<id>`.
    pub reg_names: Vec<String>,
    /// Only render steps in this range (inclusive start, exclusive end).
    pub steps: Option<(u64, u64)>,
    /// Include annotation (note) lines.
    pub notes: bool,
    /// Column width per process.
    pub width: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            reg_names: Vec::new(),
            steps: None,
            notes: true,
            width: 22,
        }
    }
}

impl TraceOptions {
    fn reg(&self, id: usize) -> String {
        self.reg_names
            .get(id)
            .cloned()
            .unwrap_or_else(|| format!("r{id}"))
    }
}

/// Renders a history as a per-process timeline.
pub fn render(history: &History, n: usize, opts: &TraceOptions) -> String {
    let mut out = String::new();
    let w = opts.width;
    push_header(&mut out, n, w);

    for ev in history.events() {
        let step = ev.step();
        if let Some((lo, hi)) = opts.steps {
            if step < lo || step >= hi {
                continue;
            }
        }
        let (pid, cell, show_step) = match ev {
            Event::Op {
                pid, kind, reg, tag, ..
            } => {
                let k = match kind {
                    OpKind::Read => "R",
                    OpKind::Write => "W",
                };
                let t = if *tag != 0 {
                    format!(" #{tag}")
                } else {
                    String::new()
                };
                (*pid, format!("{k} {}{t}", opts.reg(*reg)), true)
            }
            Event::Note { pid, note, .. } => {
                if !opts.notes {
                    continue;
                }
                let data = note
                    .data
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let text = if data.is_empty() {
                    format!("⟨{}⟩", note.label)
                } else {
                    format!("⟨{} {}⟩", note.label, data)
                };
                (*pid, text, false)
            }
            Event::Crash { pid, .. } => (*pid, "☠ CRASHED".to_string(), true),
            Event::Fault { pid, kind, .. } => (*pid, format!("⚡ {kind}"), true),
        };
        push_row(&mut out, step, show_step, pid, &cell, n, w);
    }
    out
}

/// Writes the column header shared by [`render`] and [`render_unified`].
fn push_header(out: &mut String, n: usize, w: usize) {
    let _ = write!(out, "{:>6}  ", "step");
    for p in 0..n {
        let _ = write!(out, "{:<w$}", format!("p{p}"), w = w);
    }
    out.push('\n');
    let _ = write!(out, "{:─>6}  ", "");
    for _ in 0..n {
        let _ = write!(out, "{:─<w$}", "", w = w);
    }
    out.push('\n');
}

/// Writes one timeline row: `cell` in process `pid`'s column.
fn push_row(out: &mut String, step: u64, show_step: bool, pid: usize, cell: &str, n: usize, w: usize) {
    if show_step {
        let _ = write!(out, "{step:>6}  ");
    } else {
        let _ = write!(out, "{:>6}  ", "");
    }
    for p in 0..n {
        if p == pid {
            let mut c = cell.to_string();
            if c.chars().count() > w.saturating_sub(1) {
                c = c.chars().take(w.saturating_sub(2)).collect::<String>() + "…";
            }
            let _ = write!(out, "{c:<w$}");
        } else {
            let _ = write!(out, "{:<w$}", "", w = w);
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Renders the unified protocol-level timeline: phase spans from the
/// metrics plane merged with fault and crash events from the history,
/// one column per process, sorted by world step.
///
/// `history` may be `None` (free-mode runs record none); the timeline
/// then shows phases only. [`TraceOptions::steps`] windows the output;
/// [`TraceOptions::notes`] is ignored (notes stay in [`render`]).
pub fn render_unified(
    history: Option<&History>,
    telemetry: &Telemetry,
    n: usize,
    opts: &TraceOptions,
) -> String {
    // (step, source-rank, pid, cell, show_step): stable sort on (step,
    // rank) puts same-step fault/crash events before the phase a process
    // entered afterwards.
    let mut rows: Vec<(u64, u8, usize, String, bool)> = Vec::new();
    if let Some(h) = history {
        for ev in h.events() {
            match ev {
                Event::Crash { step, pid } => {
                    rows.push((*step, 0, *pid, "☠ CRASHED".to_string(), true));
                }
                Event::Fault { step, pid, kind } => {
                    rows.push((*step, 0, *pid, format!("⚡ {kind}"), true));
                }
                _ => {}
            }
        }
    }
    for (step, pid, kind) in telemetry.merged_phases() {
        rows.push((step, 1, pid, format!("▶ {kind}"), true));
    }
    rows.sort_by_key(|&(step, rank, pid, _, _)| (step, rank, pid));

    let w = opts.width;
    let mut out = String::new();
    push_header(&mut out, n, w);
    for (step, _, pid, cell, show_step) in rows {
        if let Some((lo, hi)) = opts.steps {
            if step < lo || step >= hi {
                continue;
            }
        }
        push_row(&mut out, step, show_step, pid, &cell, n, w);
    }
    out
}

/// One-line statistics summary of a history.
pub fn summary(history: &History, n: usize) -> String {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut per_proc = vec![0u64; n];
    let mut crashes = 0u64;
    let mut faults = 0u64;
    for ev in history.events() {
        match ev {
            Event::Op { pid, kind, .. } => {
                match kind {
                    OpKind::Read => reads += 1,
                    OpKind::Write => writes += 1,
                }
                if *pid < n {
                    per_proc[*pid] += 1;
                }
            }
            Event::Crash { .. } => crashes += 1,
            Event::Fault { .. } => faults += 1,
            Event::Note { .. } => {}
        }
    }
    format!(
        "{} reads, {} writes, {} crashes, {} faults; ops per process: {:?}",
        reads, writes, crashes, faults, per_proc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use crate::world::{ProcBody, World};

    fn sample_history() -> (History, usize) {
        let mut w = World::builder(2).build();
        let r = w.reg("flag", 0u8);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u8>> = vec![
            Box::new(move |ctx| {
                ctx.annotate("phase", vec![1]);
                r0.write_tagged(ctx, 1, 7)?;
                Ok(0)
            }),
            Box::new(move |ctx| r1.read(ctx)),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        (rep.history.unwrap(), 2)
    }

    #[test]
    fn render_produces_columns_and_ops() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            reg_names: vec!["flag".into()],
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("p0"));
        assert!(text.contains("p1"));
        assert!(text.contains("W flag #7"));
        assert!(text.contains("R flag"));
        assert!(text.contains("⟨phase 1⟩"));
    }

    #[test]
    fn render_respects_step_range_and_note_filter() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            steps: Some((0, 1)),
            notes: false,
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("W r0"));
        assert!(!text.contains("R r0"), "step 1 excluded:\n{text}");
        assert!(!text.contains("⟨"));
    }

    #[test]
    fn summary_counts() {
        let (h, n) = sample_history();
        let s = summary(&h, n);
        assert!(s.contains("1 reads, 1 writes, 0 crashes"), "{s}");
    }

    #[test]
    fn unified_timeline_merges_phases_and_faults() {
        use crate::history::{Event, FaultKind};
        use crate::metrics::{MetricsRegistry, PhaseKind};
        let h = History::from_events(vec![
            Event::Fault {
                step: 5,
                pid: 1,
                kind: FaultKind::StallStart,
            },
            Event::Crash { step: 9, pid: 0 },
        ]);
        let reg = MetricsRegistry::new(2);
        reg.proc(0).phase(2, PhaseKind::Round(1));
        reg.proc(0).phase(3, PhaseKind::Scan);
        reg.proc(1).phase(7, PhaseKind::Coin);
        let t = reg.snapshot();
        let text = render_unified(Some(&h), &t, 2, &TraceOptions::default());
        assert!(text.contains("▶ round(1)"), "{text}");
        assert!(text.contains("▶ scan"));
        assert!(text.contains("▶ coin"));
        assert!(text.contains("⚡ stall:start"));
        assert!(text.contains("☠ CRASHED"));
        // Step order: round(1)@2 before stall@5 before coin@7 before crash@9.
        let round_at = text.find("round(1)").unwrap();
        let stall_at = text.find("stall:start").unwrap();
        let coin_at = text.find("coin").unwrap();
        let crash_at = text.find("CRASHED").unwrap();
        assert!(round_at < stall_at && stall_at < coin_at && coin_at < crash_at);
        // Without a history (free mode), phases alone still render.
        let text2 = render_unified(None, &t, 2, &TraceOptions::default());
        assert!(text2.contains("▶ scan"));
        assert!(!text2.contains("CRASHED"));
    }

    #[test]
    fn long_cells_are_truncated() {
        use crate::history::{Annotation, Event};
        let h = History::from_events(vec![Event::Note {
            step: 0,
            pid: 0,
            note: Annotation::new("averyveryverylonglabelthatwontfit", vec![1, 2, 3]),
        }]);
        let text = render(&h, 1, &TraceOptions::default());
        assert!(text.contains('…'));
    }
}
