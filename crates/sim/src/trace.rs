//! Human-readable rendering of recorded histories.
//!
//! Lockstep runs record a [`History`]; this module renders it as a timeline
//! with one column per process — the format you want in front of you when a
//! property checker reports a violation at step 4711.
//!
//! ```text
//! step  p0                   p1
//! ────  ───────────────────  ───────────────────
//!    0  W V_0 #1
//!       ⟨snap:upd:start 1⟩
//!    1                       R V_0
//! ```
//!
//! [`render`] shows every recorded event (register granularity).
//! [`render_unified`] is the zoomed-out view: protocol **phase spans**
//! from the metrics plane (`round(r)`/`scan`/`write`/`coin`) merged with
//! **fault and crash events** from the history into one timeline — what
//! the chaos example prints to explain a run.
//! [`to_chrome_trace`] exports the same material — plus the flight
//! recorder's ring events — as Chrome Trace Event JSON, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use std::fmt::Write as _;

use crate::history::{Event, History, OpKind};
use crate::json::Value;
use crate::metrics::Telemetry;
use crate::tracing::{fault_label, EventKind, FlightLog};

/// Options for [`render`].
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Register names (indexed by register id); missing ids print as `r<id>`.
    pub reg_names: Vec<String>,
    /// Only render steps in this range (inclusive start, exclusive end).
    pub steps: Option<(u64, u64)>,
    /// Include annotation (note) lines.
    pub notes: bool,
    /// Column width per process.
    pub width: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            reg_names: Vec::new(),
            steps: None,
            notes: true,
            width: 22,
        }
    }
}

impl TraceOptions {
    fn reg(&self, id: usize) -> String {
        self.reg_names
            .get(id)
            .cloned()
            .unwrap_or_else(|| format!("r{id}"))
    }
}

/// Renders a history as a per-process timeline.
pub fn render(history: &History, n: usize, opts: &TraceOptions) -> String {
    let mut out = String::new();
    let w = opts.width;
    push_header(&mut out, n, w);

    for ev in history.events() {
        let step = ev.step();
        if let Some((lo, hi)) = opts.steps {
            if step < lo || step >= hi {
                continue;
            }
        }
        let (pid, cell, show_step) = match ev {
            Event::Op {
                pid,
                kind,
                reg,
                tag,
                ..
            } => {
                if *kind == OpKind::Fence {
                    // Fences target the FENCE_REG sentinel, not a real
                    // register — never index it into the name table.
                    (*pid, "F fence".to_string(), true)
                } else {
                    let k = match kind {
                        OpKind::Read => "R",
                        OpKind::Write => "W",
                        OpKind::Swap => "X",
                        OpKind::Fence => unreachable!(),
                    };
                    let t = if *tag != 0 {
                        format!(" #{tag}")
                    } else {
                        String::new()
                    };
                    (*pid, format!("{k} {}{t}", opts.reg(*reg)), true)
                }
            }
            Event::Note { pid, note, .. } => {
                if !opts.notes {
                    continue;
                }
                let data = note
                    .data
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let text = if data.is_empty() {
                    format!("⟨{}⟩", note.label)
                } else {
                    format!("⟨{} {}⟩", note.label, data)
                };
                (*pid, text, false)
            }
            Event::Crash { pid, .. } => (*pid, "☠ CRASHED".to_string(), true),
            Event::Fault { pid, kind, .. } => (*pid, format!("⚡ {kind}"), true),
            Event::Flush { pid, reg, .. } => (*pid, format!("⇣ {}", opts.reg(*reg)), true),
        };
        push_row(&mut out, step, show_step, pid, &cell, n, w);
    }
    out
}

/// Writes the column header shared by [`render`] and [`render_unified`].
fn push_header(out: &mut String, n: usize, w: usize) {
    let _ = write!(out, "{:>6}  ", "step");
    for p in 0..n {
        let _ = write!(out, "{:<w$}", format!("p{p}"), w = w);
    }
    out.push('\n');
    let _ = write!(out, "{:─>6}  ", "");
    for _ in 0..n {
        let _ = write!(out, "{:─<w$}", "", w = w);
    }
    out.push('\n');
}

/// Writes one timeline row: `cell` in process `pid`'s column.
fn push_row(
    out: &mut String,
    step: u64,
    show_step: bool,
    pid: usize,
    cell: &str,
    n: usize,
    w: usize,
) {
    if show_step {
        let _ = write!(out, "{step:>6}  ");
    } else {
        let _ = write!(out, "{:>6}  ", "");
    }
    for p in 0..n {
        if p == pid {
            let mut c = cell.to_string();
            if c.chars().count() > w.saturating_sub(1) {
                c = c.chars().take(w.saturating_sub(2)).collect::<String>() + "…";
            }
            let _ = write!(out, "{c:<w$}");
        } else {
            let _ = write!(out, "{:<w$}", "", w = w);
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Renders the unified protocol-level timeline: phase spans from the
/// metrics plane merged with fault and crash events from the history,
/// one column per process, sorted by world step.
///
/// `history` may be `None` (free-mode runs record none); the timeline
/// then shows phases only. [`TraceOptions::steps`] windows the output;
/// [`TraceOptions::notes`] is ignored (notes stay in [`render`]).
pub fn render_unified(
    history: Option<&History>,
    telemetry: &Telemetry,
    n: usize,
    opts: &TraceOptions,
) -> String {
    // (step, source-rank, pid, cell, show_step): stable sort on (step,
    // rank) puts same-step fault/crash events before the phase a process
    // entered afterwards.
    let mut rows: Vec<(u64, u8, usize, String, bool)> = Vec::new();
    if let Some(h) = history {
        for ev in h.events() {
            match ev {
                Event::Crash { step, pid } => {
                    rows.push((*step, 0, *pid, "☠ CRASHED".to_string(), true));
                }
                Event::Fault { step, pid, kind } => {
                    rows.push((*step, 0, *pid, format!("⚡ {kind}"), true));
                }
                _ => {}
            }
        }
    }
    for (step, pid, kind) in telemetry.merged_phases() {
        rows.push((step, 1, pid, format!("▶ {kind}"), true));
    }
    rows.sort_by_key(|&(step, rank, pid, _, _)| (step, rank, pid));

    let w = opts.width;
    let mut out = String::new();
    push_header(&mut out, n, w);
    for (step, _, pid, cell, show_step) in rows {
        if let Some((lo, hi)) = opts.steps {
            if step < lo || step >= hi {
                continue;
            }
        }
        push_row(&mut out, step, show_step, pid, &cell, n, w);
    }
    out
}

/// Converts nanoseconds to the microsecond `ts` scale Chrome traces use.
fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

/// One Trace Event object. `extra` carries the per-phase fields
/// (`"dur"` for complete events, `"s"` for instant scope).
fn trace_ev(
    name: &str,
    ph: &str,
    ts_us: f64,
    tid: usize,
    args: Value,
    extra: Vec<(&str, Value)>,
) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("name", name.into()),
        ("ph", ph.into()),
        ("ts", ts_us.into()),
        ("pid", 0u64.into()),
        ("tid", tid.into()),
    ];
    fields.extend(extra);
    fields.push(("args", args));
    Value::obj(fields)
}

/// Exports a run's observability planes as **Chrome Trace Event JSON**:
/// one browser-process (`pid` 0) with one thread lane per simulated
/// process, loadable in Perfetto or `chrome://tracing`.
///
/// Three sources merge onto one monotonic-nanosecond timeline (rendered
/// in microseconds, the Trace Event `ts` unit):
///
/// * **Phase spans** from the metrics plane become `"X"` (complete)
///   events — each span runs until the same process's next phase, the
///   last until the latest stamp anywhere in the run.
/// * **Flight-recorder ring events** become `"i"` (instant) events,
///   with the world step and the event arg in `args`. Fault events are
///   renamed by [`fault_label`].
/// * **History crash/fault events** (lockstep runs) carry only step
///   stamps; their nanos are interpolated from the dual-stamped events
///   around them — the latest phase or ring stamp at or before their
///   step (0 if none precedes).
///
/// `history` may be `None` (free mode) and `flight` may be empty
/// (tracing disabled); the export degrades to whatever sources exist.
pub fn to_chrome_trace(
    flight: &FlightLog,
    telemetry: &Telemetry,
    history: Option<&History>,
    n: usize,
) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Metadata: name the synthetic process and one thread lane per pid.
    events.push(trace_ev(
        "process_name",
        "M",
        0.0,
        0,
        Value::obj(vec![("name", "bprc".into())]),
        vec![],
    ));
    for pid in 0..n {
        events.push(trace_ev(
            "thread_name",
            "M",
            0.0,
            pid,
            Value::obj(vec![("name", format!("p{pid}").into())]),
            vec![],
        ));
    }

    // The step↔nanos correlation table from every dual-stamped event,
    // and the run's end stamp (closes each lane's last open phase).
    let mut stamps: Vec<(u64, u64)> = Vec::new();
    let mut end_nanos = 0u64;
    for pid in 0..n {
        for e in telemetry.phases(pid) {
            stamps.push((e.step, e.nanos));
            end_nanos = end_nanos.max(e.nanos);
        }
        for e in flight.events(pid) {
            stamps.push((e.step, e.nanos));
            end_nanos = end_nanos.max(e.nanos);
        }
    }
    stamps.sort_unstable();

    // Phase spans, per lane: each closes at the next phase's stamp.
    for pid in 0..n {
        let phases = telemetry.phases(pid);
        for (i, e) in phases.iter().enumerate() {
            let close = phases
                .get(i + 1)
                .map(|next| next.nanos)
                .unwrap_or(end_nanos)
                .max(e.nanos);
            events.push(trace_ev(
                &e.kind.to_string(),
                "X",
                micros(e.nanos),
                pid,
                Value::obj(vec![("step", e.step.into())]),
                vec![("dur", micros(close - e.nanos).into())],
            ));
        }
    }

    // Ring events: instants, faults decoded to their label.
    for pid in 0..n {
        for e in flight.events(pid) {
            let name = match e.kind {
                EventKind::Fault => fault_label(e.arg).to_string(),
                k => k.to_string(),
            };
            events.push(trace_ev(
                &name,
                "i",
                micros(e.nanos),
                pid,
                Value::obj(vec![("step", e.step.into()), ("arg", e.arg.into())]),
                vec![("s", "t".into())],
            ));
        }
    }

    // History crash/fault instants: step-stamped only, so interpolate
    // nanos from the dual-stamped events at or before the same step.
    if let Some(h) = history {
        let nanos_at = |step: u64| -> u64 {
            match stamps.partition_point(|&(s, _)| s <= step) {
                0 => 0,
                i => stamps[i - 1].1,
            }
        };
        for ev in h.events() {
            let (step, pid, name) = match ev {
                Event::Crash { step, pid } => (*step, *pid, "crash".to_string()),
                Event::Fault { step, pid, kind } => (*step, *pid, kind.to_string()),
                _ => continue,
            };
            events.push(trace_ev(
                &name,
                "i",
                micros(nanos_at(step)),
                pid,
                Value::obj(vec![("step", step.into())]),
                vec![("s", "t".into())],
            ));
        }
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", "ns".into()),
    ])
}

/// One-line statistics summary of a history.
pub fn summary(history: &History, n: usize) -> String {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut per_proc = vec![0u64; n];
    let mut crashes = 0u64;
    let mut faults = 0u64;
    for ev in history.events() {
        match ev {
            Event::Op { pid, kind, .. } => {
                match kind {
                    OpKind::Read => reads += 1,
                    OpKind::Write => writes += 1,
                    // A swap is one gate that both reads and writes.
                    OpKind::Swap => {
                        reads += 1;
                        writes += 1;
                    }
                    OpKind::Fence => {}
                }
                if *pid < n {
                    per_proc[*pid] += 1;
                }
            }
            Event::Crash { .. } => crashes += 1,
            Event::Fault { .. } => faults += 1,
            Event::Note { .. } | Event::Flush { .. } => {}
        }
    }
    format!(
        "{} reads, {} writes, {} crashes, {} faults; ops per process: {:?}",
        reads, writes, crashes, faults, per_proc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use crate::world::{ProcBody, World};

    fn sample_history() -> (History, usize) {
        let mut w = World::builder(2).build();
        let r = w.reg("flag", 0u8);
        let r0 = r.clone();
        let r1 = r.clone();
        let bodies: Vec<ProcBody<u8>> = vec![
            Box::new(move |ctx| {
                ctx.annotate("phase", vec![1]);
                r0.write_tagged(ctx, 1, 7)?;
                Ok(0)
            }),
            Box::new(move |ctx| r1.read(ctx)),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        (rep.history.unwrap(), 2)
    }

    #[test]
    fn render_produces_columns_and_ops() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            reg_names: vec!["flag".into()],
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("p0"));
        assert!(text.contains("p1"));
        assert!(text.contains("W flag #7"));
        assert!(text.contains("R flag"));
        assert!(text.contains("⟨phase 1⟩"));
    }

    #[test]
    fn render_respects_step_range_and_note_filter() {
        let (h, n) = sample_history();
        let opts = TraceOptions {
            steps: Some((0, 1)),
            notes: false,
            ..Default::default()
        };
        let text = render(&h, n, &opts);
        assert!(text.contains("W r0"));
        assert!(!text.contains("R r0"), "step 1 excluded:\n{text}");
        assert!(!text.contains("⟨"));
    }

    #[test]
    fn summary_counts() {
        let (h, n) = sample_history();
        let s = summary(&h, n);
        assert!(s.contains("1 reads, 1 writes, 0 crashes"), "{s}");
    }

    #[test]
    fn unified_timeline_merges_phases_and_faults() {
        use crate::history::{Event, FaultKind};
        use crate::metrics::{MetricsRegistry, PhaseKind};
        let h = History::from_events(vec![
            Event::Fault {
                step: 5,
                pid: 1,
                kind: FaultKind::StallStart,
            },
            Event::Crash { step: 9, pid: 0 },
        ]);
        let reg = MetricsRegistry::new(2);
        reg.proc(0).phase(2, PhaseKind::Round(1));
        reg.proc(0).phase(3, PhaseKind::Scan);
        reg.proc(1).phase(7, PhaseKind::Coin);
        let t = reg.snapshot();
        let text = render_unified(Some(&h), &t, 2, &TraceOptions::default());
        assert!(text.contains("▶ round(1)"), "{text}");
        assert!(text.contains("▶ scan"));
        assert!(text.contains("▶ coin"));
        assert!(text.contains("⚡ stall:start"));
        assert!(text.contains("☠ CRASHED"));
        // Step order: round(1)@2 before stall@5 before coin@7 before crash@9.
        let round_at = text.find("round(1)").unwrap();
        let stall_at = text.find("stall:start").unwrap();
        let coin_at = text.find("coin").unwrap();
        let crash_at = text.find("CRASHED").unwrap();
        assert!(round_at < stall_at && stall_at < coin_at && coin_at < crash_at);
        // Without a history (free mode), phases alone still render.
        let text2 = render_unified(None, &t, 2, &TraceOptions::default());
        assert!(text2.contains("▶ scan"));
        assert!(!text2.contains("CRASHED"));
    }

    #[test]
    fn chrome_trace_has_the_trace_event_shape() {
        use crate::history::Event;
        use crate::metrics::{MetricsRegistry, PhaseKind};
        use crate::tracing::FlightRecorder;

        let reg = MetricsRegistry::new(2);
        reg.proc(0).phase(2, PhaseKind::Round(1));
        reg.proc(0).phase(5, PhaseKind::Scan);
        reg.proc(1).phase(3, PhaseKind::Coin);
        let rec = FlightRecorder::new(2, 8);
        rec.record(0, 4, EventKind::ScanBegin, 1);
        rec.record(1, 6, EventKind::Fault, 1);
        let h = History::from_events(vec![Event::Crash { step: 9, pid: 1 }]);

        let v = to_chrome_trace(&rec.snapshot(), &reg.snapshot(), Some(&h), 2);
        // Round-trip through the hand-rolled renderer/parser: the export
        // must be valid JSON, not just a valid Value.
        let parsed = crate::json::parse(&v.render()).expect("valid JSON");
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(|u| u.as_str()),
            Some("ns")
        );
        let evs = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!evs.is_empty());
        let mut complete = 0;
        let mut instants = 0;
        for e in evs {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
            assert!(e.get("name").and_then(|x| x.as_str()).is_some());
            assert!(e.get("ts").and_then(|x| x.as_num()).is_some());
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            match ph {
                "X" => {
                    complete += 1;
                    assert!(e.get("dur").and_then(|d| d.as_num()).is_some());
                }
                "i" => {
                    instants += 1;
                    assert!(e.get("args").and_then(|a| a.get("step")).is_some());
                }
                "M" => {}
                other => panic!("unexpected phase type {other}"),
            }
        }
        assert_eq!(complete, 3, "one span per phase event");
        assert_eq!(instants, 3, "two ring events + one history crash");
        // The fault ring event was decoded to its label.
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(|x| x.as_str()))
            .collect();
        assert!(names.contains(&"stall:start"), "{names:?}");
        assert!(names.contains(&"crash"));
        assert!(names.contains(&"scan_begin"));
    }

    #[test]
    fn chrome_trace_interpolates_history_stamps_from_dual_stamped_events() {
        use crate::history::Event;
        use crate::metrics::{MetricsRegistry, PhaseKind};
        use crate::tracing::FlightRecorder;

        let reg = MetricsRegistry::new(1);
        reg.proc(0).phase(2, PhaseKind::Scan);
        let t = reg.snapshot();
        let phase_nanos = t.phases(0)[0].nanos;
        // Crash at step 7 (after the phase at step 2): its ts must be the
        // phase's nanos stamp, not 0.
        let h = History::from_events(vec![
            Event::Crash { step: 7, pid: 0 },
            Event::Crash { step: 1, pid: 0 },
        ]);
        let empty = FlightRecorder::new(1, 0).snapshot();
        let v = to_chrome_trace(&empty, &t, Some(&h), 1);
        let evs = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let crash_ts: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("name").and_then(|x| x.as_str()) == Some("crash"))
            .map(|e| e.get("ts").and_then(|x| x.as_num()).unwrap())
            .collect();
        assert_eq!(crash_ts.len(), 2);
        assert_eq!(crash_ts[0], phase_nanos as f64 / 1_000.0);
        assert_eq!(crash_ts[1], 0.0, "no stamp at or before step 1");
    }

    #[test]
    fn unified_timeline_windows_steps() {
        use crate::metrics::{MetricsRegistry, PhaseKind};
        let reg = MetricsRegistry::new(1);
        reg.proc(0).phase(1, PhaseKind::Scan);
        reg.proc(0).phase(8, PhaseKind::Coin);
        let t = reg.snapshot();
        let opts = TraceOptions {
            steps: Some((0, 5)),
            ..Default::default()
        };
        let text = render_unified(None, &t, 1, &opts);
        assert!(text.contains("▶ scan"), "{text}");
        assert!(!text.contains("▶ coin"), "step 8 windowed out:\n{text}");
    }

    #[test]
    fn long_cells_are_truncated() {
        use crate::history::{Annotation, Event};
        let h = History::from_events(vec![Event::Note {
            step: 0,
            pid: 0,
            note: Annotation::new("averyveryverylonglabelthatwontfit", vec![1, 2, 3]),
        }]);
        let text = render(&h, 1, &TraceOptions::default());
        assert!(text.contains('…'));
    }
}
