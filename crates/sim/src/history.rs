//! Recorded execution histories.
//!
//! In [`Mode::Lockstep`](crate::world::Mode::Lockstep) the world records one
//! [`Event`] per shared-memory access, in the (deterministic) order the
//! scheduler granted them, plus any [`Annotation`]s pushed by higher layers.
//! The snapshot crate uses annotations to mark scan/update intervals so its
//! offline checkers can verify the paper's properties P1–P3 against the
//! actual interleaving.

use std::fmt;

/// Identifier of a register within a [`World`](crate::world::World).
pub type RegId = usize;

/// The kind of a shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An atomic read of a register.
    Read,
    /// An atomic write of a register.
    Write,
    /// A store-buffer fence ([`Ctx::fence`](crate::world::Ctx::fence)):
    /// drains the caller's own buffer as one scheduled gate. Only recorded
    /// under a weak [`WeakMode`](crate::weakmem::WeakMode); the register id
    /// it carries is the [`FENCE_REG`](crate::weakmem::FENCE_REG) sentinel.
    Fence,
    /// An atomic swap ([`Reg::swap`](crate::reg::Reg::swap)): exchanges the
    /// register's value and returns the previous one as a single scheduled
    /// gate. Counts as both a read and a write in the telemetry plane.
    Swap,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
            OpKind::Fence => write!(f, "fence"),
            OpKind::Swap => write!(f, "swap"),
        }
    }
}

/// The kind of an injected fault event (see the `faults` module).
///
/// Crash decisions keep their dedicated [`Event::Crash`] variant (they
/// predate the chaos subsystem); everything the fault-injection layer adds
/// on top is recorded as an [`Event::Fault`] with one of these kinds, so a
/// replayed history explains *why* a process stopped moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A stall window opened: the process is withheld from scheduling
    /// until the window closes (or no other process can run).
    StallStart,
    /// A stall window closed: the process is eligible again.
    StallEnd,
    /// A panic was injected; the process unwinds at its next gate.
    PanicInjected,
    /// The process exhausted its step allowance and was crashed by the
    /// fault plan (starvation made permanent).
    Starved,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StallStart => write!(f, "stall:start"),
            FaultKind::StallEnd => write!(f, "stall:end"),
            FaultKind::PanicInjected => write!(f, "panic:injected"),
            FaultKind::Starved => write!(f, "starved"),
        }
    }
}

/// A free-form marker pushed by protocol layers between memory accesses.
///
/// The `label` identifies the marker type to whoever wrote it (e.g.
/// `"scan:start"`); `data` carries small integers such as sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Marker type, chosen by the layer that records it.
    pub label: &'static str,
    /// Marker payload.
    pub data: Vec<u64>,
}

impl Annotation {
    /// Creates an annotation with the given label and payload.
    pub fn new(label: &'static str, data: Vec<u64>) -> Self {
        Annotation { label, data }
    }
}

/// One entry of a recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A granted shared-memory access.
    Op {
        /// Global step index (0-based, dense over granted accesses).
        step: u64,
        /// The acting process.
        pid: usize,
        /// Read or write.
        kind: OpKind,
        /// Which register was accessed.
        reg: RegId,
        /// Caller-supplied tag (e.g. a hidden sequence number); 0 if unused.
        tag: u64,
    },
    /// A marker recorded by a protocol layer (does not consume a step).
    Note {
        /// Value of the global step counter when the note was recorded.
        step: u64,
        /// The annotating process.
        pid: usize,
        /// The marker itself.
        note: Annotation,
    },
    /// The scheduler crashed a process.
    Crash {
        /// Value of the global step counter at the crash.
        step: u64,
        /// The crashed process.
        pid: usize,
    },
    /// A fault-injection event (stall window edge, injected panic,
    /// starvation crash) recorded by the chaos subsystem.
    Fault {
        /// Value of the global step counter when the fault was recorded.
        step: u64,
        /// The affected process.
        pid: usize,
        /// What kind of fault it was.
        kind: FaultKind,
    },
    /// A buffered store reached shared memory (weak-memory modes only):
    /// either an explicit [`Decision::Flush`](crate::sched::Decision), a
    /// fence drain, or the deterministic end-of-run drain. Like crashes,
    /// flushes do not consume a step.
    Flush {
        /// Value of the global step counter at the flush.
        step: u64,
        /// The process whose buffer drained the store.
        pid: usize,
        /// The register the store landed in.
        reg: RegId,
    },
}

impl Event {
    /// The global step counter value at which this event was recorded.
    pub fn step(&self) -> u64 {
        match self {
            Event::Op { step, .. }
            | Event::Note { step, .. }
            | Event::Crash { step, .. }
            | Event::Fault { step, .. }
            | Event::Flush { step, .. } => *step,
        }
    }

    /// The process this event belongs to.
    pub fn pid(&self) -> usize {
        match self {
            Event::Op { pid, .. }
            | Event::Note { pid, .. }
            | Event::Crash { pid, .. }
            | Event::Fault { pid, .. }
            | Event::Flush { pid, .. } => *pid,
        }
    }
}

/// A totally ordered record of everything that happened in a lockstep run.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a history from pre-recorded events (for checker tests and
    /// external tools; worlds record their own histories during runs).
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// Appends an event (crate-internal; the world does this).
    pub(crate) fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events (ops + notes + crashes).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the notes with a given label, in order.
    pub fn notes_labelled<'a>(
        &'a self,
        label: &'static str,
    ) -> impl Iterator<Item = (u64, usize, &'a Annotation)> + 'a {
        self.events.iter().filter_map(move |e| match e {
            Event::Note { step, pid, note } if note.label == label => Some((*step, *pid, note)),
            _ => None,
        })
    }

    /// Iterates over granted memory operations, in order.
    pub fn ops(&self) -> impl Iterator<Item = (u64, usize, OpKind, RegId, u64)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Op {
                step,
                pid,
                kind,
                reg,
                tag,
            } => Some((*step, *pid, *kind, *reg, *tag)),
            _ => None,
        })
    }

    /// Number of granted memory operations.
    pub fn op_count(&self) -> usize {
        self.ops().count()
    }

    /// Iterates over recorded fault-injection events, in order.
    pub fn faults(&self) -> impl Iterator<Item = (u64, usize, FaultKind)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Fault { step, pid, kind } => Some((*step, *pid, *kind)),
            _ => None,
        })
    }

    /// Iterates over scheduler crash events, in order.
    pub fn crashes(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Crash { step, pid } => Some((*step, *pid)),
            _ => None,
        })
    }

    /// Iterates over store-buffer flush events, in order (empty under SC).
    pub fn flushes(&self) -> impl Iterator<Item = (u64, usize, RegId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Flush { step, pid, reg } => Some((*step, *pid, *reg)),
            _ => None,
        })
    }

    /// Serializes the history as JSONL: one JSON object per event, in
    /// execution order, discriminated by a `"type"` key (`"op"`,
    /// `"note"`, `"crash"`, `"fault"`). Pairs with
    /// [`Telemetry::to_jsonl`](crate::metrics::Telemetry::to_jsonl) for
    /// structured run export.
    pub fn to_jsonl(&self) -> String {
        use crate::json::Value;
        let mut out = String::new();
        for e in &self.events {
            let v = match e {
                Event::Op {
                    step,
                    pid,
                    kind,
                    reg,
                    tag,
                } => Value::obj(vec![
                    ("type", "op".into()),
                    ("step", (*step).into()),
                    ("pid", (*pid).into()),
                    ("kind", kind.to_string().into()),
                    ("reg", (*reg).into()),
                    ("tag", (*tag).into()),
                ]),
                Event::Note { step, pid, note } => Value::obj(vec![
                    ("type", "note".into()),
                    ("step", (*step).into()),
                    ("pid", (*pid).into()),
                    ("label", note.label.into()),
                    (
                        "data",
                        Value::Arr(note.data.iter().map(|&d| d.into()).collect()),
                    ),
                ]),
                Event::Crash { step, pid } => Value::obj(vec![
                    ("type", "crash".into()),
                    ("step", (*step).into()),
                    ("pid", (*pid).into()),
                ]),
                Event::Fault { step, pid, kind } => Value::obj(vec![
                    ("type", "fault".into()),
                    ("step", (*step).into()),
                    ("pid", (*pid).into()),
                    ("kind", kind.to_string().into()),
                ]),
                Event::Flush { step, pid, reg } => Value::obj(vec![
                    ("type", "flush".into()),
                    ("step", (*step).into()),
                    ("pid", (*pid).into()),
                    ("reg", (*reg).into()),
                ]),
            };
            out.push_str(&v.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut h = History::new();
        assert!(h.is_empty());
        h.push(Event::Op {
            step: 0,
            pid: 1,
            kind: OpKind::Write,
            reg: 3,
            tag: 9,
        });
        h.push(Event::Note {
            step: 1,
            pid: 1,
            note: Annotation::new("scan:start", vec![]),
        });
        h.push(Event::Note {
            step: 1,
            pid: 2,
            note: Annotation::new("scan:end", vec![5]),
        });
        assert_eq!(h.len(), 3);
        assert_eq!(h.op_count(), 1);
        let starts: Vec<_> = h.notes_labelled("scan:start").collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(starts[0].1, 1);
        let ends: Vec<_> = h.notes_labelled("scan:end").collect();
        assert_eq!(ends[0].2.data, vec![5]);
    }

    #[test]
    fn event_accessors() {
        let e = Event::Crash { step: 17, pid: 4 };
        assert_eq!(e.step(), 17);
        assert_eq!(e.pid(), 4);
        let o = Event::Op {
            step: 2,
            pid: 0,
            kind: OpKind::Read,
            reg: 0,
            tag: 0,
        };
        assert_eq!(o.step(), 2);
        assert_eq!(o.pid(), 0);
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write.to_string(), "write");
    }

    #[test]
    fn jsonl_has_one_parsable_line_per_event() {
        let h = History::from_events(vec![
            Event::Op {
                step: 0,
                pid: 1,
                kind: OpKind::Write,
                reg: 3,
                tag: 9,
            },
            Event::Note {
                step: 1,
                pid: 1,
                note: Annotation::new("scan:start", vec![2, 4]),
            },
            Event::Crash { step: 2, pid: 0 },
            Event::Fault {
                step: 3,
                pid: 2,
                kind: FaultKind::StallStart,
            },
        ]);
        let jsonl = h.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("op"));
        assert_eq!(first.get("tag").unwrap().as_num(), Some(9.0));
        let note = crate::json::parse(lines[1]).unwrap();
        assert_eq!(note.get("data").unwrap().as_arr().unwrap().len(), 2);
        let fault = crate::json::parse(lines[3]).unwrap();
        assert_eq!(fault.get("kind").unwrap().as_str(), Some("stall:start"));
    }
}
