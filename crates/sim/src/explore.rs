//! Systematic schedule-space exploration over the lockstep backend.
//!
//! Random strategies *sample* the schedule space; this module *enumerates*
//! it. Exploration is stateless model checking by re-execution: every
//! explored schedule is a fresh [`World`] run driven by a controller
//! strategy that replays a decision prefix recorded on earlier runs, then
//! extends it with the first unexplored choice. A depth-first stack of
//! decision nodes tracks, per quiescent point, which grants have been tried.
//!
//! # Soundness of the sleep-set reduction
//!
//! Exhaustive enumeration of all interleavings explodes; the explorer prunes
//! with *sleep sets* (Godefroid). After exploring choice `t` at a node, `t`
//! is put to sleep for the node's remaining branches; a child node inherits
//! the sleeping ops that are *independent* of the executed choice. A branch
//! whose every enabled process is asleep is provably redundant (covered by
//! an already-explored Mazurkiewicz-equivalent interleaving) and is
//! abandoned, counted in [`ExploreReport::pruned`].
//!
//! The reduction is sound exactly for checkers that cannot distinguish
//! equivalent interleavings, which makes the choice of independence
//! relation ([`ExploreConfig::independence`]) part of the claim:
//!
//! * [`Independence::DistinctRegisters`] — ops are independent when they
//!   target distinct registers or are both reads of the same one. In the
//!   lockstep model a process is runnable iff it is parked at a gate, so
//!   executing one access never enables or disables another — memory
//!   commutativity is the whole relation. Sound for checkers that inspect
//!   **process outputs** (flag principles, consensus agreement/validity):
//!   swapping commuting accesses changes no value any process reads.
//! * [`Independence::ReadsOnly`] — only read/read pairs are independent.
//!   Required for the **note-timestamped interval checkers** (snapshot
//!   P1–P3): an update's `upd:end` annotation rides in the segment after
//!   its store, so two writes to *distinct* value registers, though they
//!   commute as memory operations, order their update intervals in real
//!   time — and P2 verdicts depend on that order. (Concretely: scan reads
//!   `V0`, writer 0 completes, writer 1 completes, scan reads `V1` — the
//!   view `(old0, new1)` is torn iff writer 0 finished *before* writer 1.)
//!   Reads are invisible to the interval checker — they produce no stores
//!   and P3 compares sequence vectors, not timestamps — so read/read
//!   commutation is still sound, and scans keep pruning against each other.
//!
//! A shared caveat: soundness assumes bodies touch shared state only
//! through scheduled accesses (no `peek` inside bodies), which holds for
//! the whole protocol stack.
//!
//! # Faults as decisions
//!
//! With [`ExploreConfig::fault_budget`] > 0 the DFS additionally branches
//! on *crash injections*: at a decision point the adversary may crash a
//! process instead of granting one. Two rules keep the joint
//! schedule × fault space tractable and the reduction sound:
//!
//! * **Canonical crash placement** — a crash performs no memory access, so
//!   crashing `p` anywhere after `p`'s last step is equivalent (to any
//!   checker that does not read crash-event timestamps) to crashing it
//!   immediately after that step. The explorer only branches `Crash(p)`
//!   right after a `Grant(p)`, plus every enabled pid while no grant has
//!   occurred yet — which canonicalizes multi-crash prefixes too.
//! * **Crashes are dependent with everything** — a crash edge never enters
//!   a sleep set, and a node reached through a crash starts with an empty
//!   sleep set: survivors' behavior may depend on the victim's absence, so
//!   no sibling equivalence argument crosses a crash.
//!
//! # Replay artifacts
//!
//! A violating schedule is serialized as a [`DecisionTrace`] — the list of
//! [`TraceStep`] decisions (grants and crash injections), JSON-rendered via
//! [`crate::json`] under schema [`TRACE_SCHEMA`]; grants render as bare pid
//! numbers, so pre-fault trace documents still parse. Replay is a tolerant
//! [`FnStrategy`]: each listed step fires when its pid is runnable (skipped
//! otherwise), and after the trace is exhausted the lowest runnable pid
//! runs — so a *prefix* of a run is a complete, deterministic artifact.
//! [`shrink_trace`] greedily removes decisions — injected crashes included
//! — (suffix first, then interior) while the violation persists, yielding a
//! minimal forcing prefix.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::history::{OpKind, RegId};
use crate::json::Value;
use crate::metrics::{Counter, MetricsRegistry, Telemetry};
use crate::sched::{Decision, FnStrategy, PendingOp, ScheduleView, Strategy};
use crate::tracing::{EventKind, FlightLog, FlightRecorder, Heartbeat, Histogram};
use crate::world::{Mode, ProcBody, RunReport, World};

/// JSON schema tag embedded in every serialized [`DecisionTrace`].
pub const TRACE_SCHEMA: &str = "bprc-trace-v1";

/// Which pairs of pending ops the sleep-set reduction may commute. Pick the
/// relation to match what the checker can observe — see the module docs'
/// soundness discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Independence {
    /// Independent when targeting distinct registers (or both reading the
    /// same one). Maximal pruning; sound for output-inspecting checkers.
    #[default]
    DistinctRegisters,
    /// Independent only when both ops are reads. Required for checkers
    /// that consume note timestamps (snapshot P1–P3), where even writes to
    /// distinct registers order the enclosing operation intervals.
    ReadsOnly,
}

/// Tuning knobs for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum decisions per path; deeper paths are cut and counted in
    /// [`ExploreReport::truncated`]. Keep ≤ ~40 for exhaustive runs.
    pub max_steps: u64,
    /// Safety valve: stop after this many world executions even if the
    /// space is not exhausted.
    pub max_schedules: u64,
    /// Enable the sleep-set partial-order reduction. Turning it off
    /// enumerates every interleaving — useful for cross-checking the
    /// reduction itself.
    pub reduction: bool,
    /// The independence relation the reduction prunes with; must be chosen
    /// to match the checker (see [`Independence`]).
    pub independence: Independence,
    /// Maximum crash decisions injected per schedule. `0` (the default)
    /// explores grants only; `k ≤ n−1` additionally branches on "crash
    /// process p here" at canonical placement points (see the module docs'
    /// fault-as-decision discussion).
    pub fault_budget: u64,
    /// Print a rate-limited progress heartbeat to stderr (schedules/sec,
    /// pruned, faults explored) while the exploration runs. Off by
    /// default; explorations finishing inside the first second stay
    /// silent either way.
    pub progress: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 40,
            max_schedules: 1_000_000,
            reduction: true,
            independence: Independence::DistinctRegisters,
            fault_budget: 0,
            progress: false,
        }
    }
}

/// A violating schedule found by [`explore`], ready to replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The decision prefix that forces the violation.
    pub trace: DecisionTrace,
    /// The checker's description of what went wrong.
    pub description: String,
}

/// What an exploration covered and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Complete (un-truncated, non-redundant) schedules executed and
    /// checked.
    pub schedules: u64,
    /// Branches skipped as redundant by the sleep-set reduction.
    pub pruned: u64,
    /// Paths cut by [`ExploreConfig::max_steps`] (still executed and
    /// checked as prefixes, but the subtree below the cut is abandoned).
    pub truncated: u64,
    /// Whether the bounded space was fully enumerated (no truncation, no
    /// `max_schedules` bail-out, no early stop on a violation).
    pub exhausted: bool,
    /// Deepest decision stack reached.
    pub max_depth: usize,
    /// First violation found, if any (exploration stops on it).
    pub violation: Option<Counterexample>,
    /// Explorer telemetry: `SchedulesExplored` / `SchedulesPruned` /
    /// `SchedulesTruncated` / `FaultsInjected` counters.
    pub telemetry: Telemetry,
    /// Wall-clock time spent exploring.
    pub elapsed_secs: f64,
    /// The [`ExploreConfig::fault_budget`] this exploration ran with.
    pub fault_budget: u64,
    /// Total crash decisions across all counted schedules.
    pub faults_injected: u64,
    /// Counted schedules bucketed by how many crash decisions they carried
    /// (index = crash count; length = `fault_budget + 1`).
    pub schedules_by_faults: Vec<u64>,
    /// Decision-path lengths of executed schedules (complete ones and
    /// truncated prefixes), power-of-two bucketed.
    pub schedule_lengths: Histogram,
}

impl ExploreReport {
    /// Executed schedules per wall-clock second. Always finite: a
    /// zero/denormal elapsed duration (sub-microsecond explorations exist)
    /// clamps to a nanosecond instead of dividing through to `inf`/`NaN`.
    pub fn schedules_per_sec(&self) -> f64 {
        let total = (self.schedules + self.truncated) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let rate = total / self.elapsed_secs.max(1e-9);
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    }
}

/// One decision of a serialized schedule: grant a process its pending
/// access, crash it, or land one of its buffered stores (weak-memory
/// modes).
///
/// In the JSON form a grant renders as a bare pid number — so every
/// pre-fault `bprc-trace-v1` document still parses, as an all-grant trace —
/// a crash renders as the object `{"crash": pid}`, and a flush as
/// `{"flush": pid, "reg": reg}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStep {
    /// Grant this pid its pending operation.
    Grant(usize),
    /// Crash this pid (it never takes another step).
    Crash(usize),
    /// Make this pid's oldest buffered store to `reg` globally visible.
    /// Nobody advances — flushes interleave *between* scheduled steps.
    Flush {
        /// The process whose store buffer is drained by one entry.
        pid: usize,
        /// The register the landing store targets.
        reg: RegId,
    },
}

impl TraceStep {
    /// The pid this step targets.
    pub fn pid(self) -> usize {
        match self {
            TraceStep::Grant(p) | TraceStep::Crash(p) | TraceStep::Flush { pid: p, .. } => p,
        }
    }

    /// True for crash decisions.
    pub fn is_crash(self) -> bool {
        matches!(self, TraceStep::Crash(_))
    }

    /// True for store-buffer flush decisions.
    pub fn is_flush(self) -> bool {
        matches!(self, TraceStep::Flush { .. })
    }

    /// Whether this step may legally be issued against `view`: grants and
    /// crashes need their pid runnable, flushes need their (pid, reg) entry
    /// currently flushable under the world's buffer discipline.
    fn legal(self, view: &ScheduleView<'_>) -> bool {
        match self {
            TraceStep::Grant(p) | TraceStep::Crash(p) => view.runnable.contains(&p),
            TraceStep::Flush { pid, reg } => view.flushable.contains(&(pid, reg)),
        }
    }

    /// The [`Decision`] this step issues.
    fn decision(self) -> Decision {
        match self {
            TraceStep::Grant(pid) => Decision::Grant(pid),
            TraceStep::Crash(pid) => Decision::Crash(pid),
            TraceStep::Flush { pid, reg } => Decision::Flush { pid, reg },
        }
    }
}

/// A serializable schedule: the decisions taken at successive decision
/// points — grants and injected crashes.
///
/// Replay is tolerant: a listed step whose pid is not currently runnable is
/// skipped, and once the list is exhausted the lowest runnable pid is
/// granted — so a *prefix* of a run is a complete deterministic artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTrace {
    /// Number of processes in the world this trace drives.
    pub n: usize,
    /// Decisions in order: grants and crash injections.
    pub decisions: Vec<TraceStep>,
}

impl DecisionTrace {
    /// Serializes to the [`TRACE_SCHEMA`] JSON document. Grants are bare
    /// pid numbers (backward compatible with pre-fault traces); crashes are
    /// `{"crash": pid}` objects.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("schema", Value::from(TRACE_SCHEMA)),
            ("n", Value::from(self.n)),
            (
                "decisions",
                Value::Arr(
                    self.decisions
                        .iter()
                        .map(|&d| match d {
                            TraceStep::Grant(p) => Value::from(p),
                            TraceStep::Crash(p) => Value::obj(vec![("crash", Value::from(p))]),
                            TraceStep::Flush { pid, reg } => Value::obj(vec![
                                ("flush", Value::from(pid)),
                                ("reg", Value::from(reg)),
                            ]),
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a [`TRACE_SCHEMA`] document, validating the schema tag and
    /// that every decision names a pid `< n`. Bare numbers parse as grants,
    /// `{"crash": pid}` objects as crash injections.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == TRACE_SCHEMA => {}
            Some(s) => return Err(format!("schema mismatch: got {s:?}, want {TRACE_SCHEMA:?}")),
            None => return Err("missing schema tag".into()),
        }
        let n = v
            .get("n")
            .and_then(|x| x.as_num())
            .ok_or("missing numeric field 'n'")? as usize;
        if n == 0 {
            return Err("'n' must be positive".into());
        }
        let arr = v
            .get("decisions")
            .and_then(|x| x.as_arr())
            .ok_or("missing array field 'decisions'")?;
        let mut decisions = Vec::with_capacity(arr.len());
        for (i, d) in arr.iter().enumerate() {
            let step = if let Some(pid) = d.as_num() {
                TraceStep::Grant(pid as usize)
            } else if let Some(pid) = d.get("crash").and_then(|x| x.as_num()) {
                TraceStep::Crash(pid as usize)
            } else if let Some(pid) = d.get("flush").and_then(|x| x.as_num()) {
                let reg = d
                    .get("reg")
                    .and_then(|x| x.as_num())
                    .ok_or(format!("decisions[{i}] is a flush without a numeric 'reg'"))?;
                TraceStep::Flush {
                    pid: pid as usize,
                    reg: reg as RegId,
                }
            } else {
                return Err(format!(
                    "decisions[{i}] is neither a pid number, a {{\"crash\": pid}} object, \
                     nor a {{\"flush\": pid, \"reg\": reg}} object"
                ));
            };
            if step.pid() >= n {
                return Err(format!(
                    "decisions[{i}] targets pid {} out of range (n = {n})",
                    step.pid()
                ));
            }
            decisions.push(step);
        }
        Ok(DecisionTrace { n, decisions })
    }

    /// The tolerant replayer: an [`FnStrategy`] that re-executes this trace.
    pub fn strategy(&self) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        self.replayer(None)
    }

    /// Like [`DecisionTrace::strategy`], but also appends every decision it
    /// actually issues (including fallback grants) to `log` — used by
    /// [`run_trace`] to canonicalize traces.
    pub fn recording_strategy(
        &self,
        log: Rc<RefCell<Vec<TraceStep>>>,
    ) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        self.replayer(Some(log))
    }

    fn replayer(
        &self,
        log: Option<Rc<RefCell<Vec<TraceStep>>>>,
    ) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        let decisions = self.decisions.clone();
        let mut idx = 0usize;
        FnStrategy::new(move |view: &ScheduleView<'_>| {
            let mut pick = None;
            while idx < decisions.len() {
                let step = decisions[idx];
                idx += 1;
                if step.legal(view) {
                    pick = Some(step);
                    break;
                }
                // Pid not runnable (finished/crashed/hidden) or flush entry
                // not buffered (already landed/deleted): skip the entry.
            }
            let step = pick.unwrap_or(TraceStep::Grant(view.runnable[0]));
            if let Some(log) = &log {
                log.borrow_mut().push(step);
            }
            step.decision()
        })
    }
}

/// Whether two pending ops of *different* processes commute under the
/// chosen relation (see the module docs for the soundness argument).
fn independent(rel: Independence, a: &PendingOp, b: &PendingOp) -> bool {
    let both_read = a.kind == OpKind::Read && b.kind == OpKind::Read;
    match rel {
        Independence::DistinctRegisters => a.reg != b.reg || both_read,
        Independence::ReadsOnly => both_read,
    }
}

/// One decision point on the DFS stack.
struct Node {
    /// Runnable pids and their pending ops when this node was first reached.
    enabled: Vec<(usize, PendingOp)>,
    /// Sleeping ops: provably redundant here because an equivalent
    /// interleaving already ran them in an explored sibling branch.
    sleep: Vec<(usize, PendingOp)>,
    /// Pids whose grant subtrees are fully explored.
    explored: Vec<usize>,
    /// Crash branches this node may take (canonical placement — computed
    /// from the ancestor path when the node is opened).
    crash_cands: Vec<usize>,
    /// Pids whose crash subtrees are fully explored.
    crash_explored: Vec<usize>,
    /// Flush branches this node may take: the world's flushable set when
    /// the node was opened (always empty under sequential consistency).
    flush_cands: Vec<(usize, RegId)>,
    /// Flush entries whose subtrees are fully explored.
    flush_explored: Vec<(usize, RegId)>,
    /// The decision the current run takes at this node.
    chosen: TraceStep,
}

impl Node {
    fn op_of(&self, pid: usize) -> PendingOp {
        self.enabled
            .iter()
            .find(|&&(p, _)| p == pid)
            .map(|&(_, op)| op)
            .expect("chosen/explored pids come from the enabled set")
    }
}

/// DFS state shared between the driver loop and the controller strategy.
struct Dfs {
    /// A fixed decision prefix replayed verbatim before the DFS stack — the
    /// subtree root for parallel frontier jobs (empty for [`explore`]).
    fixed: Vec<TraceStep>,
    stack: Vec<Node>,
    /// Decision index within the current run (counts `fixed` decisions too).
    depth: usize,
    /// The current run stopped extending the stack (redundant or truncated):
    /// grant arbitrarily (lowest runnable) until the world finishes.
    dead: bool,
    /// The current run was abandoned because every enabled process slept.
    redundant: bool,
    /// The current run hit the step budget.
    truncated: bool,
    /// Branches proven redundant during this run (dead-node abandonment).
    pruned_now: u64,
    max_steps: u64,
    reduction: bool,
    independence: Independence,
    fault_budget: u64,
}

impl Dfs {
    /// Crash decisions on the whole current path (fixed prefix + stack).
    fn faults_on_path(&self) -> u64 {
        self.fixed.iter().filter(|s| s.is_crash()).count() as u64
            + self.stack.iter().filter(|n| n.chosen.is_crash()).count() as u64
    }

    /// The pids whose crash may be branched at the *next* node (canonical
    /// crash placement): a crash has no memory effect, so crashing `p` at
    /// any point after `p`'s last step is Mazurkiewicz-equivalent to
    /// crashing it immediately after that step (or before any step at all).
    /// We therefore only branch `Crash(p)` right after a step *by* `p` — a
    /// `Grant(p)`, or under weak memory a `Flush` of `p`'s buffer (a crash
    /// drops the victim's unflushed stores, so crash-after-flush and
    /// crash-before-flush genuinely differ) — plus every enabled pid while
    /// no such step has happened yet (pure-crash prefixes, which
    /// canonicalize multi-crash-at-start schedules). Sound for checkers
    /// that do not read crash-event *timestamps* — they observe crashes
    /// only through the steps the victim no longer takes — which holds for
    /// every checker in this workspace.
    fn crash_candidates(&self, enabled: &[(usize, PendingOp)]) -> Vec<usize> {
        for step in self
            .stack
            .iter()
            .map(|n| n.chosen)
            .rev()
            .chain(self.fixed.iter().copied().rev())
        {
            match step {
                TraceStep::Grant(p) | TraceStep::Flush { pid: p, .. } => {
                    return enabled
                        .iter()
                        .map(|&(q, _)| q)
                        .filter(|&q| q == p)
                        .collect();
                }
                TraceStep::Crash(_) => {}
            }
        }
        enabled.iter().map(|&(q, _)| q).collect()
    }
}

/// The fair completion used below a truncation cut: drain any buffered
/// stores first, then grant the lowest runnable process. Grants alone
/// would model a scheduler that withholds every flush forever — a total
/// partition even regular registers / weak memory rule out — and checking
/// a truncated prefix against *that* completion reports phantom
/// violations. `flushable` is always empty under SC, so SC decision
/// streams are bit-identical with or without this.
fn fallback(view: &ScheduleView<'_>) -> Decision {
    if let Some(&(pid, reg)) = view.flushable.first() {
        return Decision::Flush { pid, reg };
    }
    Decision::Grant(view.runnable[0])
}

/// The controller: replays the stack prefix, then extends it.
struct Controller {
    st: Rc<RefCell<Dfs>>,
}

impl Strategy for Controller {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        let mut st = self.st.borrow_mut();
        if st.dead {
            return fallback(view);
        }
        if st.depth < st.fixed.len() {
            // Fixed-prefix segment (parallel frontier jobs): issue the
            // prefix decision verbatim.
            let step = st.fixed[st.depth];
            assert!(
                step.legal(view),
                "nondeterministic workload: fixed prefix step {} ({step:?}) is \
                 not legal against runnable {:?} / flushable {:?}",
                st.depth,
                view.runnable,
                view.flushable,
            );
            st.depth += 1;
            return step.decision();
        }
        if st.depth - st.fixed.len() < st.stack.len() {
            // Replay segment: take the recorded choice and check the world
            // is behaving deterministically.
            let depth = st.depth - st.fixed.len();
            let node = &st.stack[depth];
            assert!(
                node.enabled.len() == view.runnable.len()
                    && node
                        .enabled
                        .iter()
                        .zip(view.runnable.iter())
                        .all(|(&(p, _), &q)| p == q),
                "nondeterministic workload: decision point {depth} saw runnable \
                 {:?} on a previous run but {:?} now — explore() factories must \
                 rebuild identical worlds",
                node.enabled.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
                view.runnable,
            );
            let chosen = node.chosen;
            st.depth += 1;
            return chosen.decision();
        }
        if st.depth as u64 >= st.max_steps {
            st.dead = true;
            st.truncated = true;
            return fallback(view);
        }
        // Extension segment: open a new node.
        let enabled: Vec<(usize, PendingOp)> = view
            .runnable
            .iter()
            .copied()
            .zip(view.pending.iter().copied())
            .collect();
        let sleep: Vec<(usize, PendingOp)> = if !st.reduction {
            Vec::new()
        } else if let Some(parent) = st.stack.last() {
            match parent.chosen {
                // A crash is dependent with every process: survivors'
                // subsequent behavior may hinge on the victim's absence, so
                // nothing stays asleep across a crash edge. A flush is a
                // write landing in shared memory — dependent with every
                // reader of that register, and cheap enough to treat as
                // dependent with everything.
                TraceStep::Crash(_) | TraceStep::Flush { .. } => Vec::new(),
                TraceStep::Grant(chosen_pid) => {
                    // Inherit the parent's sleepers (and its already-explored
                    // choices) that are independent of the op the parent
                    // executed to get here — dependent ones wake up.
                    let executed = parent.op_of(chosen_pid);
                    let rel = st.independence;
                    parent
                        .sleep
                        .iter()
                        .copied()
                        .chain(parent.explored.iter().map(|&q| (q, parent.op_of(q))))
                        .filter(|(q, qop)| *q != chosen_pid && independent(rel, qop, &executed))
                        .filter(|(q, _)| enabled.iter().any(|&(p, _)| p == *q))
                        .collect()
                }
            }
        } else {
            Vec::new()
        };
        let crash_cands = if st.faults_on_path() < st.fault_budget {
            st.crash_candidates(&enabled)
        } else {
            Vec::new()
        };
        // Flush branches come straight from the world's flushable set
        // (empty under SC, so SC exploration is bit-identical to before).
        let flush_cands: Vec<(usize, RegId)> = view.flushable.to_vec();
        let pick = enabled
            .iter()
            .map(|&(p, _)| p)
            .find(|p| !sleep.iter().any(|&(q, _)| q == *p));
        match pick {
            Some(pid) => {
                st.stack.push(Node {
                    enabled,
                    sleep,
                    explored: Vec::new(),
                    crash_cands,
                    crash_explored: Vec::new(),
                    flush_cands,
                    flush_explored: Vec::new(),
                    chosen: TraceStep::Grant(pid),
                });
                st.depth += 1;
                Decision::Grant(pid)
            }
            None if !flush_cands.is_empty() || !crash_cands.is_empty() => {
                // Every grant is asleep, but flush/crash branches remain —
                // they are dependent with everything, so sleeping grants
                // cannot cover them. Take the first such branch; the grants
                // here were proven redundant.
                st.pruned_now += enabled.len() as u64;
                let explored = enabled.iter().map(|&(p, _)| p).collect();
                let chosen = match flush_cands.first() {
                    Some(&(pid, reg)) => TraceStep::Flush { pid, reg },
                    None => TraceStep::Crash(crash_cands[0]),
                };
                st.stack.push(Node {
                    enabled,
                    sleep,
                    explored,
                    crash_cands,
                    crash_explored: Vec::new(),
                    flush_cands,
                    flush_explored: Vec::new(),
                    chosen,
                });
                st.depth += 1;
                chosen.decision()
            }
            None => {
                // Everything enabled is asleep: this whole continuation is
                // covered by an explored sibling. Abandon the path.
                st.dead = true;
                st.redundant = true;
                st.pruned_now += enabled.len() as u64;
                Decision::Grant(view.runnable[0])
            }
        }
    }
}

/// Advances the stack to the next unexplored branch. Returns `true` when
/// the whole space is exhausted.
fn backtrack(s: &mut Dfs, report: &mut ExploreReport, metrics: &MetricsRegistry) -> bool {
    loop {
        let Some(node) = s.stack.last_mut() else {
            return true;
        };
        match node.chosen {
            // Sleep-set rule: after exploring a grant, it sleeps for the
            // node's remaining branches (it is in `explored`, which the
            // child-sleep computation treats as sleeping). Crash and flush
            // choices never enter sleep sets — they are dependent with
            // everything.
            TraceStep::Grant(p) => node.explored.push(p),
            TraceStep::Crash(p) => node.crash_explored.push(p),
            TraceStep::Flush { pid, reg } => node.flush_explored.push((pid, reg)),
        }
        let next = node
            .enabled
            .iter()
            .map(|&(p, _)| p)
            .find(|p| !node.explored.contains(p) && !node.sleep.iter().any(|&(q, _)| q == *p));
        if let Some(p) = next {
            node.chosen = TraceStep::Grant(p);
            return false;
        }
        // Grants exhausted: take the next unexplored flush branch, then the
        // next crash branch (if the fault budget allowed any at this node).
        let next_flush = node
            .flush_cands
            .iter()
            .copied()
            .find(|e| !node.flush_explored.contains(e));
        if let Some((pid, reg)) = next_flush {
            node.chosen = TraceStep::Flush { pid, reg };
            return false;
        }
        let next_crash = node
            .crash_cands
            .iter()
            .copied()
            .find(|p| !node.crash_explored.contains(p));
        if let Some(p) = next_crash {
            node.chosen = TraceStep::Crash(p);
            return false;
        }
        let skipped = node
            .enabled
            .iter()
            .filter(|&&(p, _)| !node.explored.contains(&p))
            .count() as u64;
        if skipped > 0 {
            report.pruned += skipped;
            metrics.proc(0).incr(Counter::SchedulesPruned, skipped);
        }
        s.stack.pop();
    }
}

/// Bounded-exhaustive DFS over every schedule of the world `make` builds.
///
/// `make` must be a *deterministic factory*: each call rebuilds an identical
/// lockstep world plus bodies (same registers, same seed, same code). Every
/// executed schedule's [`RunReport`] is passed to `check`; a `Some(reason)`
/// stops exploration and reports the schedule as a replayable
/// [`Counterexample`].
///
/// # Panics
///
/// Panics if `make` builds a [`Mode::Free`] world, or if re-running the
/// factory does not reproduce the same runnable sets (a nondeterministic
/// workload).
pub fn explore<T, F, C>(cfg: &ExploreConfig, mut make: F, mut check: C) -> ExploreReport
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
    C: FnMut(&RunReport<T>) -> Option<String>,
{
    explore_inner(cfg, &[], &mut make, &mut check, &|| false)
}

/// The DFS driver shared by [`explore`] (empty prefix) and the parallel
/// frontier jobs (subtree rooted at a fixed prefix, with a cancellation
/// probe checked between runs).
fn explore_inner<T, F, C>(
    cfg: &ExploreConfig,
    prefix: &[TraceStep],
    make: &mut F,
    check: &mut C,
    cancelled: &dyn Fn() -> bool,
) -> ExploreReport
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
    C: FnMut(&RunReport<T>) -> Option<String>,
{
    let metrics = MetricsRegistry::new(1);
    let start = Instant::now();
    let st = Rc::new(RefCell::new(Dfs {
        fixed: prefix.to_vec(),
        stack: Vec::new(),
        depth: 0,
        dead: false,
        redundant: false,
        truncated: false,
        pruned_now: 0,
        max_steps: cfg.max_steps,
        reduction: cfg.reduction,
        independence: cfg.independence,
        fault_budget: cfg.fault_budget,
    }));
    let mut report = ExploreReport {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        exhausted: false,
        max_depth: 0,
        violation: None,
        telemetry: Telemetry::empty(1),
        elapsed_secs: 0.0,
        fault_budget: cfg.fault_budget,
        faults_injected: 0,
        schedules_by_faults: vec![0; cfg.fault_budget as usize + 1],
        schedule_lengths: Histogram::default(),
    };
    let mut heartbeat = cfg.progress.then(|| Heartbeat::new(1.0));
    let mut runs: u64 = 0;
    loop {
        if cancelled() {
            // A cancelled job reports what it covered; `exhausted` stays
            // false.
            break;
        }
        {
            let mut s = st.borrow_mut();
            s.depth = 0;
            s.dead = false;
            s.redundant = false;
            s.truncated = false;
        }
        let (mut world, bodies) = make();
        assert_eq!(
            world.mode(),
            Mode::Lockstep,
            "exploration needs the deterministic lockstep backend"
        );
        let run_report = world.run(bodies, Box::new(Controller { st: Rc::clone(&st) }));
        runs += 1;
        let (redundant, truncated, pruned_now, path_faults, path_len) = {
            let mut s = st.borrow_mut();
            let path_len = s.fixed.len() + s.stack.len();
            report.max_depth = report.max_depth.max(path_len);
            (
                s.redundant,
                s.truncated,
                std::mem::take(&mut s.pruned_now),
                s.faults_on_path(),
                path_len,
            )
        };
        if !redundant {
            report.schedule_lengths.record(path_len as u64);
        }
        if pruned_now > 0 {
            report.pruned += pruned_now;
            metrics.proc(0).incr(Counter::SchedulesPruned, pruned_now);
        }
        if truncated {
            report.truncated += 1;
            metrics.proc(0).incr(Counter::SchedulesTruncated, 1);
        } else if !redundant {
            report.schedules += 1;
            metrics.proc(0).incr(Counter::SchedulesExplored, 1);
            let bucket = (path_faults as usize).min(report.schedules_by_faults.len() - 1);
            report.schedules_by_faults[bucket] += 1;
            if path_faults > 0 {
                report.faults_injected += path_faults;
                metrics.proc(0).incr(Counter::FaultsInjected, path_faults);
            }
        }
        // Redundant paths were already checked under an equivalent schedule;
        // truncated prefixes are real executions and still worth checking.
        if !redundant {
            if let Some(description) = check(&run_report) {
                let s = st.borrow();
                let trace = DecisionTrace {
                    n: world.n(),
                    decisions: s
                        .fixed
                        .iter()
                        .copied()
                        .chain(s.stack.iter().map(|nd| nd.chosen))
                        .collect(),
                };
                report.violation = Some(Counterexample { trace, description });
                break;
            }
        }
        if let Some(hb) = heartbeat.as_mut() {
            hb.tick(|secs| {
                format!(
                    "explore: {} schedules ({:.0}/s), {} pruned, {} truncated, \
                     {} faults injected, depth {}",
                    report.schedules,
                    (report.schedules + report.truncated) as f64 / secs.max(1e-9),
                    report.pruned,
                    report.truncated,
                    report.faults_injected,
                    report.max_depth,
                )
            });
        }
        if backtrack(&mut st.borrow_mut(), &mut report, &metrics) {
            report.exhausted = report.truncated == 0;
            break;
        }
        if runs >= cfg.max_schedules {
            break;
        }
    }
    report.telemetry = metrics.snapshot();
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

/// Replays `trace` against a fresh world from `make`, returning the run
/// report plus the *canonical* trace — the grants actually issued, which
/// may differ from `trace` when entries were skipped as not-runnable.
pub fn run_trace<T, F>(make: &mut F, trace: &DecisionTrace) -> (RunReport<T>, DecisionTrace)
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
{
    let log = Rc::new(RefCell::new(Vec::new()));
    let (mut world, bodies) = make();
    let report = world.run(bodies, Box::new(trace.recording_strategy(Rc::clone(&log))));
    let actual = DecisionTrace {
        n: trace.n,
        decisions: log.borrow().clone(),
    };
    (report, actual)
}

/// Greedily shrinks a violating trace while `check` still reports a
/// violation: first trims the suffix (the tolerant replayer completes any
/// prefix deterministically), then repeatedly deletes single interior
/// decisions to a fixpoint. Returns the minimal trace and the number of
/// candidate re-executions spent (callers feed that into the
/// `ShrinkRuns` telemetry counter).
pub fn shrink_trace<T, F, C>(
    make: &mut F,
    check: &mut C,
    trace: DecisionTrace,
) -> (DecisionTrace, u64)
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
    C: FnMut(&RunReport<T>) -> Option<String>,
{
    let mut runs = 0u64;
    let mut best = trace;
    // Suffix trim: pop trailing decisions while the violation persists.
    while !best.decisions.is_empty() {
        let mut cand = best.clone();
        cand.decisions.pop();
        let (rep, _) = run_trace(make, &cand);
        runs += 1;
        if check(&rep).is_some() {
            best = cand;
        } else {
            break;
        }
    }
    // Interior deletion to fixpoint.
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.decisions.len() {
            let mut cand = best.clone();
            cand.decisions.remove(i);
            let (rep, _) = run_trace(make, &cand);
            runs += 1;
            if check(&rep).is_some() {
                best = cand;
                improved = true;
                // Index i now holds the next decision; retry in place.
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    (best, runs)
}

/// Outcome of probing one frontier prefix: either the world finished while
/// (or right after) replaying the prefix — a complete schedule — or there is
/// a live decision point with this enabled set.
enum Probe<T> {
    Complete(RunReport<T>),
    Branch {
        enabled: Vec<usize>,
        flushable: Vec<(usize, RegId)>,
    },
}

/// Replays `prefix` verbatim and captures the runnable + flushable sets at
/// the first decision point past it (granting lowest-runnable from there
/// on).
fn probe_prefix<T, F>(make: &mut F, prefix: &[TraceStep]) -> Probe<T>
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
{
    type Captured = (Vec<usize>, Vec<(usize, RegId)>);
    let captured: Rc<RefCell<Option<Captured>>> = Rc::new(RefCell::new(None));
    let cap = Rc::clone(&captured);
    let steps = prefix.to_vec();
    let mut idx = 0usize;
    let strategy = FnStrategy::new(move |view: &ScheduleView<'_>| {
        if idx < steps.len() {
            let step = steps[idx];
            idx += 1;
            assert!(
                step.legal(view),
                "frontier prefixes are built from observed enabled/flushable sets"
            );
            return step.decision();
        }
        if idx == steps.len() {
            idx += 1;
            *cap.borrow_mut() = Some((view.runnable.to_vec(), view.flushable.to_vec()));
        }
        Decision::Grant(view.runnable[0])
    });
    let (mut world, bodies) = make();
    assert_eq!(
        world.mode(),
        Mode::Lockstep,
        "exploration needs the deterministic lockstep backend"
    );
    let report = world.run(bodies, Box::new(strategy));
    let at_branch = captured.borrow_mut().take();
    match at_branch {
        Some((enabled, flushable)) => Probe::Branch { enabled, flushable },
        None => Probe::Complete(report),
    }
}

/// Tuning knobs for [`explore_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads. `1` runs the identical frontier serially — the fair
    /// baseline for speedup measurements.
    pub workers: usize,
    /// Stop splitting once the frontier holds at least
    /// `workers × frontier_factor` jobs.
    pub frontier_factor: usize,
    /// Never split deeper than this many decisions.
    pub max_frontier_depth: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
            frontier_factor: 4,
            max_frontier_depth: 4,
        }
    }
}

/// What a parallel exploration covered, plus frontier statistics.
#[derive(Debug)]
pub struct ParallelExploreReport {
    /// The merged per-job coverage. On a clean (violation-free) run every
    /// job ran to completion, so the aggregate counts are deterministic; on
    /// a violating run jobs above the winning index may have been cancelled
    /// mid-flight, so only [`ExploreReport::violation`] itself is
    /// deterministic.
    pub report: ExploreReport,
    /// Worker threads used.
    pub workers: usize,
    /// Subtree jobs the frontier was split into.
    pub jobs: usize,
    /// Jobs a worker popped from another worker's deque or the injector.
    pub steals: u64,
    /// Decision depth at which the frontier was split.
    pub frontier_depth: usize,
    /// [`ParallelExploreReport::steals`] attributed per worker (index =
    /// worker id, length = `workers`).
    pub worker_steals: Vec<u64>,
    /// Jobs each worker executed (local pops + steals; sums to `jobs` on
    /// violation-free runs).
    pub worker_executes: Vec<u64>,
    /// Frontier-job prefix lengths, power-of-two bucketed (the
    /// depth profile the BFS split actually produced).
    pub frontier_lengths: Histogram,
    /// One flight-recorder lane per **worker** (not per simulated
    /// process): [`EventKind::Execute`] per job run (arg = prefix
    /// length) and [`EventKind::Steal`] per stolen job, `step` = job
    /// index.
    pub worker_flight: FlightLog,
}

/// Work-stealing parallel version of [`explore`]: splits the schedule tree
/// into subtree jobs at a shallow frontier (breadth-first over observed
/// enabled sets, crash branches included under the fault budget), then runs
/// the jobs on `par.workers` threads with per-worker deques plus a global
/// injector ([`crate::stealing`]).
///
/// **Deterministic result merge:** on violation, the reported
/// counterexample is the one from the *lowest-indexed* job (frontier jobs
/// are ordered breadth-first, matching the serial DFS visit order of their
/// roots) — workers publish violations into an atomic min-index and jobs
/// above the current minimum are cancelled, while lower-indexed jobs always
/// run to their own completion or first violation. The winning
/// counterexample is therefore independent of thread timing.
///
/// Frontier splitting drops cross-sibling sleep-set inheritance at the
/// split levels, so the union of jobs may re-execute schedules the serial
/// DFS would have pruned; the result is coverage-equivalent, just
/// potentially larger `schedules` counts.
pub fn explore_parallel<T, F, C>(
    cfg: &ExploreConfig,
    par: &ParallelConfig,
    factory: F,
    check: C,
) -> ParallelExploreReport
where
    T: Send + 'static,
    F: Fn() -> (World, Vec<ProcBody<T>>) + Sync,
    C: Fn(&RunReport<T>) -> Option<String> + Sync,
{
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    let start = Instant::now();
    let workers = par.workers.max(1);
    let target = workers * par.frontier_factor.max(1);
    let mut merged = ExploreReport {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        exhausted: false,
        max_depth: 0,
        violation: None,
        telemetry: Telemetry::empty(1),
        elapsed_secs: 0.0,
        fault_budget: cfg.fault_budget,
        faults_injected: 0,
        schedules_by_faults: vec![0; cfg.fault_budget as usize + 1],
        schedule_lengths: Histogram::default(),
    };

    // Serial frontier phase: BFS-split the tree until enough subtree roots
    // exist. Prefixes that complete the world are full schedules — check
    // them right here (their serial visit order precedes every job's).
    let mut frontier: Vec<Vec<TraceStep>> = vec![Vec::new()];
    let mut depth = 0usize;
    while frontier.len() < target && depth < par.max_frontier_depth {
        let mut next: Vec<Vec<TraceStep>> = Vec::new();
        let mut make = || factory();
        for prefix in &frontier {
            match probe_prefix::<T, _>(&mut make, prefix) {
                Probe::Complete(rep) => {
                    merged.schedules += 1;
                    merged.schedule_lengths.record(prefix.len() as u64);
                    let crashes = prefix.iter().filter(|s| s.is_crash()).count() as u64;
                    let bucket = (crashes as usize).min(merged.schedules_by_faults.len() - 1);
                    merged.schedules_by_faults[bucket] += 1;
                    merged.faults_injected += crashes;
                    merged.max_depth = merged.max_depth.max(prefix.len());
                    if merged.violation.is_none() {
                        if let Some(description) = check(&rep) {
                            merged.violation = Some(Counterexample {
                                trace: DecisionTrace {
                                    n: rep.outputs.len(),
                                    decisions: prefix.clone(),
                                },
                                description,
                            });
                        }
                    }
                }
                Probe::Branch { enabled, flushable } => {
                    let crashes = prefix.iter().filter(|s| s.is_crash()).count() as u64;
                    for &p in &enabled {
                        let mut child = prefix.clone();
                        child.push(TraceStep::Grant(p));
                        next.push(child);
                    }
                    for &(pid, reg) in &flushable {
                        let mut child = prefix.clone();
                        child.push(TraceStep::Flush { pid, reg });
                        next.push(child);
                    }
                    if crashes < cfg.fault_budget {
                        // Canonical crash placement at frontier level: the
                        // actor of the last grant/flush, or every enabled
                        // pid while the prefix is all-crash/empty.
                        let last_actor = prefix.iter().rev().find_map(|s| match s {
                            TraceStep::Grant(p) => Some(*p),
                            TraceStep::Flush { pid, .. } => Some(*pid),
                            TraceStep::Crash(_) => None,
                        });
                        let cands: Vec<usize> = match last_actor {
                            Some(p) => enabled.iter().copied().filter(|&q| q == p).collect(),
                            None => enabled.clone(),
                        };
                        for p in cands {
                            let mut child = prefix.clone();
                            child.push(TraceStep::Crash(p));
                            next.push(child);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            frontier.clear();
            break;
        }
        frontier = next;
        depth += 1;
    }
    if merged.violation.is_some() || frontier.is_empty() {
        // Violation among complete short schedules, or the whole tree is
        // shallower than one split level: nothing left to parallelize.
        merged.exhausted = merged.violation.is_none() && merged.truncated == 0;
        let metrics = MetricsRegistry::new(1);
        fill_merged_telemetry(&metrics, &merged);
        merged.telemetry = metrics.snapshot();
        merged.elapsed_secs = start.elapsed().as_secs_f64();
        return ParallelExploreReport {
            report: merged,
            workers,
            jobs: 0,
            steals: 0,
            frontier_depth: depth,
            worker_steals: vec![0; workers],
            worker_executes: vec![0; workers],
            frontier_lengths: Histogram::default(),
            worker_flight: FlightLog::empty(workers),
        };
    }

    // Parallel phase: one explore_inner per subtree, work-stealing, lowest
    // violating job index wins.
    let jobs = frontier.len();
    let mut frontier_lengths = Histogram::default();
    for prefix in &frontier {
        frontier_lengths.record(prefix.len() as u64);
    }
    let queues = crate::stealing::StealQueues::new(workers);
    queues.seed(frontier.iter().cloned().enumerate());
    let min_violation = AtomicUsize::new(usize::MAX);
    let jobs_done = AtomicU64::new(0);
    // One flight-recorder lane per worker; each job pop is an Execute
    // event, each stolen pop additionally a Steal event.
    let worker_rec = FlightRecorder::new(workers, jobs.next_power_of_two().max(64));
    // Workers heartbeat per job at the loop level (worker 0 speaks for
    // everyone), so the per-job explorations run quiet.
    let job_cfg = ExploreConfig {
        progress: false,
        ..cfg.clone()
    };
    let results: Vec<parking_lot::Mutex<Option<ExploreReport>>> =
        (0..jobs).map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let min_violation = &min_violation;
            let jobs_done = &jobs_done;
            let worker_rec = &worker_rec;
            let results = &results;
            let factory = &factory;
            let check = &check;
            let job_cfg = &job_cfg;
            let mut heartbeat = (cfg.progress && w == 0).then(|| Heartbeat::new(1.0));
            scope.spawn(move || {
                let mut my_steals = 0u64;
                while let Some((idx, prefix)) = queues.pop(w) {
                    worker_rec.record(w, idx as u64, EventKind::Execute, prefix.len() as u64);
                    let stolen = queues.worker_steals()[w];
                    if stolen > my_steals {
                        my_steals = stolen;
                        worker_rec.record(w, idx as u64, EventKind::Steal, stolen);
                    }
                    if idx > min_violation.load(Ordering::Acquire) {
                        continue;
                    }
                    let mut make = || factory();
                    let mut chk = |r: &RunReport<T>| check(r);
                    let rep = explore_inner(job_cfg, &prefix, &mut make, &mut chk, &|| {
                        idx > min_violation.load(Ordering::Relaxed)
                    });
                    if rep.violation.is_some() {
                        min_violation.fetch_min(idx, Ordering::AcqRel);
                    }
                    *results[idx].lock() = Some(rep);
                    let done = jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(hb) = heartbeat.as_mut() {
                        hb.tick(|secs| {
                            format!(
                                "explore: {done}/{jobs} frontier jobs done \
                                 ({:.1}/s), {} steals",
                                done as f64 / secs.max(1e-9),
                                queues.steals(),
                            )
                        });
                    }
                }
            });
        }
    });

    let winner = min_violation.load(Ordering::Acquire);
    let mut all_exhausted = true;
    for (idx, slot) in results.iter().enumerate() {
        let Some(rep) = slot.lock().take() else {
            all_exhausted = false;
            continue;
        };
        merged.schedules += rep.schedules;
        merged.pruned += rep.pruned;
        merged.truncated += rep.truncated;
        merged.max_depth = merged.max_depth.max(rep.max_depth);
        merged.faults_injected += rep.faults_injected;
        merged.schedule_lengths.merge(&rep.schedule_lengths);
        for (b, c) in rep.schedules_by_faults.iter().enumerate() {
            let b = b.min(merged.schedules_by_faults.len() - 1);
            merged.schedules_by_faults[b] += c;
        }
        all_exhausted &= rep.exhausted;
        if idx == winner {
            merged.violation = rep.violation;
        }
    }
    merged.exhausted = merged.violation.is_none() && all_exhausted && merged.truncated == 0;
    let metrics = MetricsRegistry::new(1);
    fill_merged_telemetry(&metrics, &merged);
    merged.telemetry = metrics.snapshot();
    merged.elapsed_secs = start.elapsed().as_secs_f64();
    ParallelExploreReport {
        report: merged,
        workers,
        jobs,
        steals: queues.steals(),
        frontier_depth: depth,
        worker_steals: queues.worker_steals(),
        worker_executes: queues.worker_executes(),
        frontier_lengths,
        worker_flight: worker_rec.snapshot(),
    }
}

/// Rebuilds the aggregate explorer counters for a merged parallel report.
fn fill_merged_telemetry(metrics: &MetricsRegistry, merged: &ExploreReport) {
    let m = metrics.proc(0);
    m.incr(Counter::SchedulesExplored, merged.schedules);
    m.incr(Counter::SchedulesPruned, merged.pruned);
    m.incr(Counter::SchedulesTruncated, merged.truncated);
    m.incr(Counter::FaultsInjected, merged.faults_injected);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    /// The flag-principle workload: each process raises its own flag then
    /// reads the other's. 4 ops, two per process.
    fn flag_factory(seed: u64) -> impl Fn() -> (World, Vec<ProcBody<u32>>) + Sync {
        move || {
            let w = World::builder(2).seed(seed).build();
            let a = w.reg("a", 0u32);
            let b = w.reg("b", 0u32);
            let (a0, b0) = (a.clone(), b.clone());
            let (a1, b1) = (a, b);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    a0.write(ctx, 1)?;
                    b0.read(ctx)
                }),
                Box::new(move |ctx| {
                    b1.write(ctx, 1)?;
                    a1.read(ctx)
                }),
            ];
            (w, bodies)
        }
    }

    #[test]
    fn exhaustive_enumeration_without_reduction_counts_interleavings() {
        // 2 processes x 2 ops each: C(4,2) = 6 interleavings.
        let cfg = ExploreConfig {
            reduction: false,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, flag_factory(1), |_| None);
        assert_eq!(rep.schedules, 6);
        assert_eq!(rep.pruned, 0);
        assert!(rep.exhausted);
        assert_eq!(rep.max_depth, 4);
        assert!(rep.violation.is_none());
        assert_eq!(
            rep.telemetry.total(Counter::SchedulesExplored),
            rep.schedules
        );
    }

    #[test]
    fn reduction_preserves_reachable_outcomes() {
        let outcomes = |reduction: bool| {
            let cfg = ExploreConfig {
                reduction,
                ..ExploreConfig::default()
            };
            let mut seen: Vec<Vec<Option<u32>>> = Vec::new();
            let rep = explore(&cfg, flag_factory(2), |r| {
                if !seen.contains(&r.outputs) {
                    seen.push(r.outputs.clone());
                }
                None
            });
            seen.sort();
            (seen, rep)
        };
        let (full, full_rep) = outcomes(false);
        let (reduced, red_rep) = outcomes(true);
        assert_eq!(full, reduced, "reduction lost a reachable outcome");
        assert!(red_rep.schedules <= full_rep.schedules);
        assert!(
            red_rep.pruned > 0,
            "the flag workload has independent ops; something must prune"
        );
        assert_eq!(
            red_rep.telemetry.total(Counter::SchedulesPruned),
            red_rep.pruned
        );
        // No schedule lets both processes read 0 (flag principle).
        for o in &full {
            assert!(
                !(o[0] == Some(0) && o[1] == Some(0)),
                "flag principle violated by {o:?}"
            );
        }
    }

    /// One writer, one reader on a single register: exploring finds the
    /// read-before-write schedule, and shrinking reduces it to the single
    /// forcing decision (grant the reader first).
    fn race_factory() -> impl Fn() -> (World, Vec<ProcBody<u32>>) + Sync {
        || {
            let w = World::builder(2).build();
            let r = w.reg("r", 0u32);
            let (r0, r1) = (r.clone(), r);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    r0.write(ctx, 1)?;
                    Ok(7)
                }),
                Box::new(move |ctx| r1.read(ctx)),
            ];
            (w, bodies)
        }
    }

    fn stale_read(r: &RunReport<u32>) -> Option<String> {
        (r.outputs[1] == Some(0)).then(|| "reader saw the initial value".to_string())
    }

    #[test]
    fn violation_is_found_shrunk_and_replayable() {
        let rep = explore(&ExploreConfig::default(), race_factory(), stale_read);
        let cex = rep.violation.expect("the stale read must be reachable");
        assert!(!rep.exhausted, "exploration stops at the violation");

        // Replay reproduces it.
        let mut make = race_factory();
        let (replayed, actual) = run_trace(&mut make, &cex.trace);
        assert_eq!(
            stale_read(&replayed),
            Some("reader saw the initial value".into())
        );
        assert_eq!(
            actual.decisions, cex.trace.decisions,
            "explorer traces are canonical"
        );

        // Shrinking yields the single forcing decision: grant pid 1 first.
        let (min, shrink_runs) = shrink_trace(&mut make, &mut |r| stale_read(r), cex.trace);
        assert_eq!(min.decisions, vec![TraceStep::Grant(1)]);
        assert!(shrink_runs > 0);
        let (rep2, _) = run_trace(&mut make, &min);
        assert!(stale_read(&rep2).is_some(), "shrunk trace still violates");
    }

    #[test]
    fn trace_json_round_trips() {
        let t = DecisionTrace {
            n: 3,
            decisions: vec![
                TraceStep::Grant(2),
                TraceStep::Grant(0),
                TraceStep::Crash(1),
                TraceStep::Grant(0),
            ],
        };
        let rendered = t.to_json().render();
        let parsed = crate::json::parse(&rendered).unwrap();
        let back = DecisionTrace::from_json(&parsed).unwrap();
        assert_eq!(back, t);
        assert_eq!(
            back.to_json().render(),
            rendered,
            "round-trip is byte-identical"
        );
    }

    /// Pre-fault `bprc-trace-v1` documents (bare pid numbers only) still
    /// parse, as all-grant traces.
    #[test]
    fn legacy_grant_only_documents_still_parse() {
        let doc = r#"{"schema": "bprc-trace-v1", "n": 3, "decisions": [2, 0, 1]}"#;
        let v = crate::json::parse(doc).unwrap();
        let t = DecisionTrace::from_json(&v).unwrap();
        assert_eq!(
            t.decisions,
            vec![
                TraceStep::Grant(2),
                TraceStep::Grant(0),
                TraceStep::Grant(1)
            ]
        );
    }

    #[test]
    fn trace_json_rejects_bad_documents() {
        let bad = [
            r#"{"n": 2, "decisions": []}"#,
            r#"{"schema": "bprc-trace-v9", "n": 2, "decisions": []}"#,
            r#"{"schema": "bprc-trace-v1", "decisions": []}"#,
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [5]}"#,
            r#"{"schema": "bprc-trace-v1", "n": 0, "decisions": []}"#,
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [{"crash": 5}]}"#,
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [{"halt": 0}]}"#,
        ];
        for doc in bad {
            let v = crate::json::parse(doc).unwrap();
            assert!(DecisionTrace::from_json(&v).is_err(), "accepted {doc}");
        }
    }

    #[test]
    fn flush_steps_round_trip_and_malformed_flushes_reject() {
        let t = DecisionTrace {
            n: 2,
            decisions: vec![
                TraceStep::Grant(0),
                TraceStep::Flush { pid: 0, reg: 1 },
                TraceStep::Crash(0),
                TraceStep::Grant(1),
            ],
        };
        let rendered = t.to_json().render();
        let parsed = crate::json::parse(&rendered).unwrap();
        let back = DecisionTrace::from_json(&parsed).unwrap();
        assert_eq!(back, t);
        assert_eq!(
            back.to_json().render(),
            rendered,
            "round-trip is byte-identical"
        );

        let bad = [
            // A flush without its register is not a decision.
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [{"flush": 0}]}"#,
            // Flush pids obey the same range check as grants and crashes.
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [{"flush": 5, "reg": 0}]}"#,
        ];
        for doc in bad {
            let v = crate::json::parse(doc).unwrap();
            assert!(DecisionTrace::from_json(&v).is_err(), "accepted {doc}");
        }
    }

    /// Message-passing under PSO: the violation *requires* a mid-run flush
    /// decision (the flag store must land while the data store stays
    /// buffered), so the counterexample carries a [`TraceStep::Flush`]
    /// through find → shrink → replay.
    fn mp_pso_factory() -> impl Fn() -> (World, Vec<ProcBody<u64>>) + Sync {
        || {
            let w = World::builder(2)
                .weak_memory(crate::weakmem::WeakMode::Pso)
                .build();
            let data = w.reg("data", 0u64);
            let flag = w.reg("flag", 0u64);
            let (d1, f1) = (data.clone(), flag.clone());
            let bodies: Vec<ProcBody<u64>> = vec![
                Box::new(move |ctx| {
                    data.write(ctx, 1)?;
                    flag.write(ctx, 1)?;
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    let rf = f1.read(ctx)?;
                    let rd = d1.read(ctx)?;
                    Ok(rf * 10 + rd)
                }),
            ];
            (w, bodies)
        }
    }

    fn stale_publish(r: &RunReport<u64>) -> Option<String> {
        (r.outputs[1] == Some(10)).then(|| "flag visible before its data".to_string())
    }

    #[test]
    fn flush_dependent_violation_found_shrunk_and_replayed() {
        let rep = explore(&ExploreConfig::default(), mp_pso_factory(), stale_publish);
        let cex = rep.violation.expect("PSO reorders the two stores");
        assert!(
            cex.trace.decisions.iter().any(|s| s.is_flush()),
            "the counterexample must carry the forcing flush: {:?}",
            cex.trace.decisions
        );

        let mut make = mp_pso_factory();
        let (min, shrink_runs) = shrink_trace(&mut make, &mut |r| stale_publish(r), cex.trace);
        assert!(shrink_runs > 0);
        let flushes: Vec<&TraceStep> = min.decisions.iter().filter(|s| s.is_flush()).collect();
        assert_eq!(
            flushes.len(),
            1,
            "shrinking must keep exactly the forcing flush: {:?}",
            min.decisions
        );
        let (replayed, actual) = run_trace(&mut make, &min);
        assert!(stale_publish(&replayed).is_some());
        assert_eq!(
            &actual.decisions[..min.decisions.len()],
            &min.decisions[..],
            "the canonical log replays the shrunk prefix verbatim (then \
             completes with fallback grants)"
        );
    }

    /// Interior deletion of a flush step re-canonicalizes instead of
    /// wedging: the tolerant replayer skips now-illegal entries and the
    /// violation (which hinged on that flush) disappears.
    #[test]
    fn deleting_the_forcing_flush_recanonicalizes_the_replay() {
        let rep = explore(&ExploreConfig::default(), mp_pso_factory(), stale_publish);
        let mut make = mp_pso_factory();
        let (min, _) = shrink_trace(
            &mut make,
            &mut |r| stale_publish(r),
            rep.violation.unwrap().trace,
        );
        let mut without_flush = min.clone();
        without_flush.decisions.retain(|s| !s.is_flush());
        let (replayed, actual) = run_trace(&mut make, &without_flush);
        assert!(
            stale_publish(&replayed).is_none(),
            "without the flush the flag cannot outrun its data: {:?}",
            replayed.outputs
        );
        assert!(
            actual.decisions.iter().all(|s| !s.is_flush()),
            "the canonical log of a flush-free replay stays flush-free"
        );
    }

    #[test]
    fn step_budget_truncates_and_reports() {
        let deep = || {
            let w = World::builder(2).build();
            let r = w.reg("r", 0u64);
            let (r0, r1) = (r.clone(), r);
            let bodies: Vec<ProcBody<u64>> = vec![
                Box::new(move |ctx| {
                    for k in 0..30 {
                        r0.write(ctx, k)?;
                    }
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    let mut last = 0;
                    for _ in 0..30 {
                        last = r1.read(ctx)?;
                    }
                    Ok(last)
                }),
            ];
            (w, bodies)
        };
        let cfg = ExploreConfig {
            max_steps: 6,
            max_schedules: 200,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, deep, |_| None);
        assert!(rep.truncated > 0, "60-op workload must hit a 6-step budget");
        assert!(!rep.exhausted);
        assert!(rep.max_depth <= 6);
        assert_eq!(
            rep.telemetry.total(Counter::SchedulesTruncated),
            rep.truncated
        );
    }

    /// The subtlety the `Independence` knob exists for: each process writes
    /// its own register, then marks the end of its "operation interval" with
    /// a note. The two writes commute as memory ops, but the checker reads
    /// the note *order* — a trace-sensitive property. Under
    /// `DistinctRegisters` the reduction prunes the interleaving where pid 1
    /// finishes first (it is Mazurkiewicz-equivalent to the explored one),
    /// so the "violation" is provably missed; `ReadsOnly` keeps write/write
    /// pairs dependent and finds it, matching the unreduced enumeration.
    #[test]
    fn interval_checkers_need_the_reads_only_relation() {
        use crate::history::Event;

        let factory = || {
            let w = World::builder(2).build();
            let a = w.reg("a", 0u32);
            let b = w.reg("b", 0u32);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    a.write(ctx, 1)?;
                    ctx.annotate("w:end", vec![]);
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    b.write(ctx, 1)?;
                    ctx.annotate("w:end", vec![]);
                    Ok(0)
                }),
            ];
            (w, bodies)
        };
        let pid1_ends_first = |r: &RunReport<u32>| {
            let mut end = [None, None];
            for ev in r.history.as_ref().unwrap().events() {
                if let Event::Note { step, pid, note } = ev {
                    if note.label == "w:end" {
                        end[*pid] = Some(*step);
                    }
                }
            }
            (end[1] < end[0]).then(|| "pid 1's interval ended first".to_string())
        };
        let with = |independence: Independence, reduction: bool| {
            let cfg = ExploreConfig {
                reduction,
                independence,
                ..ExploreConfig::default()
            };
            explore(&cfg, factory, pid1_ends_first)
        };
        let unreduced = with(Independence::DistinctRegisters, false);
        assert!(
            unreduced.violation.is_some(),
            "full enumeration reaches the pid-1-first interleaving"
        );
        let reads_only = with(Independence::ReadsOnly, true);
        assert!(
            reads_only.violation.is_some(),
            "ReadsOnly keeps write/write dependent and must find it too"
        );
        let distinct = with(Independence::DistinctRegisters, true);
        assert!(
            distinct.violation.is_none(),
            "DistinctRegisters prunes the equivalent sibling — which is why \
             note-timestamp checkers must not use it"
        );
        assert!(distinct.pruned > 0);
    }

    #[test]
    fn max_schedules_valve_stops_exploration() {
        let cfg = ExploreConfig {
            reduction: false,
            max_schedules: 2,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, flag_factory(0), |_| None);
        assert_eq!(rep.schedules, 2);
        assert!(!rep.exhausted);
    }

    #[test]
    fn schedules_per_sec_is_always_finite() {
        let mut rep = explore(&ExploreConfig::default(), flag_factory(3), |_| None);
        rep.elapsed_secs = 0.0;
        assert!(rep.schedules_per_sec().is_finite());
        rep.elapsed_secs = f64::MIN_POSITIVE; // denormal-adjacent: would inf out unclamped
        assert!(rep.schedules_per_sec().is_finite());
        rep.schedules = 0;
        rep.truncated = 0;
        assert_eq!(rep.schedules_per_sec(), 0.0);
    }

    /// With a fault budget the explorer visits crash-extended schedules:
    /// every bucket of `schedules_by_faults` is populated, crashed runs
    /// show crash events, and the budget is never exceeded.
    #[test]
    fn fault_budget_explores_crash_branches() {
        let cfg = ExploreConfig {
            reduction: false,
            fault_budget: 1,
            ..ExploreConfig::default()
        };
        let mut max_crashes = 0usize;
        let rep = explore(&cfg, flag_factory(4), |r| {
            let crashes = r.history.as_ref().unwrap().crashes().count();
            max_crashes = max_crashes.max(crashes);
            None
        });
        assert!(rep.exhausted);
        assert_eq!(
            rep.schedules_by_faults[0], 6,
            "fault-free schedules must match the budget-0 enumeration"
        );
        assert!(rep.schedules_by_faults[1] > 0, "crash branches must run");
        assert_eq!(rep.schedules, rep.schedules_by_faults.iter().sum::<u64>());
        assert_eq!(rep.faults_injected, rep.schedules_by_faults[1]);
        assert_eq!(max_crashes, 1, "budget 1 must cap injected crashes at 1");
        assert_eq!(
            rep.telemetry.total(Counter::FaultsInjected),
            rep.faults_injected
        );
    }

    /// Sleep-set reduction with fault branches reaches exactly the outcome
    /// set (outputs + halt pattern) of the unreduced fault enumeration.
    #[test]
    fn reduction_with_faults_preserves_reachable_outcomes() {
        let outcomes = |reduction: bool| {
            let cfg = ExploreConfig {
                reduction,
                fault_budget: 1,
                ..ExploreConfig::default()
            };
            let mut seen: Vec<(Vec<Option<u32>>, Vec<bool>)> = Vec::new();
            let rep = explore(&cfg, flag_factory(5), |r| {
                let crashed: Vec<bool> = (0..r.outputs.len())
                    .map(|p| {
                        r.history
                            .as_ref()
                            .unwrap()
                            .crashes()
                            .any(|(_, pid)| pid == p)
                    })
                    .collect();
                let key = (r.outputs.clone(), crashed);
                if !seen.contains(&key) {
                    seen.push(key);
                }
                None
            });
            assert!(rep.exhausted, "reduction={reduction}");
            seen.sort();
            (seen, rep.schedules)
        };
        let (full, full_count) = outcomes(false);
        let (reduced, reduced_count) = outcomes(true);
        assert_eq!(full, reduced, "fault-aware reduction lost an outcome");
        assert!(reduced_count <= full_count);
    }

    /// A bug only reachable through a crash: pid 0 writes `v` then `p`
    /// (publish bit); the checker flags a run where `v` was written but `p`
    /// never was — impossible under pure grant schedules (the body always
    /// writes both), forced by crashing pid 0 between the two writes. The
    /// explorer must find it, the shrinker must keep the crash, and the
    /// trace must replay.
    #[test]
    fn crash_dependent_violation_found_shrunk_and_replayed() {
        let factory = || {
            let w = World::builder(2).build();
            let v = w.reg("v", 0u32);
            let p = w.reg("p", 0u32);
            let (v0, p0) = (v.clone(), p.clone());
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    v0.write(ctx, 1)?;
                    p0.write(ctx, 1)?;
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    let seen_v = v.read(ctx)?;
                    let seen_p = p.read(ctx)?;
                    Ok(seen_v * 10 + seen_p)
                }),
            ];
            (w, bodies)
        };
        // A survivor that read the handshake value without its publish bit
        // is fine while the writer is still alive (it will publish later);
        // it is a permanently-torn state only once the writer is dead.
        let unpublished = |r: &RunReport<u32>| {
            (r.outputs[1] == Some(10) && r.outputs[0].is_none())
                .then(|| "v visible without its publish bit and the writer is gone".into())
        };

        let grants_only = explore(&ExploreConfig::default(), factory, unpublished);
        assert!(
            grants_only.violation.is_none() && grants_only.exhausted,
            "the torn state must be unreachable without faults"
        );

        let cfg = ExploreConfig {
            fault_budget: 1,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, factory, unpublished);
        let cex = rep.violation.expect("a crash between the writes forces it");
        assert!(cex.trace.decisions.iter().any(|s| s.is_crash()));

        let mut make = factory;
        let (min, _) = shrink_trace(&mut make, &mut |r| unpublished(r), cex.trace);
        assert!(
            min.decisions.iter().any(|s| s.is_crash()),
            "shrinking must keep the forcing crash: {:?}",
            min.decisions
        );
        let (rep2, _) = run_trace(&mut make, &min);
        assert!(unpublished(&rep2).is_some(), "shrunk trace still violates");
    }

    /// The parallel frontier covers exactly the serial enumeration (no
    /// reduction → exact partition of the schedule tree), and a violating
    /// workload yields the same deterministic counterexample for any worker
    /// count.
    #[test]
    fn parallel_exploration_matches_serial() {
        let cfg = ExploreConfig {
            reduction: false,
            fault_budget: 1,
            ..ExploreConfig::default()
        };
        let serial = explore(&cfg, flag_factory(6), |_| None);
        for workers in [1usize, 4] {
            let par = ParallelConfig {
                workers,
                frontier_factor: 2,
                max_frontier_depth: 3,
            };
            let rep = explore_parallel(&cfg, &par, flag_factory(6), |_| None);
            assert!(rep.report.exhausted, "workers={workers}");
            assert_eq!(
                rep.report.schedules, serial.schedules,
                "workers={workers}: unreduced parallel must partition exactly"
            );
            assert_eq!(rep.report.schedules_by_faults, serial.schedules_by_faults);
            assert_eq!(
                rep.report.schedule_lengths.count(),
                serial.schedule_lengths.count(),
                "workers={workers}: every counted schedule gets a length sample"
            );
            // The per-worker split must tell the same story as the totals.
            assert_eq!(rep.worker_steals.len(), workers);
            assert_eq!(rep.worker_executes.len(), workers);
            assert_eq!(rep.worker_steals.iter().sum::<u64>(), rep.steals);
            assert_eq!(
                rep.worker_executes.iter().sum::<u64>(),
                rep.jobs as u64,
                "workers={workers}: every frontier job executed exactly once"
            );
            assert_eq!(rep.frontier_lengths.count(), rep.jobs as u64);
            assert_eq!(
                (0..workers)
                    .map(|w| rep.worker_flight.count(w, EventKind::Execute))
                    .sum::<usize>(),
                rep.jobs,
                "workers={workers}: one Execute ring event per job"
            );
            if workers == 1 {
                // A lone worker owns every deque: nothing it pops from its
                // own queue counts as a steal, and the whole execute column
                // lands on worker 0 — the serial-equivalence baseline.
                assert_eq!(rep.worker_executes, vec![rep.jobs as u64]);
                assert_eq!(rep.worker_steals, vec![rep.steals]);
            }
        }

        // Deterministic violation merge: every worker count reports the
        // same counterexample as the serial explorer finds first.
        let vcfg = ExploreConfig::default();
        let serial_v = explore(&vcfg, race_factory(), stale_read);
        let want = serial_v.violation.expect("stale read reachable");
        for workers in [1usize, 4] {
            let par = ParallelConfig {
                workers,
                frontier_factor: 2,
                max_frontier_depth: 2,
            };
            let rep = explore_parallel(&vcfg, &par, race_factory(), stale_read);
            let got = rep.report.violation.expect("parallel must find it too");
            assert_eq!(got.description, want.description);
            let mut make = race_factory();
            let (r, _) = run_trace(&mut make, &got.trace);
            assert!(stale_read(&r).is_some(), "parallel trace must replay");
        }
    }
}
