//! Systematic schedule-space exploration over the lockstep backend.
//!
//! Random strategies *sample* the schedule space; this module *enumerates*
//! it. Exploration is stateless model checking by re-execution: every
//! explored schedule is a fresh [`World`] run driven by a controller
//! strategy that replays a decision prefix recorded on earlier runs, then
//! extends it with the first unexplored choice. A depth-first stack of
//! decision nodes tracks, per quiescent point, which grants have been tried.
//!
//! # Soundness of the sleep-set reduction
//!
//! Exhaustive enumeration of all interleavings explodes; the explorer prunes
//! with *sleep sets* (Godefroid). After exploring choice `t` at a node, `t`
//! is put to sleep for the node's remaining branches; a child node inherits
//! the sleeping ops that are *independent* of the executed choice. A branch
//! whose every enabled process is asleep is provably redundant (covered by
//! an already-explored Mazurkiewicz-equivalent interleaving) and is
//! abandoned, counted in [`ExploreReport::pruned`].
//!
//! The reduction is sound exactly for checkers that cannot distinguish
//! equivalent interleavings, which makes the choice of independence
//! relation ([`ExploreConfig::independence`]) part of the claim:
//!
//! * [`Independence::DistinctRegisters`] — ops are independent when they
//!   target distinct registers or are both reads of the same one. In the
//!   lockstep model a process is runnable iff it is parked at a gate, so
//!   executing one access never enables or disables another — memory
//!   commutativity is the whole relation. Sound for checkers that inspect
//!   **process outputs** (flag principles, consensus agreement/validity):
//!   swapping commuting accesses changes no value any process reads.
//! * [`Independence::ReadsOnly`] — only read/read pairs are independent.
//!   Required for the **note-timestamped interval checkers** (snapshot
//!   P1–P3): an update's `upd:end` annotation rides in the segment after
//!   its store, so two writes to *distinct* value registers, though they
//!   commute as memory operations, order their update intervals in real
//!   time — and P2 verdicts depend on that order. (Concretely: scan reads
//!   `V0`, writer 0 completes, writer 1 completes, scan reads `V1` — the
//!   view `(old0, new1)` is torn iff writer 0 finished *before* writer 1.)
//!   Reads are invisible to the interval checker — they produce no stores
//!   and P3 compares sequence vectors, not timestamps — so read/read
//!   commutation is still sound, and scans keep pruning against each other.
//!
//! A shared caveat: soundness assumes bodies touch shared state only
//! through scheduled accesses (no `peek` inside bodies), which holds for
//! the whole protocol stack.
//!
//! # Replay artifacts
//!
//! A violating schedule is serialized as a [`DecisionTrace`] — the list of
//! granted pids, JSON-rendered via [`crate::json`] under schema
//! [`TRACE_SCHEMA`]. Replay is a tolerant [`FnStrategy`]: each listed pid
//! is granted when runnable (skipped otherwise), and after the trace is
//! exhausted the lowest runnable pid runs — so a *prefix* of a run is a
//! complete, deterministic artifact. [`shrink_trace`] greedily removes
//! decisions (suffix first, then interior) while the violation persists,
//! yielding a minimal forcing prefix.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::json::Value;
use crate::metrics::{Counter, MetricsRegistry, Telemetry};
use crate::sched::{Decision, FnStrategy, PendingOp, ScheduleView, Strategy};
use crate::world::{Mode, ProcBody, RunReport, World};
use crate::history::OpKind;

/// JSON schema tag embedded in every serialized [`DecisionTrace`].
pub const TRACE_SCHEMA: &str = "bprc-trace-v1";

/// Which pairs of pending ops the sleep-set reduction may commute. Pick the
/// relation to match what the checker can observe — see the module docs'
/// soundness discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Independence {
    /// Independent when targeting distinct registers (or both reading the
    /// same one). Maximal pruning; sound for output-inspecting checkers.
    #[default]
    DistinctRegisters,
    /// Independent only when both ops are reads. Required for checkers
    /// that consume note timestamps (snapshot P1–P3), where even writes to
    /// distinct registers order the enclosing operation intervals.
    ReadsOnly,
}

/// Tuning knobs for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum decisions per path; deeper paths are cut and counted in
    /// [`ExploreReport::truncated`]. Keep ≤ ~40 for exhaustive runs.
    pub max_steps: u64,
    /// Safety valve: stop after this many world executions even if the
    /// space is not exhausted.
    pub max_schedules: u64,
    /// Enable the sleep-set partial-order reduction. Turning it off
    /// enumerates every interleaving — useful for cross-checking the
    /// reduction itself.
    pub reduction: bool,
    /// The independence relation the reduction prunes with; must be chosen
    /// to match the checker (see [`Independence`]).
    pub independence: Independence,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 40,
            max_schedules: 1_000_000,
            reduction: true,
            independence: Independence::DistinctRegisters,
        }
    }
}

/// A violating schedule found by [`explore`], ready to replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The decision prefix that forces the violation.
    pub trace: DecisionTrace,
    /// The checker's description of what went wrong.
    pub description: String,
}

/// What an exploration covered and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Complete (un-truncated, non-redundant) schedules executed and
    /// checked.
    pub schedules: u64,
    /// Branches skipped as redundant by the sleep-set reduction.
    pub pruned: u64,
    /// Paths cut by [`ExploreConfig::max_steps`] (still executed and
    /// checked as prefixes, but the subtree below the cut is abandoned).
    pub truncated: u64,
    /// Whether the bounded space was fully enumerated (no truncation, no
    /// `max_schedules` bail-out, no early stop on a violation).
    pub exhausted: bool,
    /// Deepest decision stack reached.
    pub max_depth: usize,
    /// First violation found, if any (exploration stops on it).
    pub violation: Option<Counterexample>,
    /// Explorer telemetry: `SchedulesExplored` / `SchedulesPruned` /
    /// `SchedulesTruncated` counters.
    pub telemetry: Telemetry,
    /// Wall-clock time spent exploring.
    pub elapsed_secs: f64,
}

impl ExploreReport {
    /// Executed schedules per wall-clock second.
    pub fn schedules_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            (self.schedules + self.truncated) as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// A serializable schedule: the pids granted at successive decision points.
///
/// Replay is tolerant: a listed pid that is not currently runnable is
/// skipped, and once the list is exhausted the lowest runnable pid is
/// granted — so a shrunk prefix still drives a complete deterministic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTrace {
    /// Number of processes in the world this trace drives.
    pub n: usize,
    /// Granted pids, in decision order.
    pub decisions: Vec<usize>,
}

impl DecisionTrace {
    /// Serializes to the [`TRACE_SCHEMA`] JSON document.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("schema", Value::from(TRACE_SCHEMA)),
            ("n", Value::from(self.n)),
            (
                "decisions",
                Value::Arr(self.decisions.iter().map(|&d| Value::from(d)).collect()),
            ),
        ])
    }

    /// Parses a [`TRACE_SCHEMA`] document, validating the schema tag and
    /// that every decision names a pid `< n`.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == TRACE_SCHEMA => {}
            Some(s) => return Err(format!("schema mismatch: got {s:?}, want {TRACE_SCHEMA:?}")),
            None => return Err("missing schema tag".into()),
        }
        let n = v
            .get("n")
            .and_then(|x| x.as_num())
            .ok_or("missing numeric field 'n'")? as usize;
        if n == 0 {
            return Err("'n' must be positive".into());
        }
        let arr = v
            .get("decisions")
            .and_then(|x| x.as_arr())
            .ok_or("missing array field 'decisions'")?;
        let mut decisions = Vec::with_capacity(arr.len());
        for (i, d) in arr.iter().enumerate() {
            let pid = d
                .as_num()
                .ok_or_else(|| format!("decisions[{i}] is not a number"))? as usize;
            if pid >= n {
                return Err(format!("decisions[{i}] = {pid} out of range (n = {n})"));
            }
            decisions.push(pid);
        }
        Ok(DecisionTrace { n, decisions })
    }

    /// The tolerant replayer: an [`FnStrategy`] that re-executes this trace.
    pub fn strategy(&self) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        self.replayer(None)
    }

    /// Like [`DecisionTrace::strategy`], but also appends every pid it
    /// actually grants (including fallback grants) to `log` — used by
    /// [`run_trace`] to canonicalize traces.
    pub fn recording_strategy(
        &self,
        log: Rc<RefCell<Vec<usize>>>,
    ) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        self.replayer(Some(log))
    }

    fn replayer(
        &self,
        log: Option<Rc<RefCell<Vec<usize>>>>,
    ) -> FnStrategy<impl FnMut(&ScheduleView<'_>) -> Decision + 'static> {
        let decisions = self.decisions.clone();
        let mut idx = 0usize;
        FnStrategy::new(move |view: &ScheduleView<'_>| {
            let mut pick = None;
            while idx < decisions.len() {
                let pid = decisions[idx];
                idx += 1;
                if view.runnable.contains(&pid) {
                    pick = Some(pid);
                    break;
                }
                // Not runnable (finished/crashed/hidden): skip the entry.
            }
            let pid = pick.unwrap_or(view.runnable[0]);
            if let Some(log) = &log {
                log.borrow_mut().push(pid);
            }
            Decision::Grant(pid)
        })
    }
}

/// Whether two pending ops of *different* processes commute under the
/// chosen relation (see the module docs for the soundness argument).
fn independent(rel: Independence, a: &PendingOp, b: &PendingOp) -> bool {
    let both_read = a.kind == OpKind::Read && b.kind == OpKind::Read;
    match rel {
        Independence::DistinctRegisters => a.reg != b.reg || both_read,
        Independence::ReadsOnly => both_read,
    }
}

/// One decision point on the DFS stack.
struct Node {
    /// Runnable pids and their pending ops when this node was first reached.
    enabled: Vec<(usize, PendingOp)>,
    /// Sleeping ops: provably redundant here because an equivalent
    /// interleaving already ran them in an explored sibling branch.
    sleep: Vec<(usize, PendingOp)>,
    /// Pids whose subtrees are fully explored.
    explored: Vec<usize>,
    /// The pid the current run takes at this node.
    chosen: usize,
}

impl Node {
    fn op_of(&self, pid: usize) -> PendingOp {
        self.enabled
            .iter()
            .find(|&&(p, _)| p == pid)
            .map(|&(_, op)| op)
            .expect("chosen/explored pids come from the enabled set")
    }
}

/// DFS state shared between the driver loop and the controller strategy.
struct Dfs {
    stack: Vec<Node>,
    /// Decision index within the current run.
    depth: usize,
    /// The current run stopped extending the stack (redundant or truncated):
    /// grant arbitrarily (lowest runnable) until the world finishes.
    dead: bool,
    /// The current run was abandoned because every enabled process slept.
    redundant: bool,
    /// The current run hit the step budget.
    truncated: bool,
    /// Branches proven redundant during this run (dead-node abandonment).
    pruned_now: u64,
    max_steps: u64,
    reduction: bool,
    independence: Independence,
}

/// The controller: replays the stack prefix, then extends it.
struct Controller {
    st: Rc<RefCell<Dfs>>,
}

impl Strategy for Controller {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        let mut st = self.st.borrow_mut();
        if st.dead {
            return Decision::Grant(view.runnable[0]);
        }
        if st.depth < st.stack.len() {
            // Replay segment: take the recorded choice and check the world
            // is behaving deterministically.
            let depth = st.depth;
            let node = &st.stack[depth];
            assert!(
                node.enabled.len() == view.runnable.len()
                    && node
                        .enabled
                        .iter()
                        .zip(view.runnable.iter())
                        .all(|(&(p, _), &q)| p == q),
                "nondeterministic workload: decision point {depth} saw runnable \
                 {:?} on a previous run but {:?} now — explore() factories must \
                 rebuild identical worlds",
                node.enabled.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
                view.runnable,
            );
            let chosen = node.chosen;
            st.depth += 1;
            return Decision::Grant(chosen);
        }
        if st.depth as u64 >= st.max_steps {
            st.dead = true;
            st.truncated = true;
            return Decision::Grant(view.runnable[0]);
        }
        // Extension segment: open a new node.
        let enabled: Vec<(usize, PendingOp)> = view
            .runnable
            .iter()
            .copied()
            .zip(view.pending.iter().copied())
            .collect();
        let sleep: Vec<(usize, PendingOp)> = if !st.reduction {
            Vec::new()
        } else if let Some(parent) = st.stack.last() {
            // Inherit the parent's sleepers (and its already-explored
            // choices) that are independent of the op the parent executed
            // to get here — dependent ones wake up.
            let executed = parent.op_of(parent.chosen);
            let rel = st.independence;
            parent
                .sleep
                .iter()
                .copied()
                .chain(parent.explored.iter().map(|&q| (q, parent.op_of(q))))
                .filter(|(q, qop)| *q != parent.chosen && independent(rel, qop, &executed))
                .filter(|(q, _)| enabled.iter().any(|&(p, _)| p == *q))
                .collect()
        } else {
            Vec::new()
        };
        let pick = enabled
            .iter()
            .map(|&(p, _)| p)
            .find(|p| !sleep.iter().any(|&(q, _)| q == *p));
        match pick {
            Some(pid) => {
                st.stack.push(Node {
                    enabled,
                    sleep,
                    explored: Vec::new(),
                    chosen: pid,
                });
                st.depth += 1;
                Decision::Grant(pid)
            }
            None => {
                // Everything enabled is asleep: this whole continuation is
                // covered by an explored sibling. Abandon the path.
                st.dead = true;
                st.redundant = true;
                st.pruned_now += enabled.len() as u64;
                Decision::Grant(view.runnable[0])
            }
        }
    }
}

/// Advances the stack to the next unexplored branch. Returns `true` when
/// the whole space is exhausted.
fn backtrack(s: &mut Dfs, report: &mut ExploreReport, metrics: &MetricsRegistry) -> bool {
    loop {
        let Some(node) = s.stack.last_mut() else {
            return true;
        };
        let prev = node.chosen;
        node.explored.push(prev);
        // Sleep-set rule: after exploring `prev`, it sleeps for the node's
        // remaining branches (it is in `explored`, which the child-sleep
        // computation treats as sleeping).
        let next = node
            .enabled
            .iter()
            .map(|&(p, _)| p)
            .find(|p| !node.explored.contains(p) && !node.sleep.iter().any(|&(q, _)| q == *p));
        if let Some(p) = next {
            node.chosen = p;
            return false;
        }
        let skipped = node
            .enabled
            .iter()
            .filter(|&&(p, _)| !node.explored.contains(&p))
            .count() as u64;
        if skipped > 0 {
            report.pruned += skipped;
            metrics.proc(0).incr(Counter::SchedulesPruned, skipped);
        }
        s.stack.pop();
    }
}

/// Bounded-exhaustive DFS over every schedule of the world `make` builds.
///
/// `make` must be a *deterministic factory*: each call rebuilds an identical
/// lockstep world plus bodies (same registers, same seed, same code). Every
/// executed schedule's [`RunReport`] is passed to `check`; a `Some(reason)`
/// stops exploration and reports the schedule as a replayable
/// [`Counterexample`].
///
/// # Panics
///
/// Panics if `make` builds a [`Mode::Free`] world, or if re-running the
/// factory does not reproduce the same runnable sets (a nondeterministic
/// workload).
pub fn explore<T, F, C>(cfg: &ExploreConfig, mut make: F, mut check: C) -> ExploreReport
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
    C: FnMut(&RunReport<T>) -> Option<String>,
{
    let metrics = MetricsRegistry::new(1);
    let start = Instant::now();
    let st = Rc::new(RefCell::new(Dfs {
        stack: Vec::new(),
        depth: 0,
        dead: false,
        redundant: false,
        truncated: false,
        pruned_now: 0,
        max_steps: cfg.max_steps,
        reduction: cfg.reduction,
        independence: cfg.independence,
    }));
    let mut report = ExploreReport {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        exhausted: false,
        max_depth: 0,
        violation: None,
        telemetry: Telemetry::empty(1),
        elapsed_secs: 0.0,
    };
    let mut runs: u64 = 0;
    loop {
        {
            let mut s = st.borrow_mut();
            s.depth = 0;
            s.dead = false;
            s.redundant = false;
            s.truncated = false;
        }
        let (mut world, bodies) = make();
        assert_eq!(
            world.mode(),
            Mode::Lockstep,
            "exploration needs the deterministic lockstep backend"
        );
        let run_report = world.run(bodies, Box::new(Controller { st: Rc::clone(&st) }));
        runs += 1;
        let (redundant, truncated, pruned_now) = {
            let mut s = st.borrow_mut();
            report.max_depth = report.max_depth.max(s.stack.len());
            (s.redundant, s.truncated, std::mem::take(&mut s.pruned_now))
        };
        if pruned_now > 0 {
            report.pruned += pruned_now;
            metrics.proc(0).incr(Counter::SchedulesPruned, pruned_now);
        }
        if truncated {
            report.truncated += 1;
            metrics.proc(0).incr(Counter::SchedulesTruncated, 1);
        } else if !redundant {
            report.schedules += 1;
            metrics.proc(0).incr(Counter::SchedulesExplored, 1);
        }
        // Redundant paths were already checked under an equivalent schedule;
        // truncated prefixes are real executions and still worth checking.
        if !redundant {
            if let Some(description) = check(&run_report) {
                let trace = DecisionTrace {
                    n: world.n(),
                    decisions: st.borrow().stack.iter().map(|nd| nd.chosen).collect(),
                };
                report.violation = Some(Counterexample { trace, description });
                break;
            }
        }
        if backtrack(&mut st.borrow_mut(), &mut report, &metrics) {
            report.exhausted = report.truncated == 0;
            break;
        }
        if runs >= cfg.max_schedules {
            break;
        }
    }
    report.telemetry = metrics.snapshot();
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

/// Replays `trace` against a fresh world from `make`, returning the run
/// report plus the *canonical* trace — the grants actually issued, which
/// may differ from `trace` when entries were skipped as not-runnable.
pub fn run_trace<T, F>(make: &mut F, trace: &DecisionTrace) -> (RunReport<T>, DecisionTrace)
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
{
    let log = Rc::new(RefCell::new(Vec::new()));
    let (mut world, bodies) = make();
    let report = world.run(bodies, Box::new(trace.recording_strategy(Rc::clone(&log))));
    let actual = DecisionTrace {
        n: trace.n,
        decisions: log.borrow().clone(),
    };
    (report, actual)
}

/// Greedily shrinks a violating trace while `check` still reports a
/// violation: first trims the suffix (the tolerant replayer completes any
/// prefix deterministically), then repeatedly deletes single interior
/// decisions to a fixpoint. Returns the minimal trace and the number of
/// candidate re-executions spent (callers feed that into the
/// `ShrinkRuns` telemetry counter).
pub fn shrink_trace<T, F, C>(
    make: &mut F,
    check: &mut C,
    trace: DecisionTrace,
) -> (DecisionTrace, u64)
where
    T: Send + 'static,
    F: FnMut() -> (World, Vec<ProcBody<T>>),
    C: FnMut(&RunReport<T>) -> Option<String>,
{
    let mut runs = 0u64;
    let mut best = trace;
    // Suffix trim: pop trailing decisions while the violation persists.
    while !best.decisions.is_empty() {
        let mut cand = best.clone();
        cand.decisions.pop();
        let (rep, _) = run_trace(make, &cand);
        runs += 1;
        if check(&rep).is_some() {
            best = cand;
        } else {
            break;
        }
    }
    // Interior deletion to fixpoint.
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.decisions.len() {
            let mut cand = best.clone();
            cand.decisions.remove(i);
            let (rep, _) = run_trace(make, &cand);
            runs += 1;
            if check(&rep).is_some() {
                best = cand;
                improved = true;
                // Index i now holds the next decision; retry in place.
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    (best, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    /// The flag-principle workload: each process raises its own flag then
    /// reads the other's. 4 ops, two per process.
    fn flag_factory(seed: u64) -> impl FnMut() -> (World, Vec<ProcBody<u32>>) {
        move || {
            let w = World::builder(2).seed(seed).build();
            let a = w.reg("a", 0u32);
            let b = w.reg("b", 0u32);
            let (a0, b0) = (a.clone(), b.clone());
            let (a1, b1) = (a, b);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    a0.write(ctx, 1)?;
                    b0.read(ctx)
                }),
                Box::new(move |ctx| {
                    b1.write(ctx, 1)?;
                    a1.read(ctx)
                }),
            ];
            (w, bodies)
        }
    }

    #[test]
    fn exhaustive_enumeration_without_reduction_counts_interleavings() {
        // 2 processes x 2 ops each: C(4,2) = 6 interleavings.
        let cfg = ExploreConfig {
            reduction: false,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, flag_factory(1), |_| None);
        assert_eq!(rep.schedules, 6);
        assert_eq!(rep.pruned, 0);
        assert!(rep.exhausted);
        assert_eq!(rep.max_depth, 4);
        assert!(rep.violation.is_none());
        assert_eq!(
            rep.telemetry.total(Counter::SchedulesExplored),
            rep.schedules
        );
    }

    #[test]
    fn reduction_preserves_reachable_outcomes() {
        let outcomes = |reduction: bool| {
            let cfg = ExploreConfig {
                reduction,
                ..ExploreConfig::default()
            };
            let mut seen: Vec<Vec<Option<u32>>> = Vec::new();
            let rep = explore(&cfg, flag_factory(2), |r| {
                if !seen.contains(&r.outputs) {
                    seen.push(r.outputs.clone());
                }
                None
            });
            seen.sort();
            (seen, rep)
        };
        let (full, full_rep) = outcomes(false);
        let (reduced, red_rep) = outcomes(true);
        assert_eq!(full, reduced, "reduction lost a reachable outcome");
        assert!(red_rep.schedules <= full_rep.schedules);
        assert!(
            red_rep.pruned > 0,
            "the flag workload has independent ops; something must prune"
        );
        assert_eq!(
            red_rep.telemetry.total(Counter::SchedulesPruned),
            red_rep.pruned
        );
        // No schedule lets both processes read 0 (flag principle).
        for o in &full {
            assert!(
                !(o[0] == Some(0) && o[1] == Some(0)),
                "flag principle violated by {o:?}"
            );
        }
    }

    /// One writer, one reader on a single register: exploring finds the
    /// read-before-write schedule, and shrinking reduces it to the single
    /// forcing decision (grant the reader first).
    fn race_factory() -> impl FnMut() -> (World, Vec<ProcBody<u32>>) {
        || {
            let w = World::builder(2).build();
            let r = w.reg("r", 0u32);
            let (r0, r1) = (r.clone(), r);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    r0.write(ctx, 1)?;
                    Ok(7)
                }),
                Box::new(move |ctx| r1.read(ctx)),
            ];
            (w, bodies)
        }
    }

    fn stale_read(r: &RunReport<u32>) -> Option<String> {
        (r.outputs[1] == Some(0)).then(|| "reader saw the initial value".to_string())
    }

    #[test]
    fn violation_is_found_shrunk_and_replayable() {
        let rep = explore(&ExploreConfig::default(), race_factory(), stale_read);
        let cex = rep.violation.expect("the stale read must be reachable");
        assert!(!rep.exhausted, "exploration stops at the violation");

        // Replay reproduces it.
        let mut make = race_factory();
        let (replayed, actual) = run_trace(&mut make, &cex.trace);
        assert_eq!(stale_read(&replayed), Some("reader saw the initial value".into()));
        assert_eq!(actual.decisions, cex.trace.decisions, "explorer traces are canonical");

        // Shrinking yields the single forcing decision: grant pid 1 first.
        let (min, shrink_runs) = shrink_trace(&mut make, &mut |r| stale_read(r), cex.trace);
        assert_eq!(min.decisions, vec![1]);
        assert!(shrink_runs > 0);
        let (rep2, _) = run_trace(&mut make, &min);
        assert!(stale_read(&rep2).is_some(), "shrunk trace still violates");
    }

    #[test]
    fn trace_json_round_trips() {
        let t = DecisionTrace {
            n: 3,
            decisions: vec![2, 0, 1, 1, 0],
        };
        let rendered = t.to_json().render();
        let parsed = crate::json::parse(&rendered).unwrap();
        let back = DecisionTrace::from_json(&parsed).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json().render(), rendered, "round-trip is byte-identical");
    }

    #[test]
    fn trace_json_rejects_bad_documents() {
        let bad = [
            r#"{"n": 2, "decisions": []}"#,
            r#"{"schema": "bprc-trace-v9", "n": 2, "decisions": []}"#,
            r#"{"schema": "bprc-trace-v1", "decisions": []}"#,
            r#"{"schema": "bprc-trace-v1", "n": 2, "decisions": [5]}"#,
            r#"{"schema": "bprc-trace-v1", "n": 0, "decisions": []}"#,
        ];
        for doc in bad {
            let v = crate::json::parse(doc).unwrap();
            assert!(DecisionTrace::from_json(&v).is_err(), "accepted {doc}");
        }
    }

    #[test]
    fn step_budget_truncates_and_reports() {
        let deep = || {
            let w = World::builder(2).build();
            let r = w.reg("r", 0u64);
            let (r0, r1) = (r.clone(), r);
            let bodies: Vec<ProcBody<u64>> = vec![
                Box::new(move |ctx| {
                    for k in 0..30 {
                        r0.write(ctx, k)?;
                    }
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    let mut last = 0;
                    for _ in 0..30 {
                        last = r1.read(ctx)?;
                    }
                    Ok(last)
                }),
            ];
            (w, bodies)
        };
        let cfg = ExploreConfig {
            max_steps: 6,
            max_schedules: 200,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, deep, |_| None);
        assert!(rep.truncated > 0, "60-op workload must hit a 6-step budget");
        assert!(!rep.exhausted);
        assert!(rep.max_depth <= 6);
        assert_eq!(
            rep.telemetry.total(Counter::SchedulesTruncated),
            rep.truncated
        );
    }

    /// The subtlety the `Independence` knob exists for: each process writes
    /// its own register, then marks the end of its "operation interval" with
    /// a note. The two writes commute as memory ops, but the checker reads
    /// the note *order* — a trace-sensitive property. Under
    /// `DistinctRegisters` the reduction prunes the interleaving where pid 1
    /// finishes first (it is Mazurkiewicz-equivalent to the explored one),
    /// so the "violation" is provably missed; `ReadsOnly` keeps write/write
    /// pairs dependent and finds it, matching the unreduced enumeration.
    #[test]
    fn interval_checkers_need_the_reads_only_relation() {
        use crate::history::Event;

        let factory = || {
            let w = World::builder(2).build();
            let a = w.reg("a", 0u32);
            let b = w.reg("b", 0u32);
            let bodies: Vec<ProcBody<u32>> = vec![
                Box::new(move |ctx| {
                    a.write(ctx, 1)?;
                    ctx.annotate("w:end", vec![]);
                    Ok(0)
                }),
                Box::new(move |ctx| {
                    b.write(ctx, 1)?;
                    ctx.annotate("w:end", vec![]);
                    Ok(0)
                }),
            ];
            (w, bodies)
        };
        let pid1_ends_first = |r: &RunReport<u32>| {
            let mut end = [None, None];
            for ev in r.history.as_ref().unwrap().events() {
                if let Event::Note { step, pid, note } = ev {
                    if note.label == "w:end" {
                        end[*pid] = Some(*step);
                    }
                }
            }
            (end[1] < end[0]).then(|| "pid 1's interval ended first".to_string())
        };
        let with = |independence: Independence, reduction: bool| {
            let cfg = ExploreConfig {
                reduction,
                independence,
                ..ExploreConfig::default()
            };
            explore(&cfg, factory, pid1_ends_first)
        };
        let unreduced = with(Independence::DistinctRegisters, false);
        assert!(
            unreduced.violation.is_some(),
            "full enumeration reaches the pid-1-first interleaving"
        );
        let reads_only = with(Independence::ReadsOnly, true);
        assert!(
            reads_only.violation.is_some(),
            "ReadsOnly keeps write/write dependent and must find it too"
        );
        let distinct = with(Independence::DistinctRegisters, true);
        assert!(
            distinct.violation.is_none(),
            "DistinctRegisters prunes the equivalent sibling — which is why \
             note-timestamp checkers must not use it"
        );
        assert!(distinct.pruned > 0);
    }

    #[test]
    fn max_schedules_valve_stops_exploration() {
        let cfg = ExploreConfig {
            reduction: false,
            max_schedules: 2,
            ..ExploreConfig::default()
        };
        let rep = explore(&cfg, flag_factory(0), |_| None);
        assert_eq!(rep.schedules, 2);
        assert!(!rep.exhausted);
    }
}
