//! A minimal JSON value — build, render, parse — with no external
//! dependencies.
//!
//! The telemetry plane ([`crate::metrics`]) and the bench exporter emit
//! JSON/JSONL; the CI schema validator parses it back. The workspace's
//! dependency policy (see DESIGN.md) keeps serialization hand-rolled, so
//! this module is the single shared implementation: a [`Value`] tree, a
//! writer that escapes strings per RFC 8259, and a recursive-descent
//! parser sufficient for round-tripping our own output (and any sane
//! JSON document).
//!
//! Numbers are stored as `f64`; counters in this codebase stay far below
//! 2^53, where that representation is exact.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// Insertion-ordered object (we never need hashing, and stable order
    /// makes output diffable).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for building an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with `indent`-space indentation (human-readable files).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Num(x as f64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Value {
        Value::Str(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::Str(x)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Walks a document and records every non-finite number with its path
/// (e.g. `$.latency.p99` or `$.entries[3]`). JSON has no `inf`/`NaN` —
/// [`Value::render`] writes them as `null`, silently changing the
/// document's type structure — so exporters and schema validators call
/// this before (respectively after) the file exists. Empty `errs`
/// growth means the document is clean.
pub fn check_finite(v: &Value, path: &str, errs: &mut Vec<String>) {
    match v {
        Value::Num(x) if !x.is_finite() => {
            errs.push(format!("{path}: non-finite number {x}"));
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                check_finite(item, &format!("{path}[{i}]"), errs);
            }
        }
        Value::Obj(pairs) => {
            for (k, item) in pairs {
                check_finite(item, &format!("{path}.{k}"), errs);
            }
        }
        _ => {}
    }
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; our own output
                            // never emits them, so map to the replacement
                            // character rather than failing the document.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::obj(vec![
            ("name", "scan \"retry\"\n".into()),
            ("count", 42u64.into()),
            ("ratio", 0.5.into()),
            ("ok", true.into()),
            ("none", Value::Null),
            (
                "items",
                Value::Arr(vec![1u64.into(), 2u64.into(), Value::Arr(vec![])]),
            ),
            ("empty", Value::Obj(vec![])),
        ]);
        let compact = v.render();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.render_pretty(2);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn renders_integers_without_exponent() {
        assert_eq!(Value::from(1_000_000u64).render(), "1000000");
        assert_eq!(Value::from(0u64).render(), "0");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 ] , \"s\" : \"x\\u0041\\n\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::Num(-25.0));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "xA\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"x\": 3, \"s\": \"hi\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(v.get("missing").is_none());
        assert!(v.get("x").unwrap().as_str().is_none());
    }

    /// Deterministic splitmix64 — the test is a seeded fuzzer, not a
    /// statistical one, so reproducibility beats entropy.
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn string(&mut self) -> String {
            // Bias hard toward the characters the escaper must handle.
            const POOL: &[char] = &[
                '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'a', 'é', '→', '𝄞', ' ', '/',
            ];
            let len = (self.next() % 12) as usize;
            (0..len)
                .map(|_| POOL[(self.next() as usize) % POOL.len()])
                .collect()
        }

        fn value(&mut self, depth: usize) -> Value {
            let reach = if depth == 0 { 6 } else { 4 };
            match self.next() % reach {
                0 => Value::Null,
                1 => Value::Bool(self.next() % 2 == 0),
                2 => match self.next() % 3 {
                    // Integers (the dominant case in telemetry), small
                    // floats, and floats needing shortest-round-trip.
                    0 => Value::Num((self.next() % 1_000_000) as f64),
                    1 => Value::Num((self.next() % 1000) as f64 / 8.0),
                    _ => Value::Num(f64::from_bits(
                        // Clamp the exponent into the finite range.
                        (self.next() & 0x3fff_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000,
                    )),
                },
                3 => Value::Str(self.string()),
                4 => {
                    let len = (self.next() % 5) as usize;
                    Value::Arr((0..len).map(|_| self.value(depth + 1)).collect())
                }
                _ => {
                    let len = (self.next() % 5) as usize;
                    Value::Obj(
                        (0..len)
                            .map(|i| (format!("k{i}_{}", self.string()), self.value(depth + 1)))
                            .collect(),
                    )
                }
            }
        }
    }

    #[test]
    fn fuzzed_values_round_trip_through_render_and_parse() {
        let mut g = Gen(0xb41c_5eed);
        for case in 0..500 {
            let v = g.value(0);
            let mut errs = Vec::new();
            check_finite(&v, "$", &mut errs);
            assert!(errs.is_empty(), "generator only makes finite numbers");
            let compact = v.render();
            assert_eq!(
                parse(&compact).unwrap(),
                v,
                "case {case}: compact round trip of {compact}"
            );
            let pretty = v.render_pretty(2);
            assert_eq!(
                parse(&pretty).unwrap(),
                v,
                "case {case}: pretty round trip of {pretty}"
            );
        }
    }

    #[test]
    fn check_finite_names_the_offending_path() {
        let v = Value::obj(vec![
            ("ok", 1u64.into()),
            ("latency", Value::obj(vec![("p99", Value::Num(f64::NAN))])),
            (
                "series",
                Value::Arr(vec![0u64.into(), Value::Num(f64::INFINITY)]),
            ),
        ]);
        let mut errs = Vec::new();
        check_finite(&v, "$", &mut errs);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("$.latency.p99"), "{errs:?}");
        assert!(errs[1].contains("$.series[1]"), "{errs:?}");
        // The renderer's stand-in for non-finite numbers is null — the
        // type change check_finite exists to catch before it happens.
        assert_eq!(Value::Num(f64::NAN).render(), "null");
    }
}
