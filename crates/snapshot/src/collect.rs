//! Shared double-collect plumbing for the two snapshot constructions.
//!
//! [`crate::memory`] (the paper's bounded handshake construction) and
//! [`crate::waitfree`] (the AADGMS wait-free construction) used to copy
//! this machinery from each other: the take-once port gate, the
//! ghost-seq-keyed buffer-reuse collect pass, and the attempt/stats
//! bookkeeping that keeps the port-local [`ScanStats`] and the metrics
//! plane telling the same story. It lives here once now; the two modules
//! keep only what genuinely differs (arrows and the stability rule on one
//! side, movers and view borrowing on the other).
//!
//! Everything here is order-preserving relative to the original inlined
//! code — the same counters bump in the same sequence around the same
//! scheduled accesses — which is what keeps the refactor observationally
//! invisible (pinned by the determinism fingerprints in
//! `tests/determinism.rs`).

use std::sync::atomic::{AtomicBool, Ordering};

use bprc_registers::Swmr;
use bprc_sim::tracing::{now_nanos, EventKind, Hist};
use bprc_sim::{Counter, Ctx, Halted, PhaseKind};

use crate::memory::{labels, ScanStats};

/// A register slot carrying a *ghost* sequence number: per-writer strictly
/// monotonic, invisible to the algorithm. Equal seq ⟹ the very same write,
/// which is what lets a collect skip re-cloning an unchanged slot.
pub(crate) trait SeqSlot: Clone + Send + Sync + 'static {
    /// The slot's ghost sequence number.
    fn ghost_seq(&self) -> u64;
}

/// Marks port `pid` taken (panicking if it already was) — every backend
/// hands each process its port exactly once.
pub(crate) fn claim_port(taken: &[AtomicBool], pid: usize) {
    assert!(pid < taken.len(), "pid {pid} out of range");
    assert!(
        !taken[pid].swap(true, Ordering::SeqCst),
        "port {pid} taken twice"
    );
}

/// One collect pass over everyone else's register, into the persistent
/// buffer `buf`, with **batched validation** through the per-slot version
/// tokens `vers` (see [`bprc_sim::Reg::read_changed`]): a slot whose
/// register's seqlock version word still equals the cached token is
/// provably untouched — the payload words are never loaded, the slot is
/// not unpacked, nothing is cloned. With the value registers on a
/// [`bprc_sim::World::value_slab`], the version words of all `n` slots are
/// contiguous, so a steady pass sweeps ⌈n/8⌉ cache lines and deep-copies
/// only the (usually few) changed slots. On backings without version words
/// (`NO_VERSION` tokens) the pass degrades to the previous behaviour:
/// every slot is read, and the ghost-seq comparison still skips the clone.
///
/// Returns the number of register reads performed (the caller flushes them
/// into stats once the attempt's accounting point is reached). Each read is
/// still one scheduled step — the packing changes how a granted access
/// touches memory, never how many accesses happen.
///
/// # Errors
///
/// Returns [`Halted`] if the scheduler stopped this process mid-collect.
pub(crate) fn collect_pass<S: SeqSlot>(
    ctx: &mut Ctx,
    values: &[Swmr<S>],
    me: usize,
    buf: &mut [S],
    vers: &mut [u64],
) -> Result<u64, Halted> {
    let mut reads = 0;
    for (j, reg) in values.iter().enumerate() {
        if j == me {
            continue;
        }
        let slot = &mut buf[j];
        reads += 1;
        vers[j] = reg.read_changed(ctx, vers[j], |s| {
            if slot.ghost_seq() != s.ghost_seq() {
                slot.clone_from(s);
            }
        })?;
    }
    Ok(reads)
}

/// The open half of one scan's latency measurement: stamped by
/// [`begin_scan`], closed by [`finish_scan`] into the
/// [`Hist::ScanLatencyNs`] histogram.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScanSpan {
    start_nanos: u64,
}

/// Opens a scan: the `SCAN_START` annotation, the scan phase span, and
/// the latency stamp the matching [`finish_scan`] closes.
pub(crate) fn begin_scan(ctx: &mut Ctx) -> ScanSpan {
    ctx.annotate(labels::SCAN_START, vec![]);
    ctx.phase(PhaseKind::Scan);
    ScanSpan {
        start_nanos: now_nanos(),
    }
}

/// Counts attempts across one scan's retry loop, mirroring every bump into
/// both the port-local [`ScanStats`] and the metrics plane.
#[derive(Default)]
pub(crate) struct AttemptTracker {
    tries: u64,
}

impl AttemptTracker {
    /// Opens the next attempt: bumps `attempts`/`ScanAttempts`, and
    /// `ScanRetries` from the second attempt on.
    pub(crate) fn begin_attempt(&mut self, ctx: &mut Ctx, stats: &ScanStats) {
        self.tries += 1;
        stats.attempts.fetch_add(1, Ordering::Relaxed);
        ctx.count(Counter::ScanAttempts, 1);
        if self.tries > 1 {
            ctx.count(Counter::ScanRetries, 1);
        }
        ctx.trace_event(EventKind::ScanBegin, self.tries);
    }

    /// Attempts opened so far.
    pub(crate) fn tries(&self) -> u64 {
        self.tries
    }
}

/// Flushes one attempt's collect reads into stats — called on **every**
/// attempt exit path (success, retry, starvation), so a scan abandoned by
/// its budget still accounts the collect work it did.
pub(crate) fn flush_collect_reads(ctx: &mut Ctx, stats: &ScanStats, reads: u64) {
    stats.collect_reads.fetch_add(reads, Ordering::Relaxed);
    ctx.count(Counter::CollectReads, reads);
    ctx.trace_event(EventKind::CollectPass, reads);
}

/// Closes a successful scan: the `SCAN_END` annotation (seqs built lazily —
/// only when the world records history), the scan counters, the
/// [`EventKind::ScanEnd`] ring event (arg: attempts it took), and the
/// scan-latency histogram sample closing `span`.
pub(crate) fn finish_scan(
    ctx: &mut Ctx,
    stats: &ScanStats,
    span: ScanSpan,
    attempts: u64,
    seqs: impl FnOnce() -> Vec<u64>,
) {
    if ctx.recording() {
        ctx.annotate(labels::SCAN_END, seqs());
    }
    stats.scans.fetch_add(1, Ordering::Relaxed);
    ctx.count(Counter::Scans, 1);
    ctx.trace_event(EventKind::ScanEnd, attempts);
    ctx.hist_record(
        Hist::ScanLatencyNs,
        now_nanos().saturating_sub(span.start_nanos),
    );
}

/// Closes a *lazy* scan that revalidated and reused its previous view
/// instead of running a full double collect. Same success footprint as
/// [`finish_scan`] — a reused view IS a completed scan: `SCAN_END`
/// annotation, `scans`/[`Counter::Scans`], the [`EventKind::ScanEnd`] ring
/// event — plus the reuse-specific telemetry that keeps amortized scans
/// distinguishable from full collects: [`Counter::LazyScanHits`], an
/// [`EventKind::ScanReuse`] ring event (arg: probe reads performed), and
/// the probe latency into [`Hist::LazyScanLatencyNs`] rather than the
/// full-collect histogram.
pub(crate) fn finish_reuse(
    ctx: &mut Ctx,
    stats: &ScanStats,
    span: ScanSpan,
    attempts: u64,
    probe_reads: u64,
    seqs: impl FnOnce() -> Vec<u64>,
) {
    if ctx.recording() {
        ctx.annotate(labels::SCAN_END, seqs());
    }
    stats.scans.fetch_add(1, Ordering::Relaxed);
    ctx.count(Counter::Scans, 1);
    ctx.count(Counter::LazyScanHits, 1);
    ctx.trace_event(EventKind::ScanReuse, probe_reads);
    ctx.trace_event(EventKind::ScanEnd, attempts);
    ctx.hist_record(
        Hist::LazyScanLatencyNs,
        now_nanos().saturating_sub(span.start_nanos),
    );
}

/// Records a starved scan (budget exhausted) and returns the halt the
/// caller propagates.
pub(crate) fn starve_scan(ctx: &mut Ctx, stats: &ScanStats) -> Halted {
    stats.starved.fetch_add(1, Ordering::Relaxed);
    ctx.count(Counter::ScanStarved, 1);
    Halted::ScanStarved
}
