//! The scannable-memory construction (paper §2.2).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bprc_registers::{ArrowCell, Swmr};
use bprc_sim::{Counter, Ctx, FastPod, Halted, PhaseKind, World, NO_VERSION};

/// History annotation labels used by this construction (consumed by
/// [`crate::checker`]).
pub mod labels {
    /// Start of an update; data = `[seq]`.
    pub const UPD_START: &str = "snap:upd:start";
    /// End of an update; data = `[seq]`.
    pub const UPD_END: &str = "snap:upd:end";
    /// Start of a scan; data = `[]`.
    pub const SCAN_START: &str = "snap:scan:start";
    /// Successful end of a scan; data = the returned seq per process.
    pub const SCAN_END: &str = "snap:scan:end";
}

/// What one cell of the memory holds: the payload, the paper's alternating
/// bit, and a *ghost* sequence number used only by the offline checker
/// (the algorithm never branches on it — the double collect compares
/// `(value, toggle)` only, so ABA hazards are real and must be handled by
/// the toggle, exactly as in the paper).
#[derive(Debug, Clone)]
struct Slot<T> {
    value: T,
    toggle: bool,
    seq: u64,
}

impl<T: PartialEq> Slot<T> {
    /// Algorithm-visible equality: payload and toggle, *not* the ghost seq.
    fn same_visible(&self, other: &Self) -> bool {
        self.value == other.value && self.toggle == other.toggle
    }
}

impl<T: Clone + Send + Sync + 'static> crate::collect::SeqSlot for Slot<T> {
    fn ghost_seq(&self) -> u64 {
        self.seq
    }
}

/// Slots of small POD payloads can ride the seqlock register plane: the
/// packed layout is the payload words, then the toggle, then the ghost seq.
/// Slots too wide for the plane ([`bprc_sim::MAX_FAST_WORDS`] words)
/// transparently keep the locked backing — the fast constructor checks.
impl<T: FastPod> FastPod for Slot<T> {
    const WORDS: usize = T::WORDS + 2;

    fn pack(&self, out: &mut [u64]) {
        self.value.pack(&mut out[..T::WORDS]);
        out[T::WORDS] = u64::from(self.toggle);
        out[T::WORDS + 1] = self.seq;
    }

    fn unpack(words: &[u64]) -> Self {
        Slot {
            value: T::unpack(&words[..T::WORDS]),
            toggle: words[T::WORDS] != 0,
            seq: words[T::WORDS + 1],
        }
    }
}

/// Metadata the offline checker needs to interpret a history.
#[derive(Debug, Clone)]
pub struct SnapshotMeta {
    /// `value_regs[i]` is the register id of `V_i`.
    pub value_regs: Vec<usize>,
}

/// Counters exposed per port, updated during the run.
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Completed scans.
    pub scans: AtomicU64,
    /// Scan attempts (a scan that returns first try counts 1).
    pub attempts: AtomicU64,
    /// Completed updates.
    pub updates: AtomicU64,
    /// Scans abandoned because the retry budget ran out
    /// (see [`ScannableMemory::set_scan_retry_budget`]).
    pub starved: AtomicU64,
    /// Value-register reads performed inside collects. Flushed at the end
    /// of **every** attempt — including the final attempt of a scan that
    /// exhausts its budget — so a starved scan's collect work is accounted
    /// before [`Halted::ScanStarved`] is returned.
    pub collect_reads: AtomicU64,
}

struct Shared<T, A> {
    n: usize,
    values: Vec<Swmr<Slot<T>>>,
    /// `arrows[w][s]`: raised by writer `w` toward scanner `s` (None on the
    /// diagonal).
    arrows: Vec<Vec<Option<A>>>,
    /// Max double-collect attempts per scan; 0 = unbounded (the paper's
    /// semantics, and the default).
    scan_retry_budget: AtomicU64,
    stats: Vec<ScanStats>,
    port_taken: Vec<AtomicBool>,
}

/// The paper's bounded scannable memory over `n` processes.
///
/// Construct once, then hand each process its [`Port`] (see
/// [`ScannableMemory::port`]). Generic over the arrow implementation — see
/// [`bprc_registers::ArrowCell`].
pub struct ScannableMemory<T, A> {
    shared: Arc<Shared<T, A>>,
}

impl<T, A> Clone for ScannableMemory<T, A> {
    fn clone(&self) -> Self {
        ScannableMemory {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T, A> std::fmt::Debug for ScannableMemory<T, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScannableMemory")
            .field("n", &self.shared.n)
            .finish()
    }
}

impl<T, A> ScannableMemory<T, A>
where
    T: Clone + PartialEq + Send + Sync + 'static,
    A: ArrowCell,
{
    /// Allocates the memory: `n` value registers (initialized to `init` with
    /// ghost seq 0) and `n·(n−1)` arrows, all lowered.
    pub fn new(world: &World, n: usize, init: T) -> Self {
        Self::build(world, n, init, Swmr::new)
    }

    /// Like [`ScannableMemory::new`], but allocates the value registers on
    /// the world's fast register plane — as lanes of one shared
    /// [`value slab`](World::value_slab), so under the packed plane the `n`
    /// seqlock version words sit contiguously and a steady collect's
    /// batched validation sweeps ⌈n/8⌉ cache lines instead of `n`.
    /// Payloads whose packed slot exceeds the plane's width — and worlds
    /// built with `RegisterPlane::Locked` — transparently keep the locked
    /// cells, so this only ever changes the memory representation, never
    /// semantics.
    pub fn new_fast(world: &World, n: usize, init: T) -> Self
    where
        T: FastPod,
    {
        let slab = world.value_slab(n, Slot::<T>::WORDS);
        Self::build(world, n, init, move |w, name, i, slot| {
            Swmr::new_lane(w, &slab, i, name, i, slot)
        })
    }

    fn build(
        world: &World,
        n: usize,
        init: T,
        mk: impl Fn(&World, String, usize, Slot<T>) -> Swmr<Slot<T>>,
    ) -> Self {
        assert!(n >= 1, "need at least one process");
        assert_eq!(world.n(), n, "memory size must match the world");
        let values = (0..n)
            .map(|i| {
                mk(
                    world,
                    format!("V_{i}"),
                    i,
                    Slot {
                        value: init.clone(),
                        toggle: false,
                        seq: 0,
                    },
                )
            })
            .collect();
        let arrows = (0..n)
            .map(|w| {
                (0..n)
                    .map(|s| {
                        if w == s {
                            None
                        } else {
                            Some(A::alloc(world, &format!("A_{w}_{s}"), w, s))
                        }
                    })
                    .collect()
            })
            .collect();
        ScannableMemory {
            shared: Arc::new(Shared {
                n,
                values,
                arrows,
                scan_retry_budget: AtomicU64::new(0),
                stats: (0..n).map(|_| ScanStats::default()).collect(),
                port_taken: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Takes process `pid`'s port. Each port may be taken once.
    ///
    /// # Panics
    ///
    /// Panics if the port was already taken or `pid` is out of range.
    pub fn port(&self, pid: usize) -> Port<T, A> {
        crate::collect::claim_port(&self.shared.port_taken, pid);
        let snap: Vec<Slot<T>> = self.shared.values.iter().map(|v| v.peek()).collect();
        let n = self.shared.n;
        Port {
            shared: Arc::clone(&self.shared),
            me: pid,
            last: snap[pid].clone(),
            seq: 0,
            c1: snap.clone(),
            c2: snap,
            v1: vec![NO_VERSION; n],
            v2: vec![NO_VERSION; n],
            lazy: false,
            view_valid: false,
        }
    }

    /// Checker metadata (register-id ↦ process mapping).
    pub fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            value_regs: self.shared.values.iter().map(|v| v.id()).collect(),
        }
    }

    /// Statistics for process `pid`'s port.
    pub fn stats(&self, pid: usize) -> &ScanStats {
        &self.shared.stats[pid]
    }

    /// Bounds (or unbounds, with `None`) the number of double-collect
    /// attempts a single scan may make before degrading gracefully.
    ///
    /// The paper's scan retries until stable — correct, but not wait-free:
    /// a hostile scheduler driving a writer forever starves the scan. With
    /// a budget of `k`, a scan that fails to stabilize within `k` attempts
    /// returns [`Halted::ScanStarved`] instead of livelocking, and the
    /// port's [`ScanStats::starved`] counter is bumped. The default is
    /// unbounded (the paper's semantics); `Some(0)` is normalized to
    /// `Some(1)` (a scan always gets at least one attempt).
    pub fn set_scan_retry_budget(&self, budget: Option<u64>) {
        let raw = match budget {
            None => 0,
            Some(k) => k.max(1),
        };
        self.shared.scan_retry_budget.store(raw, Ordering::Relaxed);
    }

    /// The current scan retry budget (`None` = unbounded).
    pub fn scan_retry_budget(&self) -> Option<u64> {
        match self.shared.scan_retry_budget.load(Ordering::Relaxed) {
            0 => None,
            k => Some(k),
        }
    }

    /// Unscheduled view of current contents (diagnostics/adversaries only).
    pub fn peek_values(&self) -> Vec<T> {
        self.shared.values.iter().map(|v| v.peek().value).collect()
    }
}

/// Process `pid`'s handle on the scannable memory.
///
/// Owns the process-local state the paper keeps implicitly: the last value
/// written (whose toggle the next write flips, and which fills the process's
/// own slot in scan views) and the ghost sequence counter.
pub struct Port<T, A> {
    shared: Arc<Shared<T, A>>,
    me: usize,
    last: Slot<T>,
    seq: u64,
    /// Persistent double-collect buffers, reused across attempts and across
    /// scans — `scan` allocates nothing per attempt. A buffered slot whose
    /// ghost seq matches the register's is known identical (each writer's
    /// seq is strictly monotonic, so equal seq ⟹ the very same write) and
    /// is not re-cloned. The seq is *ghost* state: it drives this caching
    /// and the checker, never the algorithm's stability decision.
    c1: Vec<Slot<T>>,
    c2: Vec<Slot<T>>,
    /// Per-slot seqlock version tokens keyed to `c1`/`c2` (see
    /// [`bprc_sim::Reg::read_changed`]): when a register's version word
    /// still equals the token, the payload is provably untouched and the
    /// collect skips loading/unpacking it entirely. `NO_VERSION` on
    /// backings without version words — those always read.
    v1: Vec<u64>,
    v2: Vec<u64>,
    /// Amortized-scan mode (opt-in, see [`Port::set_lazy`]).
    lazy: bool,
    /// Whether `c2` still holds the view certified by the last successful
    /// scan, with no local update since — the precondition for a lazy
    /// scan's revalidate-and-reuse fast path.
    view_valid: bool,
}

impl<T, A> std::fmt::Debug for Port<T, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Port")
            .field("me", &self.me)
            .field("seq", &self.seq)
            .finish()
    }
}

impl<T, A> Port<T, A>
where
    T: Clone + PartialEq + Send + Sync + 'static,
    A: ArrowCell,
{
    /// This port's process id.
    pub fn pid(&self) -> usize {
        self.me
    }

    /// The value this process last wrote (initially the memory's `init`).
    pub fn last_written(&self) -> &T {
        &self.last.value
    }

    /// Switches the port's amortized *lazy-scan* mode (off by default).
    ///
    /// A lazy scan whose previous view is still intact first runs a single
    /// **probe pass**: one version-token read per other slot, no arrow
    /// writes. If every probe certifies its register unwritten since the
    /// view was taken, the old view is returned as-is — it linearizes at
    /// the first probe read (each probe proves no write completed between
    /// the old scan and itself, so at the first probe's instant every
    /// register still holds its viewed value). Any change falls back into
    /// the normal double-collect loop, with the probe's reads retained as a
    /// warm cache. The probe counts as a scan attempt, so the
    /// `ScanAttempts == Scans + ScanRetries` telemetry identity holds
    /// either way; a reuse is reported via [`Counter::LazyScanHits`]
    /// (`bprc_sim::Counter`), an `EventKind::ScanReuse` ring event, and the
    /// `Hist::LazyScanLatencyNs` histogram, keeping it distinguishable
    /// from full collects in profiles.
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
    }

    /// Whether amortized lazy-scan mode is on.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Publishes `value` (the paper's `write` procedure): raise every arrow
    /// `A_{me,j}`, then atomically write `(value, !toggle)` into `V_me`.
    ///
    /// Wait-free: exactly `n−1` raises plus one register write.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn update(&mut self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        let seq = self.seq + 1;
        ctx.annotate(labels::UPD_START, vec![seq]);
        ctx.phase(PhaseKind::Write);
        for j in 0..self.shared.n {
            if let Some(a) = &self.shared.arrows[self.me][j] {
                a.raise(ctx)?;
            }
        }
        // Weak-memory order: every raise must be globally visible before
        // the value write can land, or a PSO store buffer would let a
        // scanner collect the new value with no interference signal (a
        // free no-op under sequential consistency).
        ctx.fence()?;
        let slot = Slot {
            value,
            toggle: !self.last.toggle,
            seq,
        };
        self.shared.values[self.me].write_tagged(ctx, slot.clone(), seq)?;
        // Release: the value store must drain before update() returns. A
        // store still sitting in this process's buffer after the call
        // completes would let a scan that *starts later* return the old
        // value — a real-time regularity (P1) violation no schedule can
        // excuse. Deleting this fence is the `missing-fence` gate fixture.
        ctx.fence()?;
        self.last = slot;
        self.seq = seq;
        // The cached view no longer includes this process's latest write —
        // a lazy scan must not reuse it.
        self.view_valid = false;
        ctx.annotate(labels::UPD_END, vec![seq]);
        self.shared.stats[self.me]
            .updates
            .fetch_add(1, Ordering::Relaxed);
        ctx.count(Counter::Updates, 1);
        Ok(())
    }

    /// Takes a snapshot scan (the paper's `scan` function): lower the arrows
    /// aimed at this process, collect all values twice, re-read the arrows,
    /// and retry from the top unless both collects agree and no arrow was
    /// re-raised. Returns the second collect, with the process's own slot
    /// taken from its local copy.
    ///
    /// Not wait-free: retries are caused by (and only by) concurrent
    /// updates, so an adversary driving a writer forever can starve a scan —
    /// the world's step limit converts that into [`Halted::StepLimit`], or,
    /// with a retry budget configured
    /// (see [`ScannableMemory::set_scan_retry_budget`]), the scan itself
    /// degrades gracefully into [`Halted::ScanStarved`].
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process (including
    /// via the step limit under a starving schedule), or
    /// [`Halted::ScanStarved`] when a configured retry budget runs out.
    pub fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted> {
        self.scan_slots(ctx)?;
        Ok(self.c2.iter().map(|s| s.value.clone()).collect())
    }

    /// Like [`scan`](Port::scan) but writes the view into `out`, reusing its
    /// capacity (and, via `clone_from`, any heap the elements already own).
    /// The hot update/scan loops of the consensus backends call this — a
    /// steady-state scan performs **zero** allocations.
    ///
    /// # Errors
    ///
    /// As for [`scan`](Port::scan).
    pub fn scan_into(&mut self, ctx: &mut Ctx, out: &mut Vec<T>) -> Result<(), Halted> {
        self.scan_slots(ctx)?;
        if out.len() == self.shared.n {
            for (o, s) in out.iter_mut().zip(&self.c2) {
                o.clone_from(&s.value);
            }
        } else {
            out.clear();
            out.extend(self.c2.iter().map(|s| s.value.clone()));
        }
        Ok(())
    }

    /// On success the view is left in `self.c2` (own slot included).
    ///
    /// Per attempt: lower `n−1` arrows, collect twice into the persistent
    /// buffers, re-read the arrows. A *successful* attempt performs exactly
    /// the same `4(n−1)` scheduled accesses as the original implementation
    /// (the refinement tests pin this); only **failing** attempts exit
    /// early — the second collect stops at the first visible
    /// `(value, toggle)` mismatch and the arrow re-read is skipped after a
    /// mismatch (or stops at the first raised arrow). A failed attempt is
    /// discarded wholesale, so doing less doomed work changes no outcome.
    fn scan_slots(&mut self, ctx: &mut Ctx) -> Result<(), Halted> {
        let n = self.shared.n;
        let budget = self.shared.scan_retry_budget.load(Ordering::Relaxed);
        let mut attempt = crate::collect::AttemptTracker::default();
        let span = crate::collect::begin_scan(ctx);
        // Lazy fast path: revalidate the previous view with one probe pass
        // and reuse it if nothing moved (see [`Port::set_lazy`]). A failed
        // probe falls through into the normal loop below — the probe's
        // buffers are kept as a warm cache, but they are NOT the attempt's
        // protocol collect (arrows must be lowered before that one starts).
        if self.lazy && self.view_valid {
            attempt.begin_attempt(ctx, &self.shared.stats[self.me]);
            let mut reads = 0;
            let mut changed = false;
            {
                let (c2, v2) = (&mut self.c2, &mut self.v2);
                for j in 0..n {
                    if j == self.me {
                        continue;
                    }
                    reads += 1;
                    let slot = &mut c2[j];
                    let mut delta = false;
                    v2[j] = self.shared.values[j].read_changed(ctx, v2[j], |s| {
                        if slot.seq != s.seq {
                            slot.clone_from(s);
                            delta = true;
                        }
                    })?;
                    if delta {
                        // Doomed reuse — stop probing (failure path only).
                        changed = true;
                        break;
                    }
                }
            }
            crate::collect::flush_collect_reads(ctx, &self.shared.stats[self.me], reads);
            if !changed {
                let c2 = &self.c2;
                crate::collect::finish_reuse(
                    ctx,
                    &self.shared.stats[self.me],
                    span,
                    attempt.tries(),
                    reads,
                    || c2.iter().map(|s| s.seq).collect(),
                );
                return Ok(());
            }
            self.view_valid = false;
            if budget != 0 && attempt.tries() >= budget {
                return Err(crate::collect::starve_scan(
                    ctx,
                    &self.shared.stats[self.me],
                ));
            }
        }
        loop {
            attempt.begin_attempt(ctx, &self.shared.stats[self.me]);
            // Lower all arrows aimed at me.
            for j in 0..n {
                if let Some(a) = &self.shared.arrows[j][self.me] {
                    a.lower(ctx)?;
                }
            }
            // Weak-memory order: drain the lowers before collecting, so the
            // arrow re-read below hits shared memory instead of forwarding
            // this scanner's own stale (buffered) lower — which would mask a
            // concurrent re-raise (a free no-op under sequential
            // consistency).
            ctx.fence()?;
            // First collect, into the persistent buffer (the shared pass
            // batch-validates through the version tokens and skips
            // re-cloning slots whose ghost seq is unchanged).
            let mut reads = crate::collect::collect_pass(
                ctx,
                &self.shared.values,
                self.me,
                &mut self.c1,
                &mut self.v1,
            )?;
            // Second collect, compared against the first as it goes: the
            // attempt is doomed at the first visible mismatch, so stop
            // collecting there (failure path only). The comparison runs on
            // the buffer *after* the access — the access leaves the buffer
            // equal to the register's visible content (token unchanged ⟹
            // register unwritten ⟹ buffer still current; otherwise the
            // ghost-seq check re-cloned it), so this is the same predicate
            // the register-side comparison computed.
            let mut mismatch = false;
            {
                let (c2, v2) = (&mut self.c2, &mut self.v2);
                for j in 0..n {
                    if j == self.me {
                        continue;
                    }
                    reads += 1;
                    let slot = &mut c2[j];
                    v2[j] = self.shared.values[j].read_changed(ctx, v2[j], |s| {
                        if slot.seq != s.seq {
                            slot.clone_from(s);
                        }
                    })?;
                    if !c2[j].same_visible(&self.c1[j]) {
                        mismatch = true;
                        break;
                    }
                }
            }
            // Re-read arrows — skipped entirely after a mismatch, and a
            // raised arrow short-circuits (both failure paths; a successful
            // attempt always performs all n−1 checks).
            let mut raised = false;
            if !mismatch {
                for j in 0..n {
                    if let Some(a) = &self.shared.arrows[j][self.me] {
                        if a.is_raised(ctx)? {
                            raised = true;
                            break;
                        }
                    }
                }
            }
            // Account this attempt's collect reads whether it succeeded,
            // retries, or is about to starve.
            crate::collect::flush_collect_reads(ctx, &self.shared.stats[self.me], reads);
            if !mismatch && !raised {
                let me = self.me;
                if self.c2[me].seq != self.last.seq {
                    self.c2[me].clone_from(&self.last);
                }
                self.view_valid = true;
                let c2 = &self.c2;
                crate::collect::finish_scan(
                    ctx,
                    &self.shared.stats[me],
                    span,
                    attempt.tries(),
                    || c2.iter().map(|s| s.seq).collect(),
                );
                return Ok(());
            }
            if budget != 0 && attempt.tries() >= budget {
                // Budget exhausted: report starvation instead of retrying
                // forever under writer pressure.
                return Err(crate::collect::starve_scan(
                    ctx,
                    &self.shared.stats[self.me],
                ));
            }
        }
    }

    /// The original allocating scan, kept as the reference implementation:
    /// fresh collect vectors every attempt, full second collect, full arrow
    /// re-read, every register access a plain one-shot `read` that clones
    /// the whole slot — no version tokens, no buffer reuse, no early exits.
    /// The equivalence tests check the optimized scans against it, and the
    /// throughput bench's "before" configuration measures it (on the locked
    /// register plane) for an honest before/after comparison. Not part of
    /// the supported API.
    ///
    /// # Errors
    ///
    /// As for [`scan`](Port::scan).
    #[doc(hidden)]
    pub fn scan_legacy(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted> {
        let n = self.shared.n;
        let budget = self.shared.scan_retry_budget.load(Ordering::Relaxed);
        let mut tries: u64 = 0;
        ctx.annotate(labels::SCAN_START, vec![]);
        ctx.phase(PhaseKind::Scan);
        loop {
            tries += 1;
            self.shared.stats[self.me]
                .attempts
                .fetch_add(1, Ordering::Relaxed);
            ctx.count(Counter::ScanAttempts, 1);
            if tries > 1 {
                ctx.count(Counter::ScanRetries, 1);
            }
            for j in 0..n {
                if let Some(a) = &self.shared.arrows[j][self.me] {
                    a.lower(ctx)?;
                }
            }
            // Same weak-memory drain as the optimized scan (see
            // [`Port::scan_slots`]); keeps the two implementations
            // access-equivalent under every memory mode.
            ctx.fence()?;
            let mut c1: Vec<Option<Slot<T>>> = vec![None; n];
            for (j, slot) in c1.iter_mut().enumerate() {
                if j != self.me {
                    *slot = Some(self.shared.values[j].read(ctx)?);
                }
            }
            let mut c2: Vec<Option<Slot<T>>> = vec![None; n];
            for (j, slot) in c2.iter_mut().enumerate() {
                if j != self.me {
                    *slot = Some(self.shared.values[j].read(ctx)?);
                }
            }
            let mut raised = false;
            for j in 0..n {
                if let Some(a) = &self.shared.arrows[j][self.me] {
                    if a.is_raised(ctx)? {
                        raised = true;
                    }
                }
            }
            self.shared.stats[self.me]
                .collect_reads
                .fetch_add(2 * (n as u64 - 1), Ordering::Relaxed);
            ctx.count(Counter::CollectReads, 2 * (n as u64 - 1));
            let stable = !raised
                && c1.iter().zip(&c2).all(|(x, y)| match (x, y) {
                    (Some(x), Some(y)) => x.same_visible(y),
                    (None, None) => true,
                    _ => unreachable!("collects fill the same slots"),
                });
            if stable {
                let view: Vec<Slot<T>> = c2
                    .into_iter()
                    .enumerate()
                    .map(|(j, s)| match s {
                        Some(s) => s,
                        None => {
                            debug_assert_eq!(j, self.me);
                            self.last.clone()
                        }
                    })
                    .collect();
                ctx.annotate(labels::SCAN_END, view.iter().map(|s| s.seq).collect());
                self.shared.stats[self.me]
                    .scans
                    .fetch_add(1, Ordering::Relaxed);
                ctx.count(Counter::Scans, 1);
                return Ok(view.into_iter().map(|s| s.value).collect());
            }
            if budget != 0 && tries >= budget {
                self.shared.stats[self.me]
                    .starved
                    .fetch_add(1, Ordering::Relaxed);
                ctx.count(Counter::ScanStarved, 1);
                return Err(Halted::ScanStarved);
            }
        }
    }
}

// The default Clone derive would demand T: Clone etc.; a Port must NOT be
// cloneable anyway (it owns the single-writer local state), so none is
// provided.

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_registers::{DirectArrow, HandshakeArrow};
    use bprc_sim::sched::{FnStrategy, RandomStrategy, RoundRobin};
    use bprc_sim::world::ProcBody;
    use bprc_sim::Decision;

    fn sequential_update_scan<A: ArrowCell>() {
        let mut w = World::builder(1).build();
        let mem = ScannableMemory::<u32, A>::new(&w, 1, 0);
        let mut p = mem.port(0);
        let bodies: Vec<ProcBody<Vec<u32>>> = vec![Box::new(move |ctx| {
            p.update(ctx, 4)?;
            p.update(ctx, 5)?;
            p.scan(ctx)
        })];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0], Some(vec![5]));
    }

    #[test]
    fn single_process_direct() {
        sequential_update_scan::<DirectArrow>();
    }

    #[test]
    fn single_process_handshake() {
        sequential_update_scan::<HandshakeArrow>();
    }

    #[test]
    fn scan_sees_preceding_updates() {
        let mut w = World::builder(3).build();
        let mem = ScannableMemory::<u32, DirectArrow>::new(&w, 3, 0);
        let ports: Vec<_> = (0..3).map(|i| mem.port(i)).collect();
        let mut bodies: Vec<ProcBody<Option<Vec<u32>>>> = Vec::new();
        for (i, mut p) in ports.into_iter().enumerate() {
            bodies.push(Box::new(move |ctx| {
                p.update(ctx, (i as u32 + 1) * 10)?;
                if i == 2 {
                    Ok(Some(p.scan(ctx)?))
                } else {
                    Ok(None)
                }
            }));
        }
        // Round robin: all updates complete before process 2 scans? Not
        // necessarily — but with RoundRobin and equal-length updates, the
        // scan happens after all updates finish.
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let view = rep.outputs[2].clone().unwrap().unwrap();
        assert_eq!(view, vec![10, 20, 30]);
    }

    #[test]
    fn own_slot_is_local_copy() {
        let mut w = World::builder(2).build();
        let mem = ScannableMemory::<u32, DirectArrow>::new(&w, 2, 99);
        let mut p0 = mem.port(0);
        let mut p1 = mem.port(1);
        let bodies: Vec<ProcBody<Vec<u32>>> = vec![
            Box::new(move |ctx| {
                p0.update(ctx, 1)?;
                p0.scan(ctx)
            }),
            Box::new(move |ctx| {
                let v = p1.scan(ctx)?; // never updated: own slot = init
                Ok(v)
            }),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(rep.outputs[0].as_ref().unwrap()[0], 1);
        assert_eq!(rep.outputs[1].as_ref().unwrap()[1], 99);
    }

    #[test]
    fn hostile_writer_starves_scan_until_step_limit() {
        let mut w = World::builder(2).step_limit(4_000).build();
        let mem = ScannableMemory::<u64, DirectArrow>::new(&w, 2, 0);
        let mut wp = mem.port(0);
        let mut sp = mem.port(1);
        let bodies: Vec<ProcBody<Vec<u64>>> = vec![
            Box::new(move |ctx| {
                let mut k = 0u64;
                loop {
                    k += 1;
                    wp.update(ctx, k)?;
                }
            }),
            Box::new(move |ctx| sp.scan(ctx)),
        ];
        // Adversary: let the scanner run, but sneak one full writer update
        // between the scanner's two collects every attempt.
        let mem2 = mem.clone();
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            // Writer pending op targets V_0 (a write) => give the writer a
            // burst whenever the scanner is mid-collect; otherwise scanner.
            // Simpler: alternate bursts — writer 2 ops, scanner 1 op.
            let _ = &mem2;
            if view.step.is_multiple_of(3) && view.runnable.contains(&1) {
                Decision::Grant(1)
            } else if view.runnable.contains(&0) {
                Decision::Grant(0)
            } else {
                Decision::Grant(1)
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        // The scan never completed: both halted at the step limit.
        assert_eq!(rep.halted[1], Some(bprc_sim::Halted::StepLimit));
        assert!(mem.stats(1).attempts.load(Ordering::Relaxed) > 1);
        assert_eq!(mem.stats(1).scans.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn random_schedules_complete_when_writers_stop() {
        for seed in 0..20 {
            let mut w = World::builder(3).seed(seed).build();
            let mem = ScannableMemory::<u64, HandshakeArrow>::new(&w, 3, 0);
            let ports: Vec<_> = (0..3).map(|i| mem.port(i)).collect();
            let mut bodies: Vec<ProcBody<Vec<u64>>> = Vec::new();
            for (i, mut p) in ports.into_iter().enumerate() {
                bodies.push(Box::new(move |ctx| {
                    for k in 0..5u64 {
                        p.update(ctx, (i as u64) * 100 + k)?;
                    }
                    p.scan(ctx)
                }));
            }
            let rep = w.run(bodies, Box::new(RandomStrategy::new(seed)));
            for out in &rep.outputs {
                let v = out.as_ref().expect("all scans complete");
                // Everyone's final view of a finished writer is its last value.
                assert_eq!(v.len(), 3);
            }
        }
    }

    #[test]
    fn retry_budget_degrades_starved_scan_gracefully() {
        // Same hostile schedule as the step-limit test, but with a retry
        // budget: the scanner reports ScanStarved (and the writer, no
        // longer starved of steps itself, runs to the step limit).
        let mut w = World::builder(2).step_limit(4_000).build();
        let mem = ScannableMemory::<u64, DirectArrow>::new(&w, 2, 0);
        mem.set_scan_retry_budget(Some(5));
        assert_eq!(mem.scan_retry_budget(), Some(5));
        let mut wp = mem.port(0);
        let mut sp = mem.port(1);
        let bodies: Vec<ProcBody<Vec<u64>>> = vec![
            Box::new(move |ctx| {
                let mut k = 0u64;
                loop {
                    k += 1;
                    wp.update(ctx, k)?;
                }
            }),
            Box::new(move |ctx| sp.scan(ctx)),
        ];
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            if view.step.is_multiple_of(3) && view.runnable.contains(&1) {
                Decision::Grant(1)
            } else if view.runnable.contains(&0) {
                Decision::Grant(0)
            } else {
                Decision::Grant(1)
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert_eq!(rep.halted[1], Some(bprc_sim::Halted::ScanStarved));
        assert_eq!(mem.stats(1).starved.load(Ordering::Relaxed), 1);
        assert_eq!(mem.stats(1).scans.load(Ordering::Relaxed), 0);
        // Exactly the budgeted number of attempts was made.
        assert_eq!(mem.stats(1).attempts.load(Ordering::Relaxed), 5);
        // Regression: the starved scan's collect work is accounted — every
        // attempt (including the fifth, which returned ScanStarved) did a
        // full double collect of the one other slot: 5 × 2 reads.
        assert_eq!(mem.stats(1).collect_reads.load(Ordering::Relaxed), 10);
        // The metrics plane saw the same story as the port-local ScanStats.
        let t = &rep.telemetry;
        assert_eq!(t.counter(1, Counter::ScanAttempts), 5);
        assert_eq!(t.counter(1, Counter::ScanRetries), 4);
        assert_eq!(t.counter(1, Counter::ScanStarved), 1);
        assert_eq!(t.counter(1, Counter::Scans), 0);
        assert_eq!(t.counter(1, Counter::CollectReads), 10);
    }

    #[test]
    fn telemetry_mirrors_scan_stats() {
        let mut w = World::builder(2).build();
        let mem = ScannableMemory::<u32, DirectArrow>::new(&w, 2, 0);
        let mut p0 = mem.port(0);
        let mut p1 = mem.port(1);
        let bodies: Vec<ProcBody<Vec<u32>>> = vec![
            Box::new(move |ctx| {
                p0.update(ctx, 1)?;
                p0.update(ctx, 2)?;
                p0.scan(ctx)
            }),
            Box::new(move |ctx| {
                p1.update(ctx, 3)?;
                p1.scan(ctx)
            }),
        ];
        let rep = w.run(bodies, Box::new(RoundRobin::new()));
        let t = &rep.telemetry;
        for pid in 0..2 {
            let s = mem.stats(pid);
            assert_eq!(
                t.counter(pid, Counter::Updates),
                s.updates.load(Ordering::Relaxed)
            );
            assert_eq!(
                t.counter(pid, Counter::Scans),
                s.scans.load(Ordering::Relaxed)
            );
            assert_eq!(
                t.counter(pid, Counter::ScanAttempts),
                s.attempts.load(Ordering::Relaxed)
            );
            assert_eq!(
                t.counter(pid, Counter::CollectReads),
                s.collect_reads.load(Ordering::Relaxed)
            );
            // Clean run: attempts split exactly into successes and retries.
            assert_eq!(
                t.counter(pid, Counter::ScanAttempts),
                t.counter(pid, Counter::Scans) + t.counter(pid, Counter::ScanRetries)
            );
            // Scans and writes announce phase spans.
            assert!(t.phases(pid).iter().any(|p| p.kind == PhaseKind::Scan));
            assert!(t.phases(pid).iter().any(|p| p.kind == PhaseKind::Write));
        }
    }

    #[test]
    fn zero_budget_normalizes_to_one_attempt() {
        let w = World::builder(1).build();
        let mem = ScannableMemory::<u8, DirectArrow>::new(&w, 1, 0);
        mem.set_scan_retry_budget(Some(0));
        assert_eq!(mem.scan_retry_budget(), Some(1));
        mem.set_scan_retry_budget(None);
        assert_eq!(mem.scan_retry_budget(), None);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn ports_are_single_owner() {
        let w = World::builder(1).build();
        let mem = ScannableMemory::<u8, DirectArrow>::new(&w, 1, 0);
        let _a = mem.port(0);
        let _b = mem.port(0);
    }

    #[test]
    fn meta_lists_value_registers() {
        let w = World::builder(2).build();
        let mem = ScannableMemory::<u8, DirectArrow>::new(&w, 2, 0);
        let meta = mem.meta();
        assert_eq!(meta.value_regs.len(), 2);
        assert_ne!(meta.value_regs[0], meta.value_regs[1]);
    }

    #[test]
    fn peek_values_reflects_pokes() {
        let w = World::builder(2).build();
        let mem = ScannableMemory::<u8, DirectArrow>::new(&w, 2, 7);
        assert_eq!(mem.peek_values(), vec![7, 7]);
    }
}
