//! Bounded scannable memory — §2 of the paper.
//!
//! A *scannable memory* is an array of `n` per-process cells supporting two
//! operations: `update(i, v)` (process `i` publishes a value) and `scan(i)`
//! (process `i` obtains a view of **all** cells). The paper requires three
//! properties of the views:
//!
//! * **P1 — regularity**: every returned value was written by a write that
//!   *potentially coexisted* with the scan (no stale-beyond-one or
//!   from-the-future values);
//! * **P2 — snapshot**: the returned values pairwise potentially coexisted —
//!   the view could have been an instantaneous picture of memory;
//! * **P3 — scan serializability**: the views of any two scans are
//!   comparable (one is componentwise no older than the other).
//!
//! The construction ([`ScannableMemory`]) is the paper's: one SWMR register
//! `V_i` per process carrying a toggle bit, plus an arrow register `A_ij`
//! per ordered pair. An update first raises all the writer's arrows, then
//! writes the value; a scan lowers the arrows aimed at it, double-collects
//! the values, re-reads the arrows, and retries unless nothing moved.
//!
//! As in the paper, `update` is wait-free but `scan` is not: it can be
//! starved by an adversary that keeps writing — though every retry is caused
//! by a *new* write, so the memory as a whole makes progress. The
//! [`checker`] module verifies P1–P3 offline against recorded histories.
//!
//! # Example
//!
//! ```
//! use bprc_sim::World;
//! use bprc_sim::sched::RandomStrategy;
//! use bprc_registers::DirectArrow;
//! use bprc_snapshot::ScannableMemory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = World::builder(2).seed(1).build();
//! let mem = ScannableMemory::<u32, DirectArrow>::new(&world, 2, 0);
//! let mut p0 = mem.port(0);
//! let mut p1 = mem.port(1);
//! let report = world.run::<Vec<u32>>(
//!     vec![
//!         Box::new(move |ctx| {
//!             p0.update(ctx, 7)?;
//!             p0.scan(ctx)
//!         }),
//!         Box::new(move |ctx| {
//!             p1.update(ctx, 9)?;
//!             p1.scan(ctx)
//!         }),
//!     ],
//!     Box::new(RandomStrategy::new(3)),
//! );
//! let view = report.outputs[0].as_ref().expect("scan completed");
//! assert_eq!(view[0], 7); // own value always current
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod checker;
pub(crate) mod collect;
pub mod memory;
pub mod waitfree;

pub use backend::{check_backend_history, OpGrained, SnapshotBackend, SnapshotPort};
pub use checker::{
    check_history, check_history_weak, CheckReport, IncrementalChecker, SnapshotViolation,
};
pub use memory::{Port, ScanStats, ScannableMemory, SnapshotMeta};
pub use waitfree::{WaitFreeSnapshot, WfPort};
