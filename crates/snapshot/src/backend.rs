//! The unified snapshot interface: [`SnapshotBackend`] / [`SnapshotPort`].
//!
//! The paper builds consensus (§5) on top of a scannable memory (§2) whose
//! *interface* — `update`/`scan` satisfying P1–P3 — is all the protocol
//! needs; the handshake construction is one implementation of it, not part
//! of the contract. This module names that contract so the upper stack
//! (the `bprc-core` driver, the chaos harness, the benchmarks) can run over
//! either implementation:
//!
//! * [`ScannableMemory`] — the paper's bounded handshake construction
//!   (`"handshake"`). Bounded registers, but a scan can be starved by a
//!   relentless writer (gate with
//!   [`set_scan_retry_budget`](SnapshotBackend::set_scan_retry_budget)).
//! * [`WaitFreeSnapshot`] — the AADGMS construction (`"waitfree"`).
//!   Scans finish in at most `n + 1` attempts no matter what writers do,
//!   at the price of unbounded sequence numbers.
//!
//! Both backends emit the same history annotations and metrics, so the
//! P1–P3 checker, the telemetry plane, and the phase timelines treat them
//! identically — see [`check_backend_history`].

use bprc_registers::ArrowCell;
use bprc_sim::history::History;
use bprc_sim::sched::{Decision, ScheduleView, Strategy};
use bprc_sim::{Ctx, FastPod, Halted, World};

use crate::checker::{check_history, CheckReport};
use crate::memory::{Port, ScanStats, ScannableMemory, SnapshotMeta};
use crate::waitfree::{WaitFreeSnapshot, WfPort};

/// A process's handle on a snapshot object: the paper's `update` and
/// `scan` operations (plus the allocation-free [`scan_into`]
/// (SnapshotPort::scan_into) the hot consensus loops use).
pub trait SnapshotPort<T>: Send + 'static {
    /// This port's process id.
    fn pid(&self) -> usize;

    /// Publishes `value` (the paper's `update`).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    fn update(&mut self, ctx: &mut Ctx, value: T) -> Result<(), Halted>;

    /// Takes a snapshot: one value per process.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process — for
    /// backends with a retry budget, [`Halted::ScanStarved`] when it runs
    /// out.
    fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted>;

    /// Like [`scan`](SnapshotPort::scan) but refills `out` in place,
    /// reusing its capacity (and the elements' heap, via `clone_from`): a
    /// steady-state scan allocates nothing on either backend.
    ///
    /// # Errors
    ///
    /// As for [`scan`](SnapshotPort::scan).
    fn scan_into(&mut self, ctx: &mut Ctx, out: &mut Vec<T>) -> Result<(), Halted>;

    /// Switches the port's amortized *lazy-scan* mode, where a scan whose
    /// previous view is provably still intact revalidates it with one probe
    /// pass and reuses it (see
    /// [`Port::set_lazy`](crate::memory::Port::set_lazy)). Off by default;
    /// the default impl is a no-op for ports without an amortized path.
    fn set_lazy(&mut self, lazy: bool) {
        let _ = lazy;
    }
}

/// A snapshot object: allocates in a [`World`], hands each process its
/// [`SnapshotPort`] once, and exposes the checker metadata and statistics
/// both constructions share.
///
/// Handles are cheaply cloneable (ports stay single-owner); the bound
/// exists so harnesses can keep a handle for stats while bodies run.
pub trait SnapshotBackend<T>: Clone + Send + Sync + 'static
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    /// The port type handed to each process.
    type Port: SnapshotPort<T>;

    /// Stable name for benchmark artifacts and logs (`"handshake"`,
    /// `"waitfree"`).
    const NAME: &'static str;

    /// Allocates the object: `n` processes, all registers holding `init`.
    fn alloc(world: &World, n: usize, init: T) -> Self;

    /// Like [`alloc`](SnapshotBackend::alloc) but puts the value registers
    /// on the world's seqlock fast plane where the payload fits; falls back
    /// to the locked cells transparently (a representation knob, never a
    /// semantics change).
    fn alloc_fast(world: &World, n: usize, init: T) -> Self
    where
        T: FastPod;

    /// Number of processes.
    fn n(&self) -> usize;

    /// Takes process `pid`'s port. Each port may be taken once.
    ///
    /// # Panics
    ///
    /// Panics if the port was already taken or `pid` is out of range.
    fn port(&self, pid: usize) -> Self::Port;

    /// Checker metadata (register-id ↦ process mapping) — same format for
    /// every backend, which is what keeps [`check_history`] backend-
    /// agnostic.
    fn meta(&self) -> SnapshotMeta;

    /// Statistics for process `pid`'s port.
    fn stats(&self, pid: usize) -> &ScanStats;

    /// Bounds (or unbounds, with `None`) the scan retry budget. The
    /// default is a no-op: a wait-free backend has nothing to bound — its
    /// scans cannot starve.
    fn set_scan_retry_budget(&self, budget: Option<u64>) {
        let _ = budget;
    }

    /// The current scan retry budget (`None` = unbounded, and always
    /// `None` for backends whose scans cannot starve).
    fn scan_retry_budget(&self) -> Option<u64> {
        None
    }
}

impl<T, A> SnapshotBackend<T> for ScannableMemory<T, A>
where
    T: Clone + PartialEq + Send + Sync + 'static,
    A: ArrowCell,
{
    type Port = Port<T, A>;

    const NAME: &'static str = "handshake";

    fn alloc(world: &World, n: usize, init: T) -> Self {
        ScannableMemory::new(world, n, init)
    }

    fn alloc_fast(world: &World, n: usize, init: T) -> Self
    where
        T: FastPod,
    {
        ScannableMemory::new_fast(world, n, init)
    }

    fn n(&self) -> usize {
        ScannableMemory::n(self)
    }

    fn port(&self, pid: usize) -> Self::Port {
        ScannableMemory::port(self, pid)
    }

    fn meta(&self) -> SnapshotMeta {
        ScannableMemory::meta(self)
    }

    fn stats(&self, pid: usize) -> &ScanStats {
        ScannableMemory::stats(self, pid)
    }

    fn set_scan_retry_budget(&self, budget: Option<u64>) {
        ScannableMemory::set_scan_retry_budget(self, budget);
    }

    fn scan_retry_budget(&self) -> Option<u64> {
        ScannableMemory::scan_retry_budget(self)
    }
}

impl<T, A> SnapshotPort<T> for Port<T, A>
where
    T: Clone + PartialEq + Send + Sync + 'static,
    A: ArrowCell,
{
    fn pid(&self) -> usize {
        Port::pid(self)
    }

    fn update(&mut self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        Port::update(self, ctx, value)
    }

    fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted> {
        Port::scan(self, ctx)
    }

    fn scan_into(&mut self, ctx: &mut Ctx, out: &mut Vec<T>) -> Result<(), Halted> {
        Port::scan_into(self, ctx, out)
    }

    fn set_lazy(&mut self, lazy: bool) {
        Port::set_lazy(self, lazy);
    }
}

impl<T> SnapshotBackend<T> for WaitFreeSnapshot<T>
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    type Port = WfPort<T>;

    const NAME: &'static str = "waitfree";

    fn alloc(world: &World, n: usize, init: T) -> Self {
        WaitFreeSnapshot::new(world, n, init)
    }

    fn alloc_fast(world: &World, n: usize, init: T) -> Self
    where
        T: FastPod,
    {
        WaitFreeSnapshot::new_fast(world, n, init)
    }

    fn n(&self) -> usize {
        WaitFreeSnapshot::n(self)
    }

    fn port(&self, pid: usize) -> Self::Port {
        WaitFreeSnapshot::port(self, pid)
    }

    fn meta(&self) -> SnapshotMeta {
        WaitFreeSnapshot::meta(self)
    }

    fn stats(&self, pid: usize) -> &ScanStats {
        WaitFreeSnapshot::stats(self, pid)
    }
}

impl<T> SnapshotPort<T> for WfPort<T>
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    fn pid(&self) -> usize {
        WfPort::pid(self)
    }

    fn update(&mut self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        WfPort::update(self, ctx, value)
    }

    fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted> {
        WfPort::scan(self, ctx)
    }

    fn scan_into(&mut self, ctx: &mut Ctx, out: &mut Vec<T>) -> Result<(), Halted> {
        WfPort::scan_into(self, ctx, out)
    }

    fn set_lazy(&mut self, lazy: bool) {
        WfPort::set_lazy(self, lazy);
    }
}

/// Checks a recorded history against a backend's metadata — the
/// backend-dimension entry point to [`check_history`]: both constructions
/// emit the same annotations, so the P1–P3 verdict is computed identically
/// for either.
pub fn check_backend_history<T, B>(history: &History, backend: &B) -> CheckReport
where
    T: Clone + PartialEq + Send + Sync + 'static,
    B: SnapshotBackend<T>,
{
    check_history(history, &backend.meta())
}

/// A lockstep [`Strategy`] that schedules at **snapshot-operation
/// granularity**: the chosen process is granted register accesses
/// continuously until it completes a whole `scan` or `update`, then the
/// turn rotates round-robin. This reconstructs, over *real* registers, the
/// turn-level execution model of `bprc_sim::turn` (where a whole scan or
/// write is one atomic event) — the third execution backend of the
/// consensus matrix.
///
/// Completion is observed through the backend's [`ScanStats`] atomics
/// (scans + updates + starved): at a lockstep decision point no process is
/// mid-access, so the counters are quiescent. The strategy is
/// deterministic and RNG-free.
pub struct OpGrained {
    /// Completed-op readers, one per pid (each owns a backend handle).
    done: Vec<Box<dyn Fn() -> u64>>,
    /// The process currently holding the turn and its op count at the time
    /// the turn started.
    holding: Option<(usize, u64)>,
    /// Next pid preferred when the turn rotates.
    next: usize,
}

impl OpGrained {
    /// Builds the strategy over `memory`'s per-port statistics.
    pub fn new<T, B>(memory: &B) -> Self
    where
        T: Clone + PartialEq + Send + Sync + 'static,
        B: SnapshotBackend<T>,
    {
        use std::sync::atomic::Ordering;
        let done = (0..memory.n())
            .map(|pid| {
                let mem = memory.clone();
                let f: Box<dyn Fn() -> u64> = Box::new(move || {
                    let s = mem.stats(pid);
                    s.scans.load(Ordering::Relaxed)
                        + s.updates.load(Ordering::Relaxed)
                        + s.starved.load(Ordering::Relaxed)
                });
                f
            })
            .collect();
        OpGrained {
            done,
            holding: None,
            next: 0,
        }
    }
}

impl std::fmt::Debug for OpGrained {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpGrained")
            .field("holding", &self.holding)
            .field("next", &self.next)
            .finish()
    }
}

impl Strategy for OpGrained {
    fn decide(&mut self, view: &ScheduleView<'_>) -> Decision {
        if let Some((pid, ops)) = self.holding {
            // Keep the turn while the holder is runnable and still inside
            // the same snapshot operation.
            if view.runnable.contains(&pid) && (self.done[pid])() == ops {
                return Decision::Grant(pid);
            }
        }
        let n = self.done.len();
        for k in 0..n {
            let pid = (self.next + k) % n;
            if view.runnable.contains(&pid) {
                self.next = (pid + 1) % n;
                self.holding = Some((pid, (self.done[pid])()));
                return Decision::Grant(pid);
            }
        }
        // Unreachable while the world has runnable processes; grant
        // whatever is offered to stay total.
        Decision::Grant(view.runnable[0])
    }

    fn mid_op(&self) -> Option<usize> {
        // The holder is mid-operation exactly while its op counter has not
        // moved since the turn began. Fault wrappers consult this so a
        // crash/stall landing inside a scan or update is deferred to the
        // next operation boundary instead of tearing it (see
        // `Strategy::mid_op`).
        self.holding
            .filter(|&(pid, ops)| (self.done[pid])() == ops)
            .map(|(pid, _)| pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::labels;
    use crate::waitfree::WaitFreeSnapshot;
    use bprc_sim::world::ProcBody;
    use bprc_sim::{FaultPlan, FaultedStrategy};

    /// Two processes over the wait-free snapshot: pid 0 updates, scans,
    /// then keeps updating (so a deferred fault has boundaries to land on);
    /// pid 1 writes continuously (so the scan spans many register steps).
    fn workload(world: &World) -> (WaitFreeSnapshot<u32>, Vec<ProcBody<u32>>) {
        let mem = WaitFreeSnapshot::alloc(world, 2, 0u32);
        let mut p0 = mem.port(0);
        let mut p1 = mem.port(1);
        let bodies: Vec<ProcBody<u32>> = vec![
            Box::new(move |ctx| {
                p0.update(ctx, 1)?;
                let snap = p0.scan(ctx)?;
                for i in 0..16 {
                    p0.update(ctx, 2 + i)?;
                }
                Ok(snap[1])
            }),
            Box::new(move |ctx| {
                for i in 0..16 {
                    p1.update(ctx, 100 + i)?;
                }
                Ok(0)
            }),
        ];
        (mem, bodies)
    }

    /// A crash point landing mid-scan under `OpGrained` must defer to the
    /// next op boundary (the scan completes untorn) and still be delivered
    /// (not silently skipped) — the `FaultPlan` × `OpGrained` composition
    /// contract.
    #[test]
    fn fault_point_mid_scan_defers_to_op_boundary_and_still_fires() {
        // Clean run: locate a step strictly inside pid 0's scan.
        let mut world = World::builder(2).build();
        let (mem, bodies) = workload(&world);
        let rep = world.run(bodies, Box::new(OpGrained::new(&mem)));
        let h = rep.history.unwrap();
        let start = h
            .notes_labelled(labels::SCAN_START)
            .find(|&(_, pid, _)| pid == 0)
            .expect("pid 0 scans")
            .0;
        let end = h
            .notes_labelled(labels::SCAN_END)
            .find(|&(_, pid, _)| pid == 0)
            .expect("pid 0's scan completes")
            .0;
        assert!(end > start + 1, "scan too short to land a fault inside");
        let mid = start + 1;

        // Faulted run: identical decisions up to `mid`, where the crash
        // point comes due while pid 0 is mid-scan.
        let mut world = World::builder(2).build();
        let (mem, bodies) = workload(&world);
        let plan = FaultPlan::new().crash_at(mid, 0);
        let rep = world.run(
            bodies,
            Box::new(FaultedStrategy::new(OpGrained::new(&mem), plan)),
        );
        assert_eq!(
            rep.halted[0],
            Some(Halted::Crashed),
            "deferred point must still fire, not be silently skipped"
        );
        let h = rep.history.unwrap();
        assert_eq!(h.crashes().count(), 1);
        let starts = h
            .notes_labelled(labels::SCAN_START)
            .filter(|&(_, pid, _)| pid == 0)
            .count();
        let ends = h
            .notes_labelled(labels::SCAN_END)
            .filter(|&(_, pid, _)| pid == 0)
            .count();
        assert_eq!(starts, ends, "the crash tore a scan in half");
        assert!(starts > 0, "pid 0 must have scanned before dying");
        let (crash_step, crash_pid) = h.crashes().next().unwrap();
        assert_eq!(crash_pid, 0);
        let scan_end = h
            .notes_labelled(labels::SCAN_END)
            .find(|&(_, pid, _)| pid == 0)
            .unwrap()
            .0;
        assert!(
            crash_step >= scan_end,
            "crash at step {crash_step} should follow the scan end at {scan_end}"
        );
        // The survivor finishes untouched.
        assert_eq!(rep.outputs[1], Some(0));
    }
}
