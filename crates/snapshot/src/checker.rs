//! Offline verification of the paper's snapshot properties P1–P3.
//!
//! A lockstep run of the scannable memory records a totally ordered
//! [`History`]: one event per register access, plus the annotations pushed
//! by [`crate::memory`] (update intervals with ghost sequence numbers, scan
//! intervals with the returned sequence vector). This module replays that
//! history and verifies, for every completed scan:
//!
//! * **P1 (regularity)** — each returned value's write *potentially
//!   coexisted* with the scan: it was not superseded by another write of the
//!   same process completing before the scan began ([`SnapshotViolation::StaleValue`]),
//!   nor did it land only after the scan ended ([`SnapshotViolation::FutureValue`]).
//! * **P2 (snapshot)** — strengthened to full linearizability: there is a
//!   point *within the scan's interval* at which the memory contents equaled
//!   the returned view ([`SnapshotViolation::NotInstantaneous`] otherwise).
//!   This implies the paper's pairwise-coexistence formulation (intervals on
//!   a line intersect pairwise iff they share a point).
//! * **P3 (scan serializability)** — the sequence vectors of any two scans
//!   (by any processes) are componentwise comparable
//!   ([`SnapshotViolation::IncomparableScans`] otherwise).

use std::collections::{HashMap, VecDeque};

use bprc_sim::history::{Event, History, OpKind};

use crate::memory::{labels, SnapshotMeta};

/// A property violation found in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotViolation {
    /// A scan returned a sequence number no recorded write produced.
    UnknownWrite {
        /// The scanning process.
        scanner: usize,
        /// The slot (writer pid) the value came from.
        slot: usize,
        /// The unexplained sequence number.
        seq: u64,
    },
    /// A scan returned a value whose register store happened after the scan
    /// completed.
    FutureValue {
        /// The scanning process.
        scanner: usize,
        /// The slot the value came from.
        slot: usize,
        /// The offending sequence number.
        seq: u64,
    },
    /// A scan returned a value superseded by a write that completed before
    /// the scan began (violates P1).
    StaleValue {
        /// The scanning process.
        scanner: usize,
        /// The slot the value came from.
        slot: usize,
        /// The returned (stale) sequence number.
        seq: u64,
        /// A newer write of the same slot that fully preceded the scan.
        superseded_by: u64,
    },
    /// No point within the scan's interval has memory contents equal to the
    /// returned view (violates P2/linearizability).
    NotInstantaneous {
        /// The scanning process.
        scanner: usize,
        /// Index of this scan among the scanner's scans (0-based).
        scan_index: usize,
    },
    /// Two scans returned incomparable views (violates P3).
    IncomparableScans {
        /// (scanner pid, scan index) of the first scan.
        a: (usize, usize),
        /// (scanner pid, scan index) of the second scan.
        b: (usize, usize),
    },
}

/// Outcome of checking one history.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Completed scans checked.
    pub scans: usize,
    /// Completed updates seen.
    pub updates: usize,
    /// All violations found (empty = properties hold on this history).
    pub violations: Vec<SnapshotViolation>,
}

impl CheckReport {
    /// True if no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Clone)]
struct WriteRec {
    /// Step index of the register store (−1 for the initial write; `None`
    /// if the process crashed between `upd:start` and the store).
    store: Option<i64>,
    /// Step of the `upd:end` note (`None` if the process crashed first).
    end: Option<i64>,
}

#[derive(Debug, Clone)]
struct ScanRec {
    pid: usize,
    index: usize,
    start: i64,
    end: i64,
    seqs: Vec<u64>,
}

/// Streaming checker: feed history events one at a time, then [`finish`].
///
/// [`check_history`] is the one-shot wrapper. The incremental form exists
/// for callers that produce events faster than they can afford to buffer
/// whole histories — the systematic explorer re-executes thousands of
/// schedules and feeds each run's events straight through — and for
/// checkpointing a live run mid-flight ([`IncrementalChecker::finish`]
/// borrows, so it can be called repeatedly as events keep arriving).
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    /// writes[pid][seq] -> WriteRec; seq 0 is the implicit initial write.
    writes: Vec<HashMap<u64, WriteRec>>,
    reg_to_pid: HashMap<usize, usize>,
    scans: Vec<ScanRec>,
    open_scan_start: Vec<Option<i64>>,
    scan_counts: Vec<usize>,
}

impl IncrementalChecker {
    /// Starts a checker for the memory layout described by `meta` (see
    /// [`ScannableMemory::meta`](crate::memory::ScannableMemory::meta)).
    pub fn new(meta: &SnapshotMeta) -> Self {
        let n = meta.value_regs.len();
        let mut writes: Vec<HashMap<u64, WriteRec>> = vec![HashMap::new(); n];
        for w in writes.iter_mut() {
            w.insert(
                0,
                WriteRec {
                    store: Some(-1),
                    end: Some(-1),
                },
            );
        }
        IncrementalChecker {
            writes,
            reg_to_pid: meta
                .value_regs
                .iter()
                .enumerate()
                .map(|(pid, &reg)| (reg, pid))
                .collect(),
            scans: Vec::new(),
            open_scan_start: vec![None; n],
            scan_counts: vec![0; n],
        }
    }

    /// Consumes one history event. Events must arrive in history order.
    pub fn feed(&mut self, ev: &Event) {
        match ev {
            Event::Note { step, pid, note } => match note.label {
                labels::UPD_START => {
                    let seq = note.data[0];
                    self.writes[*pid].insert(
                        seq,
                        WriteRec {
                            store: None,
                            end: None,
                        },
                    );
                }
                labels::UPD_END => {
                    let seq = note.data[0];
                    if let Some(rec) = self.writes[*pid].get_mut(&seq) {
                        rec.end = Some(*step as i64);
                    }
                }
                labels::SCAN_START => {
                    self.open_scan_start[*pid] = Some(*step as i64);
                }
                labels::SCAN_END => {
                    if let Some(start) = self.open_scan_start[*pid].take() {
                        let index = self.scan_counts[*pid];
                        self.scan_counts[*pid] += 1;
                        self.scans.push(ScanRec {
                            pid: *pid,
                            index,
                            start,
                            end: *step as i64,
                            seqs: note.data.clone(),
                        });
                    }
                }
                _ => {}
            },
            Event::Op {
                step,
                pid: _,
                kind: OpKind::Write,
                reg,
                tag,
            } => {
                if let Some(&writer) = self.reg_to_pid.get(reg) {
                    if let Some(rec) = self.writes[writer].get_mut(tag) {
                        rec.store = Some(*step as i64);
                    }
                }
            }
            _ => {}
        }
    }

    /// Completed scans seen so far.
    pub fn scans_seen(&self) -> usize {
        self.scans.len()
    }

    /// Verifies P1–P3 over everything fed so far. Non-consuming: callers
    /// may keep feeding and finish again later.
    pub fn finish(&self) -> CheckReport {
        let mut report = CheckReport {
            scans: self.scans.len(),
            updates: self
                .writes
                .iter()
                .map(|m| m.values().filter(|r| r.store.is_some()).count() - 1)
                .sum(),
            violations: Vec::new(),
        };

        // P1 + P2 per scan.
        for scan in &self.scans {
            let mut lo = i64::MIN; // latest store among returned values
            let mut hi = i64::MAX; // earliest superseding store
            let mut complete = true;
            for (slot, &seq) in scan.seqs.iter().enumerate() {
                let Some(rec) = self.writes[slot].get(&seq) else {
                    report.violations.push(SnapshotViolation::UnknownWrite {
                        scanner: scan.pid,
                        slot,
                        seq,
                    });
                    complete = false;
                    continue;
                };
                // Future check: the store must exist and precede the scan's end.
                match rec.store {
                    Some(s) if s < scan.end => lo = lo.max(s),
                    _ => {
                        report.violations.push(SnapshotViolation::FutureValue {
                            scanner: scan.pid,
                            slot,
                            seq,
                        });
                        complete = false;
                        continue;
                    }
                }
                // Stale check: no later write of this slot completed before the
                // scan started.
                if let Some((&sup, _)) = self.writes[slot]
                    .iter()
                    .find(|(&s2, r2)| s2 > seq && r2.end.is_some_and(|e| e < scan.start))
                {
                    report.violations.push(SnapshotViolation::StaleValue {
                        scanner: scan.pid,
                        slot,
                        seq,
                        superseded_by: sup,
                    });
                    complete = false;
                }
                // Superseding store bounds the linearization window from above.
                if let Some(next_store) = self.writes[slot]
                    .iter()
                    .filter(|(&s2, r2)| s2 > seq && r2.store.is_some())
                    .map(|(_, r2)| r2.store.unwrap())
                    .min()
                {
                    hi = hi.min(next_store);
                }
            }
            if complete {
                // P2: need an integer t with
                //   max(lo, start−1) <= t <= min(hi−1, end−1)
                // where "content after op t" equals the view.
                let t_min = lo.max(scan.start - 1);
                let t_max = (hi - 1).min(scan.end - 1);
                if t_min > t_max {
                    report.violations.push(SnapshotViolation::NotInstantaneous {
                        scanner: scan.pid,
                        scan_index: scan.index,
                    });
                }
            }
        }

        // P3: pairwise comparability of views.
        for i in 0..self.scans.len() {
            for j in (i + 1)..self.scans.len() {
                let (a, b) = (&self.scans[i], &self.scans[j]);
                if a.seqs.len() != b.seqs.len() {
                    continue;
                }
                let le = a.seqs.iter().zip(&b.seqs).all(|(x, y)| x <= y);
                let ge = a.seqs.iter().zip(&b.seqs).all(|(x, y)| x >= y);
                if !le && !ge {
                    report
                        .violations
                        .push(SnapshotViolation::IncomparableScans {
                            a: (a.pid, a.index),
                            b: (b.pid, b.index),
                        });
                }
            }
        }

        report
    }
}

/// Checks the snapshot properties on a recorded lockstep history.
///
/// `meta` maps register ids to writer pids (see
/// [`ScannableMemory::meta`](crate::memory::ScannableMemory::meta)).
/// Incomplete scans/updates (the process crashed mid-operation) are ignored,
/// except that an incomplete update's *store*, if it landed, still counts as
/// memory content for P2 and staleness for P1 — exactly as a real crashed
/// write would.
pub fn check_history(history: &History, meta: &SnapshotMeta) -> CheckReport {
    let mut checker = IncrementalChecker::new(meta);
    for ev in history.events() {
        checker.feed(ev);
    }
    checker.finish()
}

/// Checks P1–P3 on a history recorded under weak memory
/// (`WeakMode::Tso`/`WeakMode::Pso` in `bprc_sim::weakmem`).
///
/// Under store buffering a write *issues* at its `Event::Op` step but only
/// becomes visible to other processes at its [`Event::Flush`] step, so the
/// store's linearization point is the flush. This wrapper re-times every
/// write to its matching flush before feeding the checker. Matching is a
/// per-`(pid, reg)` FIFO: both TSO and PSO land same-register stores from
/// one process in issue order, so front-of-queue pairing is exact. A write
/// with no flush (its buffer was dropped by a crash) never became visible
/// and is withheld from the checker entirely — its `upd:start` record keeps
/// `store: None`, the same shape as a crash between `upd:start` and the
/// store under SC. On a history with no flush events this is exactly
/// [`check_history`].
pub fn check_history_weak(history: &History, meta: &SnapshotMeta) -> CheckReport {
    let mut pending: HashMap<(usize, usize), VecDeque<usize>> = HashMap::new();
    let mut vis_step: HashMap<usize, u64> = HashMap::new();
    let mut any_flush = false;
    for (i, ev) in history.events().iter().enumerate() {
        match ev {
            Event::Op {
                pid,
                kind: OpKind::Write,
                reg,
                ..
            } => {
                pending.entry((*pid, *reg)).or_default().push_back(i);
            }
            Event::Flush { step, pid, reg } => {
                any_flush = true;
                if let Some(idx) = pending.get_mut(&(*pid, *reg)).and_then(|q| q.pop_front()) {
                    vis_step.insert(idx, *step);
                }
            }
            _ => {}
        }
    }
    if !any_flush {
        return check_history(history, meta);
    }
    let mut checker = IncrementalChecker::new(meta);
    for (i, ev) in history.events().iter().enumerate() {
        match ev {
            &Event::Op {
                pid,
                kind: OpKind::Write,
                reg,
                tag,
                ..
            } => {
                if let Some(&fstep) = vis_step.get(&i) {
                    checker.feed(&Event::Op {
                        step: fstep,
                        pid,
                        kind: OpKind::Write,
                        reg,
                        tag,
                    });
                }
            }
            other => checker.feed(other),
        }
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::history::{Annotation, Event, History, OpKind};

    /// Builds the meta for n processes with value regs 100, 101, ...
    fn meta(n: usize) -> SnapshotMeta {
        SnapshotMeta {
            value_regs: (100..100 + n).collect(),
        }
    }

    fn note(step: u64, pid: usize, label: &'static str, data: Vec<u64>) -> Event {
        Event::Note {
            step,
            pid,
            note: Annotation::new(label, data),
        }
    }

    fn store(step: u64, pid: usize, reg: usize, seq: u64) -> Event {
        Event::Op {
            step,
            pid,
            kind: OpKind::Write,
            reg,
            tag: seq,
        }
    }

    /// A full update by `pid` of its own register occupying steps
    /// [s, s] with notes around it.
    fn upd(events: &mut Vec<Event>, step: u64, pid: usize, seq: u64) {
        events.push(note(step, pid, labels::UPD_START, vec![seq]));
        events.push(store(step, pid, 100 + pid, seq));
        events.push(note(step + 1, pid, labels::UPD_END, vec![seq]));
    }

    #[test]
    fn clean_history_passes() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        upd(&mut ev, 1, 1, 1);
        ev.push(note(2, 0, labels::SCAN_START, vec![]));
        ev.push(note(5, 0, labels::SCAN_END, vec![1, 1]));
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.scans, 1);
        assert_eq!(r.updates, 2);
    }

    #[test]
    fn stale_value_is_flagged() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        upd(&mut ev, 1, 0, 2); // seq 2 completes at step 2
        ev.push(note(5, 1, labels::SCAN_START, vec![]));
        // Scan starts at 5 but returns seq 1 for slot 0: stale.
        ev.push(note(8, 1, labels::SCAN_END, vec![1, 0]));
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(matches!(
            r.violations[0],
            SnapshotViolation::StaleValue {
                scanner: 1,
                slot: 0,
                seq: 1,
                superseded_by: 2
            }
        ));
    }

    #[test]
    fn future_value_is_flagged() {
        let mut ev = Vec::new();
        ev.push(note(0, 1, labels::SCAN_START, vec![]));
        ev.push(note(2, 1, labels::SCAN_END, vec![1, 0]));
        // The write that produced seq 1 only happens later.
        upd(&mut ev, 5, 0, 1);
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(matches!(
            r.violations[0],
            SnapshotViolation::FutureValue {
                scanner: 1,
                slot: 0,
                seq: 1
            }
        ));
    }

    #[test]
    fn unknown_seq_is_flagged() {
        let ev = vec![
            note(0, 0, labels::SCAN_START, vec![]),
            note(2, 0, labels::SCAN_END, vec![0, 7]),
        ];
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(matches!(
            r.violations[0],
            SnapshotViolation::UnknownWrite {
                scanner: 0,
                slot: 1,
                seq: 7
            }
        ));
    }

    #[test]
    fn torn_view_is_not_instantaneous() {
        // Writer 0: seq1 stores at step 0, seq2 at step 10.
        // Writer 1: seq1 stores at step 5.
        // A scan inside [6..9] returning (seq1 of w0, seq0 of w1) is torn:
        // at any t in the window, w1 already shows seq1.
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        upd(&mut ev, 5, 1, 1);
        ev.push(note(6, 2, labels::SCAN_START, vec![]));
        ev.push(note(9, 2, labels::SCAN_END, vec![1, 0, 0]));
        upd(&mut ev, 10, 0, 2);
        let r = check_history(&History::from_events(ev), &meta(3));
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, SnapshotViolation::NotInstantaneous { scanner: 2, .. })),
            "the view mixes epochs: {:?}",
            r.violations
        );
    }

    #[test]
    fn concurrent_old_value_is_instantaneous() {
        // Writer 0 stores seq1 at step 3, *during* the scan [1..6]. The scan
        // may legally return seq0 (linearize before step 3) — not a
        // violation.
        let mut ev = Vec::new();
        ev.push(note(1, 1, labels::SCAN_START, vec![]));
        upd(&mut ev, 3, 0, 1);
        ev.push(note(6, 1, labels::SCAN_END, vec![0, 0]));
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn incomparable_scans_flagged() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        upd(&mut ev, 1, 1, 1);
        // Scan A sees (1,0) — claims to have run before writer 1's update;
        // scan B sees (0,1). Incomparable.
        ev.push(note(2, 0, labels::SCAN_START, vec![]));
        ev.push(note(3, 0, labels::SCAN_END, vec![1, 0]));
        ev.push(note(4, 1, labels::SCAN_START, vec![]));
        ev.push(note(5, 1, labels::SCAN_END, vec![0, 1]));
        let r = check_history(&History::from_events(ev), &meta(2));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, SnapshotViolation::IncomparableScans { .. })));
    }

    #[test]
    fn incomplete_scan_is_ignored() {
        let ev = vec![note(0, 0, labels::SCAN_START, vec![])];
        let r = check_history(&History::from_events(ev), &meta(1));
        assert_eq!(r.scans, 0);
        assert!(r.ok());
    }

    fn flush(step: u64, pid: usize, reg: usize) -> Event {
        Event::Flush { step, pid, reg }
    }

    /// Under weak memory a scan must not return a value whose store was
    /// still buffered when the scan ended: the store linearizes at its
    /// flush, and the plain checker (which trusts the issue step) misses
    /// the impossibility.
    #[test]
    fn weak_checker_times_stores_at_their_flush() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1); // issue at step 0 ...
        ev.push(note(2, 1, labels::SCAN_START, vec![]));
        ev.push(note(4, 1, labels::SCAN_END, vec![1, 0]));
        ev.push(flush(10, 0, 100)); // ... but only visible at step 10
        let history = History::from_events(ev);
        let m = meta(2);
        assert!(
            check_history(&history, &m).ok(),
            "the issue-step checker cannot see the buffering"
        );
        let r = check_history_weak(&history, &m);
        assert!(matches!(
            r.violations[0],
            SnapshotViolation::FutureValue {
                scanner: 1,
                slot: 0,
                seq: 1
            }
        ));
    }

    /// A store whose buffer died with its process never became visible:
    /// scans returning it are flagged, scans skipping it are clean.
    #[test]
    fn unflushed_crashed_store_is_never_visible() {
        let mut ev = Vec::new();
        ev.push(note(0, 0, labels::UPD_START, vec![1]));
        ev.push(store(0, 0, 100, 1)); // buffered, then the buffer is dropped
        ev.push(flush(1, 1, 101)); // unrelated flush keeps the history weak
        ev.push(note(2, 1, labels::SCAN_START, vec![]));
        ev.push(note(4, 1, labels::SCAN_END, vec![0, 0]));
        let history = History::from_events(ev);
        let r = check_history_weak(&history, &meta(2));
        assert!(
            r.ok(),
            "old value is the only visible one: {:?}",
            r.violations
        );

        let mut ev2 = Vec::new();
        ev2.push(note(0, 0, labels::UPD_START, vec![1]));
        ev2.push(store(0, 0, 100, 1));
        ev2.push(flush(1, 1, 101));
        ev2.push(note(2, 1, labels::SCAN_START, vec![]));
        ev2.push(note(4, 1, labels::SCAN_END, vec![1, 0]));
        let r2 = check_history_weak(&History::from_events(ev2), &meta(2));
        assert!(
            matches!(r2.violations[0], SnapshotViolation::FutureValue { .. }),
            "a dropped store must read as never-written: {:?}",
            r2.violations
        );
    }

    /// Flushes pair with writes FIFO per (pid, reg), and a flush-free
    /// history degrades to the plain checker verbatim.
    #[test]
    fn weak_checker_matches_fifo_and_degrades_to_sc() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        ev.push(flush(2, 0, 100)); // FIFO: pairs with seq 1
        ev.push(note(3, 0, labels::UPD_START, vec![2]));
        ev.push(store(3, 0, 100, 2));
        ev.push(note(5, 1, labels::SCAN_START, vec![]));
        ev.push(note(6, 1, labels::SCAN_END, vec![1, 0]));
        ev.push(flush(9, 0, 100)); // FIFO: pairs with seq 2
        ev.push(note(10, 0, labels::UPD_END, vec![2]));
        let weak_hist = History::from_events(ev);
        let m = meta(2);
        let r = check_history_weak(&weak_hist, &m);
        assert!(
            r.ok(),
            "seq 2 is still buffered during the scan: {:?}",
            r.violations
        );

        let mut sc = Vec::new();
        upd(&mut sc, 0, 0, 1);
        sc.push(note(2, 1, labels::SCAN_START, vec![]));
        sc.push(note(4, 1, labels::SCAN_END, vec![1, 0]));
        let sc_hist = History::from_events(sc);
        let a = check_history(&sc_hist, &m);
        let b = check_history_weak(&sc_hist, &m);
        assert_eq!(a.violations, b.violations);
        assert_eq!((a.scans, a.updates), (b.scans, b.updates));
    }

    /// The incremental checker is checkpointable: finishing mid-stream sees
    /// the scans fed so far, and the final report equals the one-shot
    /// `check_history` on the same events.
    #[test]
    fn incremental_checkpoints_match_one_shot() {
        let mut ev = Vec::new();
        upd(&mut ev, 0, 0, 1);
        upd(&mut ev, 1, 0, 2);
        ev.push(note(5, 1, labels::SCAN_START, vec![]));
        ev.push(note(8, 1, labels::SCAN_END, vec![1, 0])); // stale
        ev.push(note(9, 1, labels::SCAN_START, vec![]));
        ev.push(note(10, 1, labels::SCAN_END, vec![2, 0])); // fine
        let history = History::from_events(ev);
        let m = meta(2);

        let mut inc = IncrementalChecker::new(&m);
        let mut mid: Option<CheckReport> = None;
        for e in history.events() {
            inc.feed(e);
            if inc.scans_seen() == 1 && mid.is_none() {
                mid = Some(inc.finish());
            }
        }
        let mid = mid.expect("first scan completes mid-stream");
        assert_eq!(mid.scans, 1);
        assert_eq!(mid.violations.len(), 1, "{:?}", mid.violations);

        let full = inc.finish();
        let one_shot = check_history(&history, &m);
        assert_eq!(full.scans, one_shot.scans);
        assert_eq!(full.updates, one_shot.updates);
        assert_eq!(full.violations, one_shot.violations);
    }
}
