//! A **wait-free** snapshot — the extension the field built on top of
//! constructions like the paper's (Afek–Attiya–Dolev–Gafni–Merritt–Shavit,
//! *Atomic Snapshots of Shared Memory*, 1990; here in its classic
//! unbounded-counter form).
//!
//! The paper's §2 scan (see [`crate::memory`]) is *not* wait-free: a
//! relentless writer starves it forever (experiment E7 measures this; the
//! paper's protocol tolerates it because its writers always eventually
//! pause). The classic fix: every **update embeds a full scan's view** in
//! the written register. A scanner that observes a writer's register change
//! *within two different attempts* of its scan may **borrow** that writer's
//! embedded view:
//!
//! * the first observed change is a write `W₁` that landed inside the scan
//!   (between the attempt's two collects);
//! * the second observed change is a later write `W₂`, whose update began —
//!   and therefore ran its embedded scan — entirely after `W₁`, i.e.
//!   entirely inside this scan. Its view is a legal result.
//!
//! Each failing attempt marks at least one *new* mover or borrows, so a
//! scan finishes within `n + 1` attempts — `O(n²)` register operations,
//! unconditionally.
//!
//! **Boundedness note.** Move detection uses a per-process sequence number,
//! which grows without bound — this module is deliberately the *unbounded*
//! variant. AADGMS also show how to replace the sequence numbers with a
//! bounded two-writer handshake protocol; that construction is a paper of
//! its own and out of scope here. The paper's own §2 memory
//! ([`crate::memory`]) remains the bounded construction this repository
//! reproduces; this module exists as the wait-free comparison point (see
//! the `hostile_writer_cannot_starve_the_scan` test and experiment E7).
//!
//! The construction emits the same history annotations as
//! [`crate::memory`], so [`crate::checker::check_history`] verifies P1–P3
//! for it unchanged (embedded scans are real scans and are checked too —
//! the sequence number doubles as the checker's ghost).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bprc_registers::Swmr;
use bprc_sim::{Counter, Ctx, FastDyn, FastPod, Halted, PhaseKind, World, NO_VERSION};

use crate::memory::{labels, ScanStats, SnapshotMeta};

/// One register's contents: payload, sequence number, and the embedded view
/// `(value, seq)` per process captured by the update's embedded scan.
#[derive(Debug, Clone)]
struct WfSlot<T> {
    value: T,
    seq: u64,
    view: Vec<(T, u64)>,
}

impl<T: Clone + Send + Sync + 'static> crate::collect::SeqSlot for WfSlot<T> {
    fn ghost_seq(&self) -> u64 {
        self.seq
    }
}

/// Slots of small POD payloads can ride the seqlock register plane — but
/// unlike the bounded construction's [`crate::memory`] slots, a `WfSlot`'s
/// packed width depends on `n` (the embedded view has one entry per
/// process), so it takes the *runtime-width* [`FastDyn`] route. Layout:
/// payload words, seq, view length, then `(payload words, seq)` per view
/// entry. Every slot written to a given register packs to the same width
/// because the view always has exactly `n` entries. Slots too wide for the
/// dynamic plane ([`bprc_sim::MAX_FAST_WORDS_DYN`] words) transparently
/// keep the locked backing — the fast constructor checks.
impl<T: FastPod> FastDyn for WfSlot<T> {
    fn dyn_words(&self) -> usize {
        T::WORDS + 2 + self.view.len() * (T::WORDS + 1)
    }

    fn pack_dyn(&self, out: &mut [u64]) {
        self.value.pack(&mut out[..T::WORDS]);
        out[T::WORDS] = self.seq;
        out[T::WORDS + 1] = self.view.len() as u64;
        let mut at = T::WORDS + 2;
        for (v, s) in &self.view {
            v.pack(&mut out[at..at + T::WORDS]);
            out[at + T::WORDS] = *s;
            at += T::WORDS + 1;
        }
    }

    fn unpack_dyn(words: &[u64]) -> Self {
        let value = T::unpack(&words[..T::WORDS]);
        let seq = words[T::WORDS];
        let len = words[T::WORDS + 1] as usize;
        let mut at = T::WORDS + 2;
        let view = (0..len)
            .map(|_| {
                let entry = (T::unpack(&words[at..at + T::WORDS]), words[at + T::WORDS]);
                at += T::WORDS + 1;
                entry
            })
            .collect();
        WfSlot { value, seq, view }
    }
}

struct WfShared<T> {
    n: usize,
    values: Vec<Swmr<WfSlot<T>>>,
    stats: Vec<ScanStats>,
    port_taken: Vec<AtomicBool>,
}

/// The wait-free snapshot object.
pub struct WaitFreeSnapshot<T> {
    shared: Arc<WfShared<T>>,
}

impl<T> Clone for WaitFreeSnapshot<T> {
    fn clone(&self) -> Self {
        WaitFreeSnapshot {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for WaitFreeSnapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitFreeSnapshot")
            .field("n", &self.shared.n)
            .finish()
    }
}

impl<T> WaitFreeSnapshot<T>
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    /// Allocates the object (all registers hold `init`).
    pub fn new(world: &World, n: usize, init: T) -> Self {
        Self::build(world, n, &init, |world, name, writer, slot| {
            Swmr::new(world, name, writer, slot)
        })
    }

    fn build(
        world: &World,
        n: usize,
        init: &T,
        mk: impl Fn(&World, String, usize, WfSlot<T>) -> Swmr<WfSlot<T>>,
    ) -> Self {
        assert!(n >= 1, "need at least one process");
        assert_eq!(world.n(), n, "snapshot size must match the world");
        let initial_view: Vec<(T, u64)> = (0..n).map(|_| (init.clone(), 0)).collect();
        let values = (0..n)
            .map(|i| {
                mk(
                    world,
                    format!("WfV_{i}"),
                    i,
                    WfSlot {
                        value: init.clone(),
                        seq: 0,
                        view: initial_view.clone(),
                    },
                )
            })
            .collect();
        WaitFreeSnapshot {
            shared: Arc::new(WfShared {
                n,
                values,
                stats: (0..n).map(|_| ScanStats::default()).collect(),
                port_taken: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
        }
    }

    /// Like [`new`](WaitFreeSnapshot::new) but puts the registers on the
    /// world's fast register plane when the packed slot — payload, seq, and
    /// the `n`-entry embedded view — fits in
    /// [`bprc_sim::MAX_FAST_WORDS_DYN`] words; wider slots transparently
    /// keep the locked backing. The registers are lanes of one shared
    /// [`value slab`](World::value_slab), so under the packed plane the
    /// version words the batched collect validation sweeps are contiguous.
    /// A representation knob, never a semantics change: the
    /// `fast_and_locked_planes_are_observationally_identical` test pins
    /// observational identity across planes.
    pub fn new_fast(world: &World, n: usize, init: T) -> Self
    where
        T: FastPod,
    {
        let lane_words = T::WORDS + 2 + n * (T::WORDS + 1);
        let slab = world.value_slab(n, lane_words);
        Self::build(world, n, &init, move |world, name, writer, slot| {
            Swmr::new_lane_dyn(world, &slab, writer, name, writer, slot)
        })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Takes process `pid`'s port (once).
    ///
    /// # Panics
    ///
    /// Panics if taken twice or `pid` out of range.
    pub fn port(&self, pid: usize) -> WfPort<T> {
        crate::collect::claim_port(&self.shared.port_taken, pid);
        let snap: Vec<WfSlot<T>> = self.shared.values.iter().map(|v| v.peek()).collect();
        let view = snap[pid].view.clone();
        let n = self.shared.n;
        WfPort {
            shared: Arc::clone(&self.shared),
            me: pid,
            last: snap[pid].clone(),
            c1: snap.clone(),
            c2: snap,
            v1: vec![NO_VERSION; n],
            v2: vec![NO_VERSION; n],
            moved: vec![false; n],
            view,
            lazy: false,
            view_valid: false,
        }
    }

    /// Checker metadata (same format as the paper construction's).
    pub fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            value_regs: self.shared.values.iter().map(|v| v.id()).collect(),
        }
    }

    /// Per-port statistics.
    pub fn stats(&self, pid: usize) -> &ScanStats {
        &self.shared.stats[pid]
    }
}

/// Process handle for the wait-free snapshot.
pub struct WfPort<T> {
    shared: Arc<WfShared<T>>,
    me: usize,
    last: WfSlot<T>,
    /// Persistent double-collect buffers (see [`crate::memory::Port`]):
    /// slots whose seq is unchanged since the buffered copy are provably
    /// identical — including their embedded views — and are not re-cloned.
    /// That matters even more here than in the bounded construction,
    /// because every `WfSlot` clone deep-copies an `n`-entry view.
    c1: Vec<WfSlot<T>>,
    c2: Vec<WfSlot<T>>,
    /// Per-slot seqlock version tokens keyed to `c1`/`c2` (see
    /// [`bprc_sim::Reg::read_changed`]): a register whose version word still
    /// equals the token is provably unwritten, so the collect skips the
    /// load *and* the `n`-entry embedded-view unpack — the expensive part
    /// of a `WfSlot` read.
    v1: Vec<u64>,
    v2: Vec<u64>,
    /// Mover bookkeeping, reset per scan.
    moved: Vec<bool>,
    /// Persistent result buffer: [`scan_slots`](WfPort::scan_slots) leaves
    /// the completed view here, so a steady-state scan allocates nothing.
    view: Vec<(T, u64)>,
    /// Amortized-scan mode (opt-in, see [`WfPort::set_lazy`]).
    lazy: bool,
    /// Whether `view` still equals the memory state certified by the last
    /// successful scan. Only a *no-mover* success sets this: a **borrowed**
    /// view is legal for the scan that borrowed it but need not equal the
    /// memory state at any later instant, so it is never reused.
    view_valid: bool,
}

impl<T> std::fmt::Debug for WfPort<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfPort").field("me", &self.me).finish()
    }
}

impl<T> WfPort<T>
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    /// This port's pid.
    pub fn pid(&self) -> usize {
        self.me
    }

    /// Switches the port's amortized *lazy-scan* mode (off by default) —
    /// the same revalidate-and-reuse fast path as
    /// [`Port::set_lazy`](crate::memory::Port::set_lazy): a scan whose
    /// previous (non-borrowed) view is still intact probes every other
    /// register once through the version tokens and, if nothing moved,
    /// returns the old view — it linearizes at the first probe read. One
    /// caveat specific to this construction: the probe counts as a scan
    /// attempt, so with lazy mode on, a scan completes within `n + 2`
    /// attempts instead of `n + 1` (a failed probe costs one attempt before
    /// the normal wait-free argument takes over).
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
    }

    /// Whether amortized lazy-scan mode is on.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Publishes `value`: embedded scan, then write `(value, seq+1, view)`.
    /// Wait-free: one (wait-free) scan plus one register write.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn update(&mut self, ctx: &mut Ctx, value: T) -> Result<(), Halted> {
        self.scan_slots(ctx)?;
        let seq = self.last.seq + 1;
        ctx.annotate(labels::UPD_START, vec![seq]);
        ctx.phase(PhaseKind::Write);
        let slot = WfSlot {
            value,
            seq,
            view: self.view.clone(),
        };
        self.shared.values[self.me].write_tagged(ctx, slot.clone(), seq)?;
        self.last = slot;
        // The cached view no longer includes this process's latest write —
        // a lazy scan must not reuse it.
        self.view_valid = false;
        ctx.annotate(labels::UPD_END, vec![seq]);
        self.shared.stats[self.me]
            .updates
            .fetch_add(1, Ordering::Relaxed);
        ctx.count(Counter::Updates, 1);
        Ok(())
    }

    /// Takes a snapshot — **wait-free**: at most `n + 1` attempts.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the scheduler stopped this process.
    pub fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<T>, Halted> {
        self.scan_slots(ctx)?;
        Ok(self.view.iter().map(|(v, _)| v.clone()).collect())
    }

    /// Like [`scan`](WfPort::scan) but refills `out` in place, reusing its
    /// capacity (and the elements' heap, via `clone_from`): together with
    /// the persistent collect and view buffers, a steady-state scan
    /// allocates nothing.
    ///
    /// # Errors
    ///
    /// As for [`scan`](WfPort::scan).
    pub fn scan_into(&mut self, ctx: &mut Ctx, out: &mut Vec<T>) -> Result<(), Halted> {
        self.scan_slots(ctx)?;
        if out.len() == self.shared.n {
            for (dst, (src, _)) in out.iter_mut().zip(self.view.iter()) {
                dst.clone_from(src);
            }
        } else {
            out.clear();
            out.extend(self.view.iter().map(|(v, _)| v.clone()));
        }
        Ok(())
    }

    /// Unlike the bounded construction's scan, the second collect never
    /// exits early: the `n + 1`-attempt bound rests on charging every
    /// failing attempt to a *new* mover or a borrow, which requires seeing
    /// every register's seq in both collects of every attempt. The result
    /// is left in `self.view`.
    fn scan_slots(&mut self, ctx: &mut Ctx) -> Result<(), Halted> {
        let n = self.shared.n;
        let span = crate::collect::begin_scan(ctx);
        self.moved.fill(false);
        let mut attempt = crate::collect::AttemptTracker::default();
        // Lazy fast path (see [`WfPort::set_lazy`]): revalidate the previous
        // no-mover view with one probe pass and reuse it if nothing moved.
        // A failed probe falls through into the wait-free loop below with
        // the probe's reads kept as a warm cache.
        if self.lazy && self.view_valid {
            attempt.begin_attempt(ctx, &self.shared.stats[self.me]);
            let mut reads = 0;
            let mut changed = false;
            {
                let (c2, v2) = (&mut self.c2, &mut self.v2);
                for j in 0..n {
                    if j == self.me {
                        continue;
                    }
                    reads += 1;
                    let slot = &mut c2[j];
                    let mut delta = false;
                    v2[j] = self.shared.values[j].read_changed(ctx, v2[j], |s| {
                        if slot.seq != s.seq {
                            slot.clone_from(s);
                            delta = true;
                        }
                    })?;
                    if delta {
                        // Doomed reuse — stop probing (failure path only).
                        changed = true;
                        break;
                    }
                }
            }
            crate::collect::flush_collect_reads(ctx, &self.shared.stats[self.me], reads);
            if !changed {
                let view = &self.view;
                crate::collect::finish_reuse(
                    ctx,
                    &self.shared.stats[self.me],
                    span,
                    attempt.tries(),
                    reads,
                    || view.iter().map(|(_, s)| *s).collect(),
                );
                return Ok(());
            }
            self.view_valid = false;
        }
        loop {
            attempt.begin_attempt(ctx, &self.shared.stats[self.me]);
            let mut reads = crate::collect::collect_pass(
                ctx,
                &self.shared.values,
                self.me,
                &mut self.c1,
                &mut self.v1,
            )?;
            reads += crate::collect::collect_pass(
                ctx,
                &self.shared.values,
                self.me,
                &mut self.c2,
                &mut self.v2,
            )?;
            crate::collect::flush_collect_reads(ctx, &self.shared.stats[self.me], reads);
            // Movers: registers whose seq changed between the two collects —
            // i.e. processes whose write landed inside this attempt.
            let any_mover = (0..n).any(|j| j != self.me && self.c1[j].seq != self.c2[j].seq);
            if !any_mover {
                let me = self.me;
                debug_assert_eq!(self.view.len(), n);
                for j in 0..n {
                    let (src, seq) = if j == me {
                        (&self.last.value, self.last.seq)
                    } else {
                        (&self.c2[j].value, self.c2[j].seq)
                    };
                    self.view[j].0.clone_from(src);
                    self.view[j].1 = seq;
                }
                self.view_valid = true;
                let view = &self.view;
                crate::collect::finish_scan(
                    ctx,
                    &self.shared.stats[me],
                    span,
                    attempt.tries(),
                    || view.iter().map(|(_, s)| *s).collect(),
                );
                return Ok(());
            }
            for j in 0..n {
                if j == self.me || self.c1[j].seq == self.c2[j].seq {
                    continue;
                }
                if self.moved[j] {
                    // j's register changed inside two different attempts:
                    // the update behind the second change ran its embedded
                    // scan entirely within this scan — borrow its view. A
                    // borrowed view is legal *for this scan* but need not
                    // equal the memory state at any later instant, so it is
                    // never eligible for lazy reuse.
                    self.view_valid = false;
                    self.view.clone_from(&self.c2[j].view);
                    let view = &self.view;
                    let tries = attempt.tries();
                    crate::collect::finish_scan(
                        ctx,
                        &self.shared.stats[self.me],
                        span,
                        tries,
                        || view.iter().map(|(_, s)| *s).collect(),
                    );
                    return Ok(());
                }
                self.moved[j] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_history;
    use bprc_sim::sched::{FnStrategy, RandomStrategy, SoloBursts};
    use bprc_sim::world::ProcBody;
    use bprc_sim::Decision;

    #[test]
    fn sequential_update_scan() {
        let mut w = World::builder(2).build();
        let snap = WaitFreeSnapshot::<u32>::new(&w, 2, 0);
        let mut p0 = snap.port(0);
        let mut p1 = snap.port(1);
        let bodies: Vec<ProcBody<Vec<u32>>> = vec![
            Box::new(move |ctx| {
                p0.update(ctx, 5)?;
                p0.scan(ctx)
            }),
            Box::new(move |ctx| {
                p1.update(ctx, 9)?;
                Ok(vec![])
            }),
        ];
        let rep = w.run(bodies, Box::new(bprc_sim::sched::RoundRobin::new()));
        let view = rep.outputs[0].clone().unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view[0], 5, "own slot current");
    }

    #[test]
    fn p1_p3_hold_on_random_schedules() {
        for seed in 0..60 {
            let n = 3;
            let mut world = World::builder(n).seed(seed).step_limit(2_000_000).build();
            let snap = WaitFreeSnapshot::<u64>::new(&world, n, 0);
            let meta = snap.meta();
            let bodies: Vec<ProcBody<()>> = (0..n)
                .map(|i| {
                    let mut port = snap.port(i);
                    let b: ProcBody<()> = Box::new(move |ctx| {
                        for k in 0..4u64 {
                            port.update(ctx, (i as u64) * 100 + k)?;
                            port.scan(ctx)?;
                        }
                        Ok(())
                    });
                    b
                })
                .collect();
            let rep = world.run(bodies, Box::new(RandomStrategy::new(seed)));
            let check = check_history(rep.history.as_ref().unwrap(), &meta);
            assert!(check.ok(), "seed {seed}: violations {:?}", check.violations);
            assert!(check.scans > 0);
        }
    }

    #[test]
    fn p1_p3_hold_under_solo_bursts() {
        for burst in [1u64, 2, 5, 9, 17] {
            let n = 4;
            let mut world = World::builder(n).step_limit(2_000_000).build();
            let snap = WaitFreeSnapshot::<u64>::new(&world, n, 0);
            let meta = snap.meta();
            let bodies: Vec<ProcBody<()>> = (0..n)
                .map(|i| {
                    let mut port = snap.port(i);
                    let b: ProcBody<()> = Box::new(move |ctx| {
                        for k in 0..3u64 {
                            port.update(ctx, (i as u64) * 10 + k)?;
                            port.scan(ctx)?;
                        }
                        Ok(())
                    });
                    b
                })
                .collect();
            let rep = world.run(bodies, Box::new(SoloBursts::new(burst)));
            let check = check_history(rep.history.as_ref().unwrap(), &meta);
            assert!(check.ok(), "burst {burst}: {:?}", check.violations);
        }
    }

    #[test]
    fn hostile_writer_cannot_starve_the_scan() {
        // The same adversary pattern that starves the paper's scan (E7):
        // here the scan must complete anyway.
        let mut w = World::builder(2).step_limit(200_000).build();
        let snap = WaitFreeSnapshot::<u64>::new(&w, 2, 0);
        let mut scanner = snap.port(0);
        let mut writer = snap.port(1);
        let bodies: Vec<ProcBody<Vec<u64>>> = vec![
            Box::new(move |ctx| scanner.scan(ctx)),
            Box::new(move |ctx| {
                let mut k = 0u64;
                loop {
                    k += 1;
                    writer.update(ctx, k)?;
                }
            }),
        ];
        // Writer-heavy schedule: 2 writer steps per scanner step.
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            if !view.step.is_multiple_of(3) && view.runnable.contains(&1) {
                Decision::Grant(1)
            } else if view.runnable.contains(&0) {
                Decision::Grant(0)
            } else {
                Decision::Grant(1)
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        assert!(
            rep.outputs[0].is_some(),
            "wait-free scan must complete under writer pressure (halted: {:?})",
            rep.halted[0]
        );
        assert_eq!(snap.stats(0).scans.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scan_attempts_are_bounded_by_n_plus_1() {
        for seed in 0..40 {
            let n = 4;
            let mut w = World::builder(n).seed(seed).step_limit(1_000_000).build();
            let snap = WaitFreeSnapshot::<u64>::new(&w, n, 0);
            let mut bodies: Vec<ProcBody<u64>> = Vec::new();
            let mut scanner = snap.port(0);
            bodies.push(Box::new(move |ctx| {
                scanner.scan(ctx)?;
                Ok(0)
            }));
            for i in 1..n {
                let mut port = snap.port(i);
                bodies.push(Box::new(move |ctx| {
                    for k in 0..30u64 {
                        port.update(ctx, k)?;
                    }
                    Ok(0)
                }));
            }
            let _ = w.run(bodies, Box::new(RandomStrategy::new(seed)));
            let attempts = snap.stats(0).attempts.load(Ordering::Relaxed);
            assert!(
                attempts <= (n as u64) + 1,
                "seed {seed}: {attempts} attempts > n+1"
            );
        }
    }

    #[test]
    fn borrowed_views_are_exercised() {
        // Force a borrow: the writer completes two full updates between the
        // scanner's collects of successive attempts.
        let mut w = World::builder(2).step_limit(100_000).build();
        let snap = WaitFreeSnapshot::<u64>::new(&w, 2, 0);
        let meta = snap.meta();
        let mut scanner = snap.port(0);
        let mut writer = snap.port(1);
        let bodies: Vec<ProcBody<Vec<u64>>> = vec![
            Box::new(move |ctx| scanner.scan(ctx)),
            Box::new(move |ctx| {
                for k in 1..=6u64 {
                    writer.update(ctx, k)?;
                }
                Ok(vec![])
            }),
        ];
        // Interleave so each scanner attempt straddles a writer's store:
        // scanner reads c1[1], writer completes an update, scanner reads
        // c2[1] (seq changed -> mover), repeat -> borrow on the second.
        let mut phase = 0u32;
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            phase += 1;
            // Alternate small bursts; exact interleaving found by phase
            // parity works for the 2-process op pattern here.
            if phase % 4 < 2 && view.runnable.contains(&1) {
                Decision::Grant(1)
            } else if view.runnable.contains(&0) {
                Decision::Grant(0)
            } else {
                Decision::Grant(view.runnable[0])
            }
        });
        let rep = w.run(bodies, Box::new(strategy));
        let check = check_history(rep.history.as_ref().unwrap(), &meta);
        assert!(check.ok(), "violations: {:?}", check.violations);
        assert!(rep.outputs[0].is_some(), "scan completed");
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn ports_single_owner() {
        let w = World::builder(1).build();
        let snap = WaitFreeSnapshot::<u8>::new(&w, 1, 0);
        let _a = snap.port(0);
        let _b = snap.port(0);
    }

    #[test]
    fn scan_into_refills_in_place() {
        let mut w = World::builder(2).build();
        let snap = WaitFreeSnapshot::<u32>::new(&w, 2, 0);
        let mut p0 = snap.port(0);
        let mut p1 = snap.port(1);
        let bodies: Vec<ProcBody<Vec<u32>>> = vec![
            Box::new(move |ctx| {
                let mut out = vec![99, 99]; // right length: refilled via clone_from
                p0.update(ctx, 5)?;
                p0.scan_into(ctx, &mut out)?;
                Ok(out)
            }),
            Box::new(move |ctx| {
                let mut out = Vec::new(); // wrong length: cleared and refilled
                p1.update(ctx, 9)?;
                p1.scan_into(ctx, &mut out)?;
                Ok(out)
            }),
        ];
        let rep = w.run(bodies, Box::new(bprc_sim::sched::RoundRobin::new()));
        let v0 = rep.outputs[0].clone().unwrap();
        let v1 = rep.outputs[1].clone().unwrap();
        assert_eq!(v0.len(), 2);
        assert_eq!(v0[0], 5, "own slot current");
        assert_eq!(v1.len(), 2);
        assert_eq!(v1[1], 9, "own slot current");
    }

    /// The mirror of the sim-level seqlock equivalence test
    /// (`fast_and_locked_planes_are_observationally_identical` in
    /// `crates/sim/tests/seqlock_adversarial.rs`), one layer up: a
    /// [`WaitFreeSnapshot::new_fast`] workload run on the seqlock plane and
    /// the locked plane must produce identical outputs, step counts,
    /// recorded register ops, and scan statistics. WfSlot<u64> at n=3 packs
    /// to 9 words, comfortably on the dynamic fast path.
    #[test]
    fn fast_and_locked_planes_are_observationally_identical() {
        use bprc_sim::RegisterPlane;
        let run = |plane: RegisterPlane, seed: u64| {
            let n = 3;
            let mut world = World::builder(n)
                .seed(seed)
                .register_plane(plane)
                .step_limit(2_000_000)
                .build();
            let snap = WaitFreeSnapshot::<u64>::new_fast(&world, n, 0);
            let meta = snap.meta();
            let bodies: Vec<ProcBody<Vec<u64>>> = (0..n)
                .map(|i| {
                    let mut port = snap.port(i);
                    let b: ProcBody<Vec<u64>> = Box::new(move |ctx| {
                        let mut out = Vec::new();
                        for k in 0..4u64 {
                            port.update(ctx, (i as u64) * 100 + k)?;
                            port.scan_into(ctx, &mut out)?;
                        }
                        Ok(out)
                    });
                    b
                })
                .collect();
            let rep = world.run(bodies, Box::new(RandomStrategy::new(seed)));
            let check = check_history(rep.history.as_ref().unwrap(), &meta);
            assert!(check.ok(), "seed {seed}: {:?}", check.violations);
            let ops: Vec<_> = rep.history.as_ref().unwrap().ops().collect();
            let stats: Vec<(u64, u64, u64)> = (0..n)
                .map(|p| {
                    let s = snap.stats(p);
                    (
                        s.scans.load(Ordering::Relaxed),
                        s.attempts.load(Ordering::Relaxed),
                        s.collect_reads.load(Ordering::Relaxed),
                    )
                })
                .collect();
            (rep.outputs.clone(), rep.steps, ops, stats)
        };
        for seed in [0u64, 1, 7, 42, 99] {
            let fast = run(RegisterPlane::Fast, seed);
            let locked = run(RegisterPlane::Locked, seed);
            assert_eq!(
                fast, locked,
                "seed {seed}: plane changed observable behaviour"
            );
        }
    }
}
