//! Mutation testing of the construction *and* the checker: broken variants
//! of the scannable memory must produce views the P1–P3 checker rejects.
//! Each mutant removes exactly one ingredient of the paper's construction,
//! demonstrating that every ingredient is load-bearing (and that the
//! checker has teeth).

use bprc_sim::sched::FnStrategy;
use bprc_sim::world::ProcBody;
use bprc_sim::{Ctx, Decision, Halted, Reg, World};
use bprc_snapshot::checker::{check_history, SnapshotViolation};
use bprc_snapshot::memory::labels;
use bprc_snapshot::SnapshotMeta;

/// A deliberately broken "snapshot": reads each register once, no double
/// collect, no arrows, no toggle — a plain collect. Under a schedule that
/// interleaves writes into the collect it returns torn views.
struct NaiveCollect {
    values: Vec<Reg<(u64, u64)>>, // (value, ghost seq)
    me: usize,
    seq: u64,
    last: (u64, u64),
}

impl NaiveCollect {
    fn mem(world: &World, n: usize) -> Vec<Self> {
        let regs: Vec<Reg<(u64, u64)>> = (0..n)
            .map(|i| world.reg(format!("V_{i}"), (0u64, 0u64)))
            .collect();
        (0..n)
            .map(|me| NaiveCollect {
                values: regs.clone(),
                me,
                seq: 0,
                last: (0, 0),
            })
            .collect()
    }

    fn update(&mut self, ctx: &mut Ctx, v: u64) -> Result<(), Halted> {
        self.seq += 1;
        ctx.annotate(labels::UPD_START, vec![self.seq]);
        self.last = (v, self.seq);
        self.values[self.me].write_tagged(ctx, self.last, self.seq)?;
        ctx.annotate(labels::UPD_END, vec![self.seq]);
        Ok(())
    }

    fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<u64>, Halted> {
        ctx.annotate(labels::SCAN_START, vec![]);
        let mut out = Vec::new();
        let mut seqs = Vec::new();
        for (j, r) in self.values.iter().enumerate() {
            let (v, s) = if j == self.me {
                self.last
            } else {
                r.read(ctx)?
            };
            out.push(v);
            seqs.push(s);
        }
        ctx.annotate(labels::SCAN_END, seqs);
        Ok(out)
    }

    fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            value_regs: self.values.iter().map(|r| r.id()).collect(),
        }
    }
}

#[test]
fn naive_collect_is_caught_as_not_instantaneous() {
    // 3 processes: a scanner and two writers. Schedule: scanner reads V_1
    // (old), writer 1 writes, writer 2 writes, scanner reads V_2 (new).
    // The returned view (old V_1, new V_2) never existed in memory if
    // writer 1 wrote before writer 2... we need the opposite torn pair:
    // scanner sees OLD w1 but NEW w2 where w1's second write precedes w2's.
    let mut world = World::builder(3).build();
    let mut ports = NaiveCollect::mem(&world, 3);
    let meta = ports[0].meta();
    let mut p2 = ports.pop().unwrap();
    let mut p1 = ports.pop().unwrap();
    let mut p0 = ports.pop().unwrap();

    let bodies: Vec<ProcBody<Vec<u64>>> = vec![
        Box::new(move |ctx| p0.scan(ctx)),
        Box::new(move |ctx| {
            p1.update(ctx, 11)?;
            Ok(vec![])
        }),
        Box::new(move |ctx| {
            p2.update(ctx, 22)?;
            Ok(vec![])
        }),
    ];
    // Events: scanner reads V_1 first (sees 0), then both writers complete
    // (w1 then w2), then scanner reads V_2 (sees 22). View = (old, new) but
    // w1's write completed before w2's => no instant matches.
    let script = [0usize, 1, 2, 0];
    let mut at = 0;
    let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
        let pick = script
            .get(at)
            .copied()
            .filter(|p| view.runnable.contains(p))
            .unwrap_or(view.runnable[0]);
        at += 1;
        Decision::Grant(pick)
    });
    let report = world.run(bodies, Box::new(strategy));
    let view = report.outputs[0].clone().unwrap();
    assert_eq!(view, vec![0, 0, 22], "the torn view this mutant produces");
    let check = check_history(report.history.as_ref().unwrap(), &meta);
    assert!(
        check
            .violations
            .iter()
            .any(|v| matches!(v, SnapshotViolation::NotInstantaneous { .. })),
        "checker must flag the torn view, got {:?}",
        check.violations
    );
}

/// The real construction minus the toggle bit: two consecutive writes of
/// the same value become invisible to the double collect (ABA), so a scan
/// can return a view that mixes epochs.
mod no_toggle {
    use super::*;

    pub struct NoToggle {
        values: Vec<Reg<(u64, u64)>>,
        arrows: Vec<Vec<Option<Reg<bool>>>>,
        me: usize,
        seq: u64,
        last: (u64, u64),
    }

    impl NoToggle {
        pub fn mem(world: &World, n: usize) -> Vec<Self> {
            let regs: Vec<Reg<(u64, u64)>> = (0..n)
                .map(|i| world.reg(format!("V_{i}"), (0u64, 0u64)))
                .collect();
            let arrows: Vec<Vec<Option<Reg<bool>>>> = (0..n)
                .map(|w| {
                    (0..n)
                        .map(|s| (w != s).then(|| world.reg(format!("A_{w}_{s}"), false)))
                        .collect()
                })
                .collect();
            (0..n)
                .map(|me| NoToggle {
                    values: regs.clone(),
                    arrows: arrows.clone(),
                    me,
                    seq: 0,
                    last: (0, 0),
                })
                .collect()
        }

        /// Update WITHOUT raising arrows first — the other deliberate break
        /// (isolating the toggle alone is awkward because the checker's
        /// ghost seq would still differ; removing the arrows shows the same
        /// failure mode: undetected mid-collect writes).
        pub fn update(&mut self, ctx: &mut Ctx, v: u64) -> Result<(), Halted> {
            self.seq += 1;
            ctx.annotate(labels::UPD_START, vec![self.seq]);
            self.last = (v, self.seq);
            self.values[self.me].write_tagged(ctx, self.last, self.seq)?;
            ctx.annotate(labels::UPD_END, vec![self.seq]);
            Ok(())
        }

        /// Double collect comparing VALUES only (no toggle, no ghost seq),
        /// arrows checked but never raised by writers.
        pub fn scan(&mut self, ctx: &mut Ctx) -> Result<Vec<u64>, Halted> {
            let n = self.values.len();
            ctx.annotate(labels::SCAN_START, vec![]);
            loop {
                for j in 0..n {
                    if let Some(a) = &self.arrows[j][self.me] {
                        a.write(ctx, false)?;
                    }
                }
                let mut c1 = Vec::new();
                for (j, r) in self.values.iter().enumerate() {
                    c1.push(if j == self.me {
                        self.last
                    } else {
                        r.read(ctx)?
                    });
                }
                let mut c2 = Vec::new();
                for (j, r) in self.values.iter().enumerate() {
                    c2.push(if j == self.me {
                        self.last
                    } else {
                        r.read(ctx)?
                    });
                }
                let mut raised = false;
                for j in 0..n {
                    if let Some(a) = &self.arrows[j][self.me] {
                        raised |= a.read(ctx)?;
                    }
                }
                // The mutation: compare payload values only.
                let same = c1.iter().zip(&c2).all(|(x, y)| x.0 == y.0);
                if same && !raised {
                    ctx.annotate(labels::SCAN_END, c2.iter().map(|s| s.1).collect());
                    return Ok(c2.into_iter().map(|s| s.0).collect());
                }
            }
        }

        pub fn meta(&self) -> SnapshotMeta {
            SnapshotMeta {
                value_regs: self.values.iter().map(|r| r.id()).collect(),
            }
        }
    }
}

#[test]
fn missing_arrows_and_toggle_caught_by_checker() {
    // Writer 1 performs an ABA (5, 0, 5); writer 2 writes the same value
    // twice. The mutant's value-only double collect matches, and with no
    // raised arrows nothing forces a retry — but the returned view pairs
    // slot 1's value with a slot-2 value written only AFTER slot 1 was
    // superseded. The checker's ghost sequence numbers expose it.
    use no_toggle::NoToggle;
    let mut world = World::builder(3).step_limit(100_000).build();
    let mut ports = NoToggle::mem(&world, 3);
    let meta = ports[0].meta();
    let mut w2 = ports.pop().unwrap();
    let mut w1 = ports.pop().unwrap();
    let mut scanner = ports.pop().unwrap();

    let bodies: Vec<ProcBody<Vec<u64>>> = vec![
        Box::new(move |ctx| scanner.scan(ctx)),
        Box::new(move |ctx| {
            w1.update(ctx, 5)?;
            w1.update(ctx, 0)?; // ABA back to the initial value
            w1.update(ctx, 5)?;
            Ok(vec![])
        }),
        Box::new(move |ctx| {
            w2.update(ctx, 7)?;
            w2.update(ctx, 7)?; // same value twice — what the toggle exists for
            Ok(vec![])
        }),
    ];
    // e0: w2 stores 7 (t1)
    // e1-2: scanner lowers both arrows
    // e3: c1 reads V1 -> (0, init)     e4: c1 reads V2 -> (7, t1)
    // e5: w1 stores 5 (s1)             e6: w1 stores 0 (s2)
    // e7: c2 reads V1 -> (0, s2)
    // e8: w1 stores 5 (s3)  <- supersedes s2 inside the collect
    // e9: w2 stores 7 (t2)  <- after s3
    // e10: c2 reads V2 -> (7, t2)
    // e11-12: arrow checks (never raised) -> mutant RETURNS (0, s2, t2)
    let script = [2usize, 0, 0, 0, 0, 1, 1, 0, 1, 2, 0, 0, 0];
    let mut at = 0;
    let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
        let pick = script
            .get(at)
            .copied()
            .filter(|p| view.runnable.contains(p))
            .unwrap_or(view.runnable[0]);
        at += 1;
        Decision::Grant(pick)
    });
    let report = world.run(bodies, Box::new(strategy));
    let view = report.outputs[0]
        .clone()
        .expect("mutant returns the bad view");
    assert_eq!(view, vec![0, 0, 7]);
    let check = check_history(report.history.as_ref().unwrap(), &meta);
    assert!(
        check
            .violations
            .iter()
            .any(|v| matches!(v, SnapshotViolation::NotInstantaneous { .. })),
        "checker must flag the mixed-epoch view, got {:?}",
        check.violations
    );
}

/// Control: the real construction under the *same* adversarial scripts
/// stays clean (the mutants' failure is due to the mutation, not the
/// schedule).
#[test]
fn real_construction_survives_the_same_schedules() {
    use bprc_registers::DirectArrow;
    use bprc_snapshot::ScannableMemory;
    for script in [vec![0usize, 1, 2, 0], vec![1, 0, 0, 1, 1, 0, 0]] {
        let n = 3;
        let mut world = World::builder(n).step_limit(100_000).build();
        let mem = ScannableMemory::<u64, DirectArrow>::new(&world, n, 0);
        let meta = mem.meta();
        let mut ports: Vec<_> = (0..n).map(|i| mem.port(i)).collect();
        let mut p2 = ports.pop().unwrap();
        let mut p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let bodies: Vec<ProcBody<Vec<u64>>> = vec![
            Box::new(move |ctx| p0.scan(ctx)),
            Box::new(move |ctx| {
                p1.update(ctx, 11)?;
                p1.update(ctx, 13)?;
                p1.update(ctx, 11)?;
                Ok(vec![])
            }),
            Box::new(move |ctx| {
                p2.update(ctx, 22)?;
                Ok(vec![])
            }),
        ];
        let mut at = 0;
        let s = script.clone();
        let strategy = FnStrategy::new(move |view: &bprc_sim::ScheduleView<'_>| {
            let pick = s
                .get(at)
                .copied()
                .filter(|p| view.runnable.contains(p))
                .unwrap_or(view.runnable[at % view.runnable.len()]);
            at += 1;
            Decision::Grant(pick)
        });
        let report = world.run(bodies, Box::new(strategy));
        let check = check_history(report.history.as_ref().unwrap(), &meta);
        assert!(
            check.ok(),
            "real construction flagged: {:?}",
            check.violations
        );
    }
}
