//! Buffer-reuse scans must be observationally identical to the pre-change
//! clone-based implementation (kept as `scan_legacy`).
//!
//! The reuse path keeps two persistent collect buffers on the port and skips
//! re-cloning slots whose ghost sequence number is unchanged. The bug class
//! that invites is stale caching: a wrong skip leaves an old value in the
//! buffer and the scan returns a snapshot that never existed. These tests
//! drive both implementations over identical memory states — seeded random
//! action sequences (no proptest; an in-test LCG picks the actions) — and
//! require the views to match exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bprc_registers::{ArrowCell, DirectArrow, HandshakeArrow};
use bprc_sim::sched::{FnStrategy, SoloBursts};
use bprc_sim::world::ProcBody;
use bprc_sim::{Decision, ScheduleView, World};
use bprc_snapshot::ScannableMemory;

/// Minimal deterministic generator so the test needs no external crates.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Every process owns its own port and performs a seeded sequence of
/// actions: an update, or a back-to-back triple of buffer-reuse scan,
/// legacy scan, and allocating scan. The strategy below grants each chosen
/// process an entire action atomically (it watches per-process action
/// counters rather than guessing op counts), so all scans in a triple
/// observe the same memory and any divergence is a caching bug — while
/// other processes' updates between a process's consecutive scans keep the
/// seq-keyed skip logic under pressure.
fn solo_action_equivalence<A: ArrowCell>(seed: u64) {
    let n = 4;
    let mut world = World::builder(n).seed(seed).step_limit(2_000_000).build();
    let mem = ScannableMemory::<u64, A>::new(&world, n, 0);
    let actions: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let bodies: Vec<ProcBody<()>> = (0..n)
        .map(|i| {
            let mut port = mem.port(i);
            let acts = Arc::clone(&actions);
            let b: ProcBody<()> = Box::new(move |ctx| {
                let mut rng = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(i as u64 + 1);
                let mut reuse_view: Vec<u64> = Vec::new();
                for step in 0..25u64 {
                    if lcg(&mut rng) % 3 != 0 {
                        port.update(ctx, (i as u64 + 1) * 10_000 + step)?;
                    } else {
                        port.scan_into(ctx, &mut reuse_view)?;
                        let legacy_view = port.scan_legacy(ctx)?;
                        assert_eq!(
                            reuse_view, legacy_view,
                            "seed {seed} pid {i} step {step}: buffer-reuse scan diverged from legacy"
                        );
                        let alloc_view = port.scan(ctx)?;
                        assert_eq!(
                            alloc_view, legacy_view,
                            "seed {seed} pid {i} step {step}: allocating scan wrapper diverged"
                        );
                    }
                    acts[i].fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            });
            b
        })
        .collect();
    // Grant whole actions: stick with the current process until its action
    // counter advances (or it finishes), then pick the next one at random.
    let acts = Arc::clone(&actions);
    let mut rng = seed.wrapping_mul(0xA24B_AED4).wrapping_add(7);
    let mut cur: Option<(usize, u64)> = None;
    let strategy = FnStrategy::new(move |view: &ScheduleView<'_>| {
        let done = match cur {
            Some((p, since)) => {
                !view.runnable.contains(&p) || acts[p].load(Ordering::Relaxed) > since
            }
            None => true,
        };
        if done {
            let p = view.runnable[(lcg(&mut rng) as usize) % view.runnable.len()];
            cur = Some((p, acts[p].load(Ordering::Relaxed)));
        }
        Decision::Grant(cur.unwrap().0)
    });
    let rep = world.run(bodies, Box::new(strategy));
    assert_eq!(rep.decided_count(), n, "seed {seed}: run halted early");
}

#[test]
fn solo_scan_pairs_match_legacy_direct_arrows() {
    for seed in 0..60 {
        solo_action_equivalence::<DirectArrow>(seed);
    }
}

#[test]
fn solo_scan_pairs_match_legacy_handshake_arrows() {
    for seed in 0..30 {
        solo_action_equivalence::<HandshakeArrow>(seed);
    }
}

/// Cross-world check with every process active: run the same seeded solo-burst
/// schedule once with buffer-reuse scans and once with legacy scans. Giant
/// bursts mean every scan succeeds on its first attempt, where both
/// implementations are pinned to the same scheduled op count — so the two
/// worlds stay in lockstep and must produce identical view sequences.
#[test]
fn whole_runs_match_legacy_under_solo_bursts() {
    let n = 3;
    let rounds = 5u64;
    let run = |legacy: bool, seed: u64| -> Vec<Option<Vec<Vec<u64>>>> {
        let mut world = World::builder(n).seed(seed).step_limit(2_000_000).build();
        let mem = ScannableMemory::<u64, DirectArrow>::new(&world, n, 0);
        let bodies: Vec<ProcBody<Vec<Vec<u64>>>> = (0..n)
            .map(|i| {
                let mut port = mem.port(i);
                let b: ProcBody<Vec<Vec<u64>>> = Box::new(move |ctx| {
                    let mut views = Vec::new();
                    for k in 0..rounds {
                        port.update(ctx, (i as u64 + 1) * 1000 + k)?;
                        views.push(if legacy {
                            port.scan_legacy(ctx)?
                        } else {
                            port.scan(ctx)?
                        });
                    }
                    Ok(views)
                });
                b
            })
            .collect();
        world
            .run(bodies, Box::new(SoloBursts::new(100_000)))
            .outputs
    };
    for seed in [0, 3, 17, 91] {
        assert_eq!(
            run(false, seed),
            run(true, seed),
            "seed {seed}: reuse and legacy runs diverged"
        );
    }
}
