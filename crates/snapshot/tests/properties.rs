//! End-to-end verification of P1–P3 on real interleavings.
//!
//! Runs the scannable memory under many random lockstep schedules (both
//! arrow implementations, with and without crashes) and checks every
//! recorded history with the offline checker.

use bprc_registers::{ArrowCell, DirectArrow, HandshakeArrow};
use bprc_sim::sched::{CrashPlan, RandomStrategy, SoloBursts};
use bprc_sim::world::ProcBody;
use bprc_sim::{Strategy, World};
use bprc_snapshot::{check_history, ScannableMemory};

/// Each process interleaves updates and scans; returns its scan views.
fn bodies_for<A: ArrowCell>(
    mem: &ScannableMemory<u64, A>,
    n: usize,
    rounds: u64,
) -> Vec<ProcBody<Vec<Vec<u64>>>> {
    (0..n)
        .map(|i| {
            let mut port = mem.port(i);
            let b: ProcBody<Vec<Vec<u64>>> = Box::new(move |ctx| {
                let mut views = Vec::new();
                for k in 0..rounds {
                    port.update(ctx, (i as u64 + 1) * 1000 + k)?;
                    views.push(port.scan(ctx)?);
                }
                Ok(views)
            });
            b
        })
        .collect()
}

fn check_under<A: ArrowCell>(n: usize, rounds: u64, strategy: Box<dyn Strategy>, seed: u64) {
    let mut world = World::builder(n).seed(seed).step_limit(2_000_000).build();
    let mem = ScannableMemory::<u64, A>::new(&world, n, 0);
    let meta = mem.meta();
    let bodies = bodies_for(&mem, n, rounds);
    let report = world.run(bodies, strategy);
    let history = report.history.expect("lockstep records history");
    let check = check_history(&history, &meta);
    assert!(
        check.ok(),
        "seed {seed}: snapshot violations: {:?}",
        check.violations
    );
    assert!(check.scans > 0, "seed {seed}: no scans completed");
}

#[test]
fn p1_p3_hold_direct_random_schedules() {
    for seed in 0..40 {
        check_under::<DirectArrow>(3, 4, Box::new(RandomStrategy::new(seed)), seed);
    }
}

#[test]
fn p1_p3_hold_handshake_random_schedules() {
    for seed in 0..40 {
        check_under::<HandshakeArrow>(3, 4, Box::new(RandomStrategy::new(seed)), seed);
    }
}

#[test]
fn p1_p3_hold_larger_world() {
    for seed in 0..8 {
        check_under::<DirectArrow>(5, 3, Box::new(RandomStrategy::new(seed)), seed);
        check_under::<HandshakeArrow>(5, 3, Box::new(RandomStrategy::new(seed)), seed);
    }
}

#[test]
fn p1_p3_hold_solo_bursts() {
    // Extreme asynchrony: each process runs long solo bursts.
    for burst in [1, 3, 7, 19] {
        check_under::<DirectArrow>(4, 4, Box::new(SoloBursts::new(burst)), burst);
        check_under::<HandshakeArrow>(4, 4, Box::new(SoloBursts::new(burst)), burst);
    }
}

#[test]
fn p1_p3_hold_with_crashes() {
    // Crash one process mid-run; the survivors' scans must still satisfy
    // the properties (crashed writes may be half-finished).
    for seed in 0..20 {
        let strategy = CrashPlan::new(RandomStrategy::new(seed), vec![(25 + seed, 0)]);
        let mut world = World::builder(3).seed(seed).step_limit(2_000_000).build();
        let mem = ScannableMemory::<u64, HandshakeArrow>::new(&world, 3, 0);
        let meta = mem.meta();
        let bodies = bodies_for(&mem, 3, 4);
        let report = world.run(bodies, Box::new(strategy));
        let history = report.history.expect("history");
        let check = check_history(&history, &meta);
        assert!(
            check.ok(),
            "seed {seed}: violations with crashes: {:?}",
            check.violations
        );
    }
}

#[test]
fn scan_costs_are_linear_when_quiet() {
    // With a single process (no contention), one scan is exactly:
    // (n-1) lowers + 2(n-1) reads + (n-1) arrow checks. Here n = 1, so a
    // scan is free; use n = 3 with two idle processes instead.
    let mut world = World::builder(3).build();
    let mem = ScannableMemory::<u64, DirectArrow>::new(&world, 3, 0);
    let mut port = mem.port(0);
    let _p1 = mem.port(1);
    let _p2 = mem.port(2);
    let bodies: Vec<ProcBody<u64>> = vec![
        Box::new(move |ctx| {
            port.scan(ctx)?;
            Ok(0)
        }),
        Box::new(|_| Ok(0)),
        Box::new(|_| Ok(0)),
    ];
    let report = world.run(bodies, Box::new(RandomStrategy::new(0)));
    // DirectArrow: 2 lowers + 2 reads + 2 reads + 2 arrow reads = 8 ops.
    assert_eq!(report.steps, 8);
}
