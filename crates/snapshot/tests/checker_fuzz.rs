//! Robustness fuzzing of the P1–P3 checker: arbitrary (even nonsensical)
//! histories must never panic it, and verdicts must be deterministic.

use bprc_sim::history::{Annotation, Event, History, OpKind};
use bprc_snapshot::memory::labels;
use bprc_snapshot::{check_history, SnapshotMeta};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The checker is total and deterministic on arbitrary event soup.
    #[test]
    fn checker_never_panics(
        n in 1usize..=4,
        events in proptest::collection::vec((0u64..200, 0usize..4), 0..60),
        shapes in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        // Build events via the strategy manually (proptest can't nest the
        // dynamic `n` easily): reuse the tuple inputs as seeds.
        let _ = &shapes;
        let evs: Vec<Event> = events
            .iter()
            .zip(shapes.iter().chain(std::iter::repeat(&0)))
            .map(|(&(step, pid), &shape)| {
                let pid = pid % n;
                match shape % 4 {
                    0 => Event::Op {
                        step,
                        pid,
                        kind: if shape & 8 == 0 { OpKind::Write } else { OpKind::Read },
                        reg: 100 + (shape % (n as u64 + 2)) as usize,
                        tag: shape % 6,
                    },
                    1 => Event::Note {
                        step,
                        pid,
                        note: Annotation::new(
                            [labels::UPD_START, labels::UPD_END, labels::SCAN_START][(shape % 3) as usize],
                            vec![shape % 6],
                        ),
                    },
                    2 => Event::Note {
                        step,
                        pid,
                        note: Annotation::new(
                            labels::SCAN_END,
                            (0..n as u64).map(|i| (shape + i) % 6).collect(),
                        ),
                    },
                    _ => Event::Crash { step, pid },
                }
            })
            .collect();
        let meta = SnapshotMeta {
            value_regs: (100..100 + n).collect(),
        };
        let h = History::from_events(evs);
        let a = check_history(&h, &meta);
        let b = check_history(&h, &meta);
        prop_assert_eq!(a.scans, b.scans);
        prop_assert_eq!(a.violations.len(), b.violations.len());
    }

    /// Well-formed sequential histories (updates fully ordered, scans
    /// between them returning the true latest seqs) always pass.
    #[test]
    fn sequential_histories_always_pass(
        n in 1usize..=4,
        rounds in 1usize..=6,
    ) {
        let mut step = 0u64;
        let mut evs = Vec::new();
        let mut seqs = vec![0u64; n];
        for r in 0..rounds {
            let writer = r % n;
            let seq = seqs[writer] + 1;
            seqs[writer] = seq;
            evs.push(Event::Note { step, pid: writer, note: Annotation::new(labels::UPD_START, vec![seq]) });
            evs.push(Event::Op { step, pid: writer, kind: OpKind::Write, reg: 100 + writer, tag: seq });
            step += 1;
            evs.push(Event::Note { step, pid: writer, note: Annotation::new(labels::UPD_END, vec![seq]) });
            // A scan by the next process, after the write completes.
            let scanner = (r + 1) % n;
            evs.push(Event::Note { step, pid: scanner, note: Annotation::new(labels::SCAN_START, vec![]) });
            step += 1;
            evs.push(Event::Note { step, pid: scanner, note: Annotation::new(labels::SCAN_END, seqs.clone()) });
        }
        let meta = SnapshotMeta { value_regs: (100..100 + n).collect() };
        let report = check_history(&History::from_events(evs), &meta);
        prop_assert!(report.ok(), "violations: {:?}", report.violations);
        prop_assert_eq!(report.scans, rounds);
    }
}
