//! Property-based tests for the multivalued reduction and the multi-shot
//! log: agreement + validity over arbitrary value sets, widths and seeds.

use bprc_core::bounded::ConsensusParams;
use bprc_core::multishot::{LogCore, StaticProposals};
use bprc_core::multivalued::MvCore;
use bprc_sim::turn::{TurnDriver, TurnRandom};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multivalued_agreement_validity(
        n in 1usize..=4,
        width in 1u32..=10,
        raw_values in proptest::collection::vec(any::<u64>(), 4),
        seed in 0u64..100_000,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = raw_values.iter().take(n).map(|v| v & mask).collect();
        let params = ConsensusParams::quick(n);
        let procs: Vec<MvCore> = (0..n)
            .map(|p| MvCore::new(params.clone(), p, values[p], width, seed ^ (p as u64) << 40))
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 50_000_000);
        prop_assert!(r.completed, "did not terminate");
        let d = r.distinct_outputs();
        prop_assert_eq!(d.len(), 1, "agreement violated");
        prop_assert!(values.contains(d[0]), "decided {} not proposed", d[0]);
    }

    #[test]
    fn multishot_log_agreement_per_slot(
        n in 2usize..=3,
        slots in 1usize..=3,
        seed in 0u64..50_000,
    ) {
        let params = ConsensusParams::quick(n);
        let proposals: Vec<Vec<u64>> = (0..n)
            .map(|p| (0..slots).map(|s| (p * 37 + s * 11) as u64 & 0xFF).collect())
            .collect();
        let procs: Vec<LogCore<StaticProposals>> = (0..n)
            .map(|p| {
                LogCore::new(
                    params.clone(),
                    p,
                    slots,
                    8,
                    StaticProposals(proposals[p].clone()),
                    seed ^ (p as u64) << 33,
                )
            })
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 100_000_000);
        prop_assert!(r.completed);
        let logs: Vec<&Vec<u64>> = r.outputs.iter().flatten().collect();
        prop_assert_eq!(logs.len(), n);
        for other in &logs[1..] {
            prop_assert_eq!(logs[0], *other, "logs diverged");
        }
        for (slot, &v) in logs[0].iter().enumerate() {
            let proposed = (0..n).any(|p| proposals[p][slot] == v);
            prop_assert!(proposed, "slot {} value {} not proposed", slot, v);
        }
    }
}
