//! Regression tests for the stale-scan strip-corruption livelock.
//!
//! A process advances its edge-counter row based on a scan; a laggard's
//! concurrent catch-up write can land in between, and the combined rows
//! decode to a configuration that is no legal token-game state (a positive
//! cycle). Cyclically inflated max-path distances then freeze all further
//! catch-up — a livelock (reproduced at ~2% of random multishot schedules).
//! The fix is the degraded-mode gate in
//! [`bprc_strip::DistanceGraph::should_advance`]; these tests pin both the
//! mechanism and the recovery.

use bprc_core::bounded::ConsensusParams;
use bprc_core::multishot::{LogCore, StaticProposals};
use bprc_sim::turn::{TurnDriver, TurnRandom};
use bprc_strip::EdgeCounters;

/// The exact configuration that livelocked before the fix (found by the
/// multishot proptest, minimized by a seed sweep).
#[test]
fn seed_73_multishot_regression() {
    let n = 3;
    let seed = 73u64;
    let params = ConsensusParams::quick(n);
    let proposals: Vec<Vec<u64>> = (0..n).map(|p| vec![(p * 37) as u64 & 0xFF]).collect();
    let procs: Vec<LogCore<StaticProposals>> = (0..n)
        .map(|p| {
            LogCore::new(
                params.clone(),
                p,
                1,
                8,
                StaticProposals(proposals[p].clone()),
                seed ^ (p as u64) << 33,
            )
        })
        .collect();
    let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 2_000_000);
    assert!(r.completed, "regression: seed 73 livelocked again");
    assert_eq!(r.distinct_outputs().len(), 1);
}

/// Demonstrates the root cause directly: the stale-scan race. A process
/// advances its row from a scan in which a laggard had not yet caught up;
/// the laggard's concurrent catch-up lands first. The combined rows decode
/// to a positive cycle — a configuration no sequential token-game play
/// produces — and without the degraded-mode gate the laggard could then be
/// frozen out forever.
#[test]
fn stale_scan_race_corrupts_and_degraded_mode_recovers() {
    let k = 2u32;
    // Hand-built race outcome (taken from a real stuck run, slot-1 level-0):
    // r0 advanced vs r1 (its scan showed r2 capped at K) while r2's
    // catch-up write landed in between.
    let rows = vec![vec![0u32, 3, 2], vec![1, 0, 1], vec![1, 1, 0]];
    let counters = EdgeCounters::from_rows(&rows, k);
    let g = counters.make_graph();
    assert!(
        g.validate().is_err(),
        "the raced rows must decode inconsistently, got {:?}",
        g.validate()
    );

    // Without the degraded mode, the laggard (r2 here, or whoever sits
    // below the cycle) could be unable to advance against some peer. With
    // it, every process can advance against everyone at-or-above it, so the
    // configuration drains back to consistency: repeatedly advancing the
    // worst-off process must terminate in a consistent graph.
    let mut c = counters.clone();
    for _ in 0..50 {
        let g = c.make_graph();
        if g.validate().is_ok() {
            break;
        }
        // Advance the process with the fewest leaderships.
        let p = (0..3)
            .min_by_key(|&i| (0..3).filter(|&j| g.delta(i, j) >= 0).count())
            .unwrap();
        c.inc_graph(p);
    }
    let g = c.make_graph();
    g.validate()
        .expect("degraded-mode catch-up must drain the cycle");
}

/// Staggered joins at every offset complete and agree.
#[test]
fn staggered_joins_always_terminate() {
    for lead in 0..6u64 {
        for seed in 0..10u64 {
            let n = 3;
            let params = ConsensusParams::quick(n);
            // Simulate stagger through the multishot projection: run a
            // 2-slot log where replicas are forced apart by seeds.
            let procs: Vec<LogCore<StaticProposals>> = (0..n)
                .map(|p| {
                    LogCore::new(
                        params.clone(),
                        p,
                        2,
                        4,
                        StaticProposals(vec![p as u64, (p as u64 + lead) & 0xF]),
                        seed * 1009 + p as u64 * 97 + lead,
                    )
                })
                .collect();
            let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed * 31 + lead), 10_000_000);
            assert!(r.completed, "lead {lead} seed {seed}: livelock");
            assert_eq!(r.distinct_outputs().len(), 1, "lead {lead} seed {seed}");
        }
    }
}
