//! Register-level edge cases for the full consensus stack: exhausted step
//! budgets, extreme schedulers, tiny coin bounds, and K variations — all at
//! register granularity.

use bprc_coin::CoinParams;
use bprc_core::bounded::ConsensusParams;
use bprc_core::threaded::ThreadedConsensus;
use bprc_registers::DirectArrow;
use bprc_sim::sched::{RandomStrategy, SoloBursts};
use bprc_sim::{Halted, World};

#[test]
fn step_limit_halts_gracefully_with_partial_decisions() {
    // A budget too small for anyone (or only some) to decide must produce a
    // clean StepLimit halt, never a hang or a wrong decision.
    for budget in [1u64, 7, 33, 64, 150] {
        let n = 3;
        let params = ConsensusParams::quick(n);
        let mut world = World::builder(n).seed(1).step_limit(budget).build();
        let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], 1);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(1)));
        let mut decided_values: Vec<bool> = Vec::new();
        for (p, out) in rep.outputs.iter().enumerate() {
            match out {
                Some(v) => decided_values.push(*v),
                None => assert_eq!(
                    rep.halted[p],
                    Some(Halted::StepLimit),
                    "budget {budget}: undecided process must report StepLimit"
                ),
            }
        }
        assert!(
            decided_values.windows(2).all(|w| w[0] == w[1]),
            "budget {budget}: partial decisions disagree"
        );
    }
}

#[test]
fn solo_bursts_extreme_asynchrony_register_level() {
    // One process races far ahead at register granularity — the strip must
    // shrink correctly through real scans.
    for burst in [5u64, 50, 500] {
        let n = 3;
        let params = ConsensusParams::quick(n);
        let mut world = World::builder(n).step_limit(10_000_000).build();
        let inst =
            ThreadedConsensus::<DirectArrow>::new(&world, &params, &[false, true, false], burst);
        let rep = world.run(inst.bodies, Box::new(SoloBursts::new(burst)));
        let decisions: Vec<bool> = rep.outputs.iter().filter_map(|o| *o).collect();
        assert_eq!(decisions.len(), n, "burst {burst}: everyone decides");
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "burst {burst}: agreement violated"
        );
    }
}

#[test]
fn tiny_coin_bounds_are_safe_at_register_level() {
    // m = 1: constant overflows; b = 1: maximal disagreement probability.
    // Safety must be unconditional.
    for seed in 0..6 {
        let n = 2;
        let params = ConsensusParams::new(n, CoinParams::new(n, 1, 1));
        let mut world = World::builder(n).seed(seed).step_limit(5_000_000).build();
        let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false], seed);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(seed)));
        let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
        assert_eq!(decisions[0], decisions[1], "seed {seed}");
    }
}

#[test]
fn larger_k_works_at_register_level() {
    for k in [3u32, 4] {
        let n = 3;
        let params = ConsensusParams::with_k(n, k, CoinParams::new(n, 2, 10_000));
        let mut world = World::builder(n).step_limit(10_000_000).build();
        let inst =
            ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], k as u64);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(k as u64)));
        let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "K={k}: agreement violated"
        );
    }
}

#[test]
fn n1_decides_immediately_at_register_level() {
    let params = ConsensusParams::quick(1);
    let mut world = World::builder(1).step_limit(1_000).build();
    let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true], 0);
    let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(0)));
    assert_eq!(rep.outputs[0], Some(true));
    // initial write (1 store, no arrows) + one scan (free for n = 1).
    assert!(
        rep.steps <= 2,
        "n=1 should be nearly free, took {}",
        rep.steps
    );
}
