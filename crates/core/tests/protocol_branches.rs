//! White-box tests of the §5 protocol's decision branches: hand-built views
//! driving `on_view` through each of the paper's lines 2–8.

use bprc_coin::{CoinParams, Flips};
use bprc_core::bounded::{BoundedCore, ConsensusParams};
use bprc_core::state::{Pref, ProcState};
use bprc_sim::turn::TurnStep;
use bprc_strip::EdgeCounters;

fn params(n: usize) -> ConsensusParams {
    ConsensusParams::new(n, CoinParams::new(n, 2, 100))
}

/// A fresh core plus the view in which everyone just performed the initial
/// inc (all level at round 1, prefs as given).
fn initial_view(p: &ConsensusParams, prefs: &[Pref]) -> Vec<ProcState> {
    let n = p.n();
    prefs
        .iter()
        .enumerate()
        .map(|(i, &pref)| {
            let mut core = BoundedCore::with_flips(p.clone(), i, true, Flips::queue());
            let mut s = core.state().clone();
            s.pref = pref;
            let _ = &mut core;
            s
        })
        .collect::<Vec<_>>()
        .into_iter()
        .take(n)
        .collect()
}

#[test]
fn line2_decides_with_no_disagreers() {
    // Unanimous prefs at the same round: everyone is a leader with zero
    // disagreers — first scan decides.
    let p = params(3);
    let mut core = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    let mut view = initial_view(&p, &[Pref::Val(true); 3]);
    view[0] = core.state().clone();
    match core.on_view(&view) {
        TurnStep::Decide(v) => assert!(v),
        other => panic!("expected decide, got {other:?}"),
    }
}

#[test]
fn line2_blocked_by_close_disagreer() {
    // A disagreeing process at the same round blocks the decision; leaders
    // then disagree, so the core demotes to ⊥ (line 5).
    let p = params(2);
    let mut core = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    let mut view = initial_view(&p, &[Pref::Val(true), Pref::Val(false)]);
    view[0] = core.state().clone();
    match core.on_view(&view) {
        TurnStep::Write(s) => assert_eq!(s.pref, Pref::Bottom, "demotes on leader split"),
        other => panic!("expected demote write, got {other:?}"),
    }
}

#[test]
fn line2_decides_when_disagreer_trails_by_k() {
    // Advance the core K rounds ahead of a disagreeing phantom: decide.
    let p = params(2);
    let k = p.k();
    let mut core = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    // Build the trailing register: round-0 phantom with the opposite pref.
    let mut behind = ProcState::phantom(2, k);
    behind.pref = Pref::Val(false);
    // March the core forward: leaders always "agree" because the phantom is
    // not a leader once we lead by one round (its ⊥... it has Val(false) —
    // but it is not a leader, so only our pref counts as leader pref).
    let mut last = TurnStep::Write(core.state().clone());
    for _ in 0..3 {
        let view = vec![core.state().clone(), behind.clone()];
        last = core.on_view(&view);
        if matches!(last, TurnStep::Decide(_)) {
            break;
        }
    }
    match last {
        TurnStep::Decide(v) => assert!(v, "decides own value once the gap is K"),
        other => panic!("expected decide after racing ahead, got {other:?}"),
    }
    // And the edge counters stayed within their cyclic bound.
    let rows = vec![core.state().edges.clone(), behind.edges.clone()];
    let counters = EdgeCounters::from_rows(&rows, k);
    for i in 0..2 {
        for j in 0..2 {
            assert!(counters.counter(i, j) < counters.modulus());
            counters.decode_checked(i, j).unwrap();
        }
    }
}

#[test]
fn lines3_4_adopt_leader_value_and_advance() {
    // The core trails a leader that prefers false: it adopts false and
    // advances a round (its edge row changes).
    let p = params(2);
    let k = p.k();
    let mut leader_core = BoundedCore::with_flips(p.clone(), 1, false, Flips::queue());
    // Advance the leader one extra round against a phantom view.
    let phantom = ProcState::phantom(2, k);
    let view = vec![phantom.clone(), leader_core.state().clone()];
    let _ = leader_core.on_view(&view);

    let mut trailing = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    let before_edges = trailing.state().edges.clone();
    let view = vec![trailing.state().clone(), leader_core.state().clone()];
    match trailing.on_view(&view) {
        TurnStep::Write(s) => {
            assert_eq!(s.pref, Pref::Val(false), "adopted the leader's value");
            assert_ne!(s.edges, before_edges, "advanced a round");
        }
        other => panic!("expected adopt+advance, got {other:?}"),
    }
}

#[test]
fn lines7_8_flip_then_adopt_coin() {
    // Two processes at the same round with ⊥ prefs: leaders don't agree, own
    // pref is ⊥, coin is undecided → walk steps; once the walk total crosses
    // the barrier, the coin value is adopted and the round advances.
    let p = params(2);
    let mut core = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    // Demote the core first (leaders split).
    let mut other = BoundedCore::with_flips(p.clone(), 1, false, Flips::queue())
        .state()
        .clone();
    let view = vec![core.state().clone(), other.clone()];
    let step = core.on_view(&view);
    let my = match step {
        TurnStep::Write(s) => {
            assert_eq!(s.pref, Pref::Bottom);
            s
        }
        other => panic!("expected demote, got {other:?}"),
    };
    // Keep the other's pref ⊥ too so leaders never agree.
    other.pref = Pref::Bottom;

    // Now every scan flips (load outcomes) until the coin decides heads.
    let mut state = my;
    let mut flips = 0;
    loop {
        let view = vec![state.clone(), other.clone()];
        core.flips_mut().push_outcome(true);
        match core.on_view(&view) {
            TurnStep::Write(s) => {
                if s.pref == Pref::Val(true) {
                    // Adopted heads from the coin; round advanced.
                    assert_ne!(s.edges, state.edges, "inc on coin adoption");
                    break;
                }
                assert_eq!(s.pref, Pref::Bottom, "still flipping");
                state = s;
                flips += 1;
                assert!(flips < 1000, "coin never decided");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Barrier is b·n = 4; our lone walker needs ~5 heads to cross it.
    assert!(flips >= 4, "crossed too early: {flips} flips");
}

#[test]
fn own_slot_must_match_state() {
    // The debug contract: the driver must publish my writes before my next
    // scan. Violating it is a bug in the driver, caught in debug builds.
    let p = params(2);
    let mut core = BoundedCore::with_flips(p.clone(), 0, true, Flips::queue());
    let mut view = vec![core.state().clone(), ProcState::phantom(2, p.k())];
    view[0].pref = Pref::Bottom; // stale own slot
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = core.on_view(&view);
    }));
    if cfg!(debug_assertions) {
        assert!(result.is_err(), "debug build must catch the stale own slot");
    }
}
