//! The bounded per-process register contents (the paper's §5 "value").
//!
//! Everything a process publishes fits in O(n·log K + K·log m) bits and
//! never grows — this is the whole point of the paper. Compare
//! [`crate::baselines::aspnes_herlihy`], whose register contents grow with
//! the round number.

/// A preference: a binary value or ⊥ (the paper writes ⊥ when the leaders
/// it observed disagreed, before consulting the shared coin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pref {
    /// ⊥ — no current preference; will adopt the shared coin's value.
    #[default]
    Bottom,
    /// A concrete binary preference.
    Val(bool),
}

impl Pref {
    /// Does this preference *agree* with `other`? The paper: "process i
    /// agrees with process j if both prefer the same value v" — ⊥ agrees
    /// with nothing, not even ⊥.
    pub fn agrees_with(&self, other: &Pref) -> bool {
        matches!((self, other), (Pref::Val(a), Pref::Val(b)) if a == b)
    }

    /// The concrete value, if any.
    pub fn value(&self) -> Option<bool> {
        match self {
            Pref::Bottom => None,
            Pref::Val(v) => Some(*v),
        }
    }
}

impl From<bool> for Pref {
    fn from(v: bool) -> Self {
        Pref::Val(v)
    }
}

impl std::fmt::Display for Pref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pref::Bottom => write!(f, "⊥"),
            Pref::Val(v) => write!(f, "{}", *v as u8),
        }
    }
}

/// The complete register contents of one process in the bounded protocol.
///
/// The paper's "round field" consists of the `coins` array (the process's
/// contributions to the K+1 most recent shared coins), the `current_coin`
/// pointer, and the `edges` row of the bounded rounds strip. Everything is
/// bounded: coins in `±(m+1)`, `current_coin ≤ K`, edges in `{0..3K−1}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcState {
    /// Current preference.
    pub pref: Pref,
    /// Circular array of K+1 coin counters.
    pub coins: Vec<i64>,
    /// Index of the slot holding this process's *current round's* coin.
    pub current_coin: usize,
    /// This process's row `e_i[1..n]` of the edge counters (mod 3K).
    pub edges: Vec<u32>,
}

impl ProcState {
    /// The state of a process that has not taken any step yet (round 0,
    /// no preference). Used for not-yet-joined participants in the
    /// multivalued reduction and as the registers' initial contents.
    pub fn phantom(n: usize, k: u32) -> Self {
        ProcState {
            pref: Pref::Bottom,
            coins: vec![0; k as usize + 1],
            current_coin: 0,
            edges: vec![0; n],
        }
    }

    /// The slot index of the *next* round's coin (the paper's
    /// `next(current_coin)`).
    pub fn next_coin_slot(&self) -> usize {
        (self.current_coin + 1) % self.coins.len()
    }

    /// Number of bits this state needs in a register, given the coin
    /// counter bound `m` and strip constant `k` (for the boundedness
    /// experiment E6).
    pub fn register_bits(&self, m: i64, k: u32) -> u64 {
        let pref_bits = 2u64;
        let counter_bits = 64 - ((2 * m + 3) as u64).leading_zeros() as u64;
        let coin_bits = self.coins.len() as u64 * counter_bits;
        let ptr_bits = 64 - (k as u64 + 1).leading_zeros() as u64;
        let edge_bits = self.edges.len() as u64 * (64 - (3 * k as u64).leading_zeros() as u64);
        pref_bits + coin_bits + ptr_bits + edge_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_semantics() {
        assert!(Pref::Val(true).agrees_with(&Pref::Val(true)));
        assert!(!Pref::Val(true).agrees_with(&Pref::Val(false)));
        assert!(
            !Pref::Bottom.agrees_with(&Pref::Bottom),
            "⊥ agrees with nothing"
        );
        assert!(!Pref::Bottom.agrees_with(&Pref::Val(false)));
    }

    #[test]
    fn pref_value_and_from() {
        assert_eq!(Pref::Val(true).value(), Some(true));
        assert_eq!(Pref::Bottom.value(), None);
        assert_eq!(Pref::from(false), Pref::Val(false));
    }

    #[test]
    fn pref_display() {
        assert_eq!(Pref::Bottom.to_string(), "⊥");
        assert_eq!(Pref::Val(true).to_string(), "1");
    }

    #[test]
    fn phantom_shape() {
        let s = ProcState::phantom(4, 2);
        assert_eq!(s.coins.len(), 3);
        assert_eq!(s.edges.len(), 4);
        assert_eq!(s.pref, Pref::Bottom);
        assert_eq!(s.next_coin_slot(), 1);
    }

    #[test]
    fn next_coin_slot_wraps() {
        let mut s = ProcState::phantom(2, 2);
        s.current_coin = 2;
        assert_eq!(s.next_coin_slot(), 0);
    }

    #[test]
    fn register_bits_is_constant_in_rounds() {
        // The same state advanced arbitrarily far has the same bit-width —
        // that is the theorem.
        let s = ProcState::phantom(8, 2);
        let bits = s.register_bits(10_000, 2);
        let mut advanced = s.clone();
        advanced.current_coin = 2;
        advanced.edges = vec![5; 8];
        advanced.coins = vec![9_999; 3];
        assert_eq!(advanced.register_bits(10_000, 2), bits);
        assert!(bits < 200, "a register is a few dozen bits, not unbounded");
    }
}
