//! Register bit-width accounting — the boundedness experiment (E6).
//!
//! The paper's headline is that every register holds a *bounded* number of
//! bits, independent of how long the execution runs. This module measures
//! exactly that, for the bounded protocol and for the \[AH88\] baseline whose
//! registers grow with the round number.

use bprc_sim::turn::{TurnAdversary, TurnDriver, TurnProcess, TurnReport};

/// Tracks the maximal register width observed during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryHighWater {
    /// Largest single-register width seen (bits).
    pub max_register_bits: u64,
    /// Sum of all register widths at the moment the maximum total occurred.
    pub max_total_bits: u64,
    /// Events applied.
    pub events: u64,
}

/// Runs a turn-based protocol while measuring register widths after every
/// event, using `bits` to size one register's contents.
pub fn run_metered<P: TurnProcess>(
    procs: Vec<P>,
    adversary: &mut dyn TurnAdversary<P::Msg>,
    max_events: u64,
    bits: impl Fn(&P::Msg) -> u64,
) -> (TurnReport<P::Out>, MemoryHighWater) {
    let mut hw = MemoryHighWater::default();
    let report = TurnDriver::new(procs).run_observed(adversary, max_events, |driver| {
        let mut total = 0u64;
        for msg in driver.shared() {
            let b = bits(msg);
            hw.max_register_bits = hw.max_register_bits.max(b);
            total += b;
        }
        hw.max_total_bits = hw.max_total_bits.max(total);
        hw.events = driver.events();
    });
    (report, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::aspnes_herlihy::AhCore;
    use crate::bounded::{BoundedCore, ConsensusParams};
    use bprc_sim::turn::TurnRandom;

    #[test]
    fn bounded_protocol_register_width_is_flat() {
        let params = ConsensusParams::quick(3);
        let (m, k) = (params.coin().m(), params.k());
        let static_bits = crate::state::ProcState::phantom(3, k).register_bits(m, k);
        let procs: Vec<BoundedCore> = (0..3)
            .map(|p| BoundedCore::new(params.clone(), p, p % 2 == 0, p as u64))
            .collect();
        let (report, hw) = run_metered(procs, &mut TurnRandom::new(3), 3_000_000, |s| {
            s.register_bits(m, k)
        });
        assert!(report.completed);
        assert_eq!(
            hw.max_register_bits, static_bits,
            "bounded register width must never exceed its static size"
        );
    }

    #[test]
    fn ah88_register_width_grows_with_rounds() {
        // Run the unbounded baseline long enough to advance several rounds;
        // its registers accumulate one coin entry per round.
        let procs: Vec<AhCore> = (0..3)
            .map(|p| AhCore::new(3, p, p % 2 == 0, 7 + p as u64, 3))
            .collect();
        let initial_bits = procs[0].register_bits();
        let (report, hw) = run_metered(procs, &mut TurnRandom::new(5), 3_000_000, |s| s.bits());
        assert!(report.completed);
        assert!(
            hw.max_register_bits > initial_bits,
            "AH88 registers must grow: {} vs initial {}",
            hw.max_register_bits,
            initial_bits
        );
    }
}
