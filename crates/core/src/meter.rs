//! Register bit-width accounting — the boundedness experiment (E6).
//!
//! The paper's headline is that every register holds a *bounded* number of
//! bits, independent of how long the execution runs. This module measures
//! exactly that, for the bounded protocol and for the \[AH88\] baseline whose
//! registers grow with the round number.

use bprc_sim::turn::{TurnAdversary, TurnDriver, TurnProcess, TurnReport};
use bprc_sim::{Gauge, Telemetry};

/// Tracks the maximal register width observed during a run.
///
/// Since the metrics plane landed this is a thin projection of the
/// [`Gauge::MaxRegisterBits`] / [`Gauge::MaxTotalBits`] high-water gauges
/// (global shard) that [`run_metered`] maintains; it is kept so existing
/// experiment code reads the numbers without touching [`Telemetry`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryHighWater {
    /// Largest single-register width seen (bits).
    pub max_register_bits: u64,
    /// Sum of all register widths at the moment the maximum total occurred.
    pub max_total_bits: u64,
    /// Events applied.
    pub events: u64,
}

impl MemoryHighWater {
    /// Reads the high-water gauges back out of a run's telemetry snapshot
    /// (`events` comes from the report, not the gauges).
    pub fn from_telemetry(t: &Telemetry, events: u64) -> Self {
        MemoryHighWater {
            max_register_bits: t.gauge_global(Gauge::MaxRegisterBits).unwrap_or(0),
            max_total_bits: t.gauge_global(Gauge::MaxTotalBits).unwrap_or(0),
            events,
        }
    }
}

/// Runs a turn-based protocol while measuring register widths after every
/// event, using `bits` to size one register's contents.
///
/// The observed maxima are pushed into the driver's metrics registry as
/// [`Gauge::MaxRegisterBits`] and [`Gauge::MaxTotalBits`] (global shard),
/// so they ride along in the report's [`Telemetry`] and its JSONL export;
/// the returned [`MemoryHighWater`] is the same numbers in struct form.
pub fn run_metered<P: TurnProcess>(
    procs: Vec<P>,
    adversary: &mut dyn TurnAdversary<P::Msg>,
    max_events: u64,
    bits: impl Fn(&P::Msg) -> u64,
) -> (TurnReport<P::Out>, MemoryHighWater) {
    let mut events = 0u64;
    let report = TurnDriver::new(procs).run_observed(adversary, max_events, |driver| {
        let mut total = 0u64;
        let mut max_reg = 0u64;
        for msg in driver.shared() {
            let b = bits(msg);
            max_reg = max_reg.max(b);
            total += b;
        }
        let g = driver.metrics().global();
        g.gauge_max(Gauge::MaxRegisterBits, max_reg);
        g.gauge_max(Gauge::MaxTotalBits, total);
        events = driver.events();
    });
    let hw = MemoryHighWater::from_telemetry(&report.telemetry, events);
    (report, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::aspnes_herlihy::AhCore;
    use crate::bounded::{BoundedCore, ConsensusParams};
    use bprc_sim::turn::TurnRandom;

    #[test]
    fn bounded_protocol_register_width_is_flat() {
        let params = ConsensusParams::quick(3);
        let (m, k) = (params.coin().m(), params.k());
        let static_bits = crate::state::ProcState::phantom(3, k).register_bits(m, k);
        let procs: Vec<BoundedCore> = (0..3)
            .map(|p| BoundedCore::new(params.clone(), p, p % 2 == 0, p as u64))
            .collect();
        let (report, hw) = run_metered(procs, &mut TurnRandom::new(3), 3_000_000, |s| {
            s.register_bits(m, k)
        });
        assert!(report.completed);
        assert_eq!(
            hw.max_register_bits, static_bits,
            "bounded register width must never exceed its static size"
        );
    }

    #[test]
    fn ah88_register_width_grows_with_rounds() {
        // Run the unbounded baseline long enough to advance several rounds;
        // its registers accumulate one coin entry per round.
        let procs: Vec<AhCore> = (0..3)
            .map(|p| AhCore::new(3, p, p % 2 == 0, 7 + p as u64, 3))
            .collect();
        let initial_bits = procs[0].register_bits();
        let (report, hw) = run_metered(procs, &mut TurnRandom::new(5), 3_000_000, |s| s.bits());
        assert!(report.completed);
        assert!(
            hw.max_register_bits > initial_bits,
            "AH88 registers must grow: {} vs initial {}",
            hw.max_register_bits,
            initial_bits
        );
    }
}
