//! The bounded polynomial randomized consensus protocol (§5).
//!
//! Each process runs the loop (paper's pseudocode, `K = 2`):
//!
//! ```text
//! write({pref: v_i, round: inc(round)})
//! repeat forever
//! 1:  scan;
//! 2:  if all who disagree trail by K, and I'm a leader:   decide(pref)
//! 3:  elseif the leaders agree on v:                      pref := v;  inc; write
//! 5:  elseif pref ≠ ⊥:                                    pref := ⊥;       write
//! 7:  elseif next_coin_value() = undecided:               flip_next_coin;  write
//! 8:  else:                                               pref := coin;  inc; write
//! ```
//!
//! where *leader*, *trails by K* and `inc` are judged on the distance graph
//! decoded from the scanned edge-counter rows (§4), and the shared coin of
//! the next round is assembled from each process's circular coin array
//! indexed through the graph (§3 + Observation 1: contributions of
//! processes K or more rounds away read as zero).
//!
//! [`BoundedCore`] is a pure state machine: `initial_msg` is the first
//! write, `on_scan` maps an atomic view to the next write or a decision.
//! It implements [`TurnProcess`] for the fast driver; [`crate::threaded`]
//! runs the *same* core over the real scannable memory.

use bprc_coin::flip::{FlipSource, Flips};
use bprc_coin::value::{coin_value_total, walk_step, CoinValue};
use bprc_coin::CoinParams;
use bprc_sim::turn::{TurnProbe, TurnProcess, TurnStep};
use bprc_sim::{Counter, ProcMetrics};
use bprc_strip::{DistanceGraph, EdgeCounters};

use crate::state::{Pref, ProcState};

/// Parameters of a consensus instance.
#[derive(Debug, Clone)]
pub struct ConsensusParams {
    n: usize,
    k: u32,
    coin: CoinParams,
}

impl ConsensusParams {
    /// Creates parameters with the paper's `K = 2` and an explicit coin.
    ///
    /// # Panics
    ///
    /// Panics if the coin's `n` differs from `n`, or `n == 0`.
    pub fn new(n: usize, coin: CoinParams) -> Self {
        Self::with_k(n, 2, coin)
    }

    /// Creates parameters with an explicit strip constant `K ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (the paper's correctness lemmas need a window of
    /// at least 2) or the coin's `n` differs from `n`.
    pub fn with_k(n: usize, k: u32, coin: CoinParams) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(k >= 2, "the protocol needs K >= 2");
        assert_eq!(coin.n(), n, "coin must be sized for n processes");
        ConsensusParams { n, k, coin }
    }

    /// Laptop-scale defaults for tests and examples: `K = 2`, `b = 3`,
    /// a generous counter bound.
    pub fn quick(n: usize) -> Self {
        Self::new(n, CoinParams::new(n, 3, 1_000_000))
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The strip window constant K.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The shared-coin parameters.
    pub fn coin(&self) -> &CoinParams {
        &self.coin
    }
}

/// Statistics a core accumulates about its own execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Scans performed.
    pub scans: u64,
    /// Rounds advanced (`inc` executions, counting the initial one).
    pub rounds: u64,
    /// Walk steps contributed to shared coins.
    pub coin_flips: u64,
    /// Times the preference was demoted to ⊥.
    pub demotions: u64,
    /// Times a coin value (rather than leader agreement) set the preference.
    pub coin_adoptions: u64,
    /// Edge-counter increments performed across all `inc` executions.
    pub strip_incs: u64,
    /// Edge-counter increments that wrapped modulo `3K` (the bounded-space
    /// event the unbounded protocol never has).
    pub strip_wraps: u64,
    /// Walk steps clamped at the ±Kn barrier (paper's saturation rule).
    pub walk_extremes: u64,
}

impl CoreStats {
    /// Adds another stats block into this one (composed cores — the
    /// multivalued levels, the multi-shot slots — retire inner cores and
    /// fold their stats forward so nothing is lost on replacement).
    pub fn absorb(&mut self, other: &CoreStats) {
        self.scans += other.scans;
        self.rounds += other.rounds;
        self.coin_flips += other.coin_flips;
        self.demotions += other.demotions;
        self.coin_adoptions += other.coin_adoptions;
        self.strip_incs += other.strip_incs;
        self.strip_wraps += other.strip_wraps;
        self.walk_extremes += other.walk_extremes;
    }

    /// Publishes the protocol-level counters to the metrics plane. Scans,
    /// updates and decisions are *not* published — the driver counts those
    /// at event granularity and double counting would break the
    /// cross-backend consistency invariant.
    pub fn publish(&self, m: &ProcMetrics<'_>) {
        m.incr(Counter::RoundAdvances, self.rounds);
        m.incr(Counter::CoinFlips, self.coin_flips);
        m.incr(Counter::Demotions, self.demotions);
        m.incr(Counter::CoinAdoptions, self.coin_adoptions);
        m.incr(Counter::StripIncs, self.strip_incs);
        m.incr(Counter::StripWraps, self.strip_wraps);
        m.incr(Counter::WalkExtremes, self.walk_extremes);
    }
}

/// One process of the bounded consensus protocol, as a pure
/// scan/write state machine.
///
/// `Clone` deliberately: the model checker snapshots cores to branch over
/// schedules and flip outcomes.
#[derive(Debug, Clone)]
pub struct BoundedCore {
    params: ConsensusParams,
    me: usize,
    state: ProcState,
    flips: Flips,
    stats: CoreStats,
    /// True until a late joiner performs its first, scan-based `inc`.
    join_pending: bool,
}

impl BoundedCore {
    /// Creates the process with initial binary value `input`; `seed` drives
    /// its local coin flips.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= params.n()`.
    pub fn new(params: ConsensusParams, pid: usize, input: bool, seed: u64) -> Self {
        Self::with_flips(params, pid, input, Flips::fair(seed))
    }

    /// Creates the process with an explicit local flip source (scripted or
    /// queued sources support deterministic worst cases and the model
    /// checker).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= params.n()`.
    pub fn with_flips(params: ConsensusParams, pid: usize, input: bool, flips: Flips) -> Self {
        assert!(pid < params.n(), "pid out of range");
        let mut state = ProcState::phantom(params.n(), params.k());
        state.pref = Pref::Val(input);
        let mut core = BoundedCore {
            params,
            me: pid,
            state,
            flips,
            stats: CoreStats::default(),
            join_pending: false,
        };
        // The paper's first write carries `inc(round)`: the initial inc is
        // computed against the all-zero initial memory, which every process
        // knows without scanning. NOTE: this is sound only when all
        // participants start the instance together (the paper's setting) —
        // rows built from the zero assumption stay pairwise- and
        // cross-pair-consistent only because everyone's first row is the
        // same `+1 against all`. A participant joining an instance whose
        // peers have already advanced must use [`BoundedCore::joiner`]
        // instead: the zero-assumed row combined with advanced peers decodes
        // to a configuration that is no legal token-game state (positive
        // cycles ⇒ no leaders ⇒ livelock).
        let zero = EdgeCounters::new(core.params.n(), core.params.k());
        let g = zero.make_graph();
        core.advance_round(&zero, &g);
        core
    }

    /// Creates a **late-joining** participant: its first write publishes a
    /// round-0 state carrying its preference, and its first `inc` is
    /// computed from its first scan (against the *real* strip state, which
    /// may show other participants many rounds ahead). Use this for
    /// composed instances where participants start at different times —
    /// the multivalued levels and multi-shot slots do.
    pub fn joiner(params: ConsensusParams, pid: usize, input: bool, flips: Flips) -> Self {
        assert!(pid < params.n(), "pid out of range");
        let mut state = ProcState::phantom(params.n(), params.k());
        state.pref = Pref::Val(input);
        BoundedCore {
            params,
            me: pid,
            state,
            flips,
            stats: CoreStats::default(),
            join_pending: true,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> usize {
        self.me
    }

    /// The parameters.
    pub fn params(&self) -> &ConsensusParams {
        &self.params
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The state this process last published.
    pub fn state(&self) -> &ProcState {
        &self.state
    }

    /// The local flip source.
    pub fn flips(&self) -> &Flips {
        &self.flips
    }

    /// Mutable access to the local flip source (the model checker loads
    /// predetermined outcomes through this).
    pub fn flips_mut(&mut self) -> &mut Flips {
        &mut self.flips
    }

    /// The paper's `inc`: advance the coin pointer, zero the slot of the
    /// round after next, and advance the edge-counter row against the
    /// scanned graph.
    fn advance_round(&mut self, counters: &EdgeCounters, g: &DistanceGraph) {
        self.state.current_coin = self.state.next_coin_slot();
        let next = self.state.next_coin_slot();
        self.state.coins[next] = 0;
        let mut with_my_row = counters.clone();
        with_my_row.set_row(self.me, &self.state.edges);
        let (row, incs, wraps) = with_my_row.next_row_counted(self.me, g);
        self.state.edges = row;
        self.stats.strip_incs += incs;
        self.stats.strip_wraps += wraps;
        self.stats.rounds += 1;
    }

    /// The paper's `next_coin_value`: assemble the next round's shared coin
    /// from the scanned states, reading process `j`'s contribution from the
    /// slot `(current_coin_j + 1 − w(j,me)) mod (K+1)` when `j` is
    /// at-or-above me by less than K, and 0 otherwise (Observation 1).
    fn next_coin_value(&self, g: &DistanceGraph, view: &[ProcState]) -> CoinValue {
        let kk = self.params.k() as i64;
        let slots = self.params.k() as usize + 1;
        let own = self.state.coins[self.state.next_coin_slot()];
        let mut total = own;
        for (j, s) in view.iter().enumerate() {
            if j == self.me {
                continue;
            }
            let dji = g.delta(j, self.me);
            if (0..kk).contains(&dji) {
                let slot = (s.current_coin + 1 + slots - dji as usize) % slots;
                total += s.coins[slot];
            }
        }
        coin_value_total(self.params.coin(), own, total)
    }

    /// The paper's `flip_next_coin`: one walk step on the next round's coin
    /// slot.
    fn flip_next_coin(&mut self) {
        let next = self.state.next_coin_slot();
        let heads = self.flips.flip();
        let before = self.state.coins[next];
        self.state.coins[next] = walk_step(self.params.coin(), self.state.coins[next], heads);
        self.stats.coin_flips += 1;
        if self.state.coins[next] == before {
            // The step was clamped at ±Kn (the walk's reflecting barrier).
            self.stats.walk_extremes += 1;
        }
    }

    /// The common value of all leaders, if they agree (a leader with ⊥
    /// means the leaders do not agree).
    fn leaders_agreement(g: &DistanceGraph, view: &[ProcState]) -> Option<bool> {
        let mut common: Option<bool> = None;
        for j in g.leaders() {
            match view[j].pref.value() {
                None => return None,
                Some(v) => match common {
                    None => common = Some(v),
                    Some(c) if c != v => return None,
                    Some(_) => {}
                },
            }
        }
        common
    }

    /// One protocol turn over an atomic view (the paper's lines 1–8).
    pub fn on_view(&mut self, view: &[ProcState]) -> TurnStep<ProcState, bool> {
        debug_assert_eq!(view.len(), self.params.n());
        debug_assert_eq!(
            &view[self.me], &self.state,
            "the driver must publish my writes before my next scan"
        );
        self.stats.scans += 1;
        let rows: Vec<Vec<u32>> = view.iter().map(|s| s.edges.clone()).collect();
        let counters = EdgeCounters::from_rows(&rows, self.params.k());
        let g = counters.make_graph();

        // A late joiner first performs its join inc against the real strip
        // state (see [`BoundedCore::joiner`]) before running the protocol
        // lines — the analogue of the paper's initial write-with-inc.
        if self.join_pending {
            self.join_pending = false;
            self.advance_round(&counters, &g);
            return TurnStep::Write(self.state.clone());
        }

        // Line 2: decide if I'm a leader, I have a value, and everyone who
        // disagrees with it trails by K.
        if let Pref::Val(v) = self.state.pref {
            if g.is_leader(self.me) {
                let all_trail = (0..self.params.n()).all(|j| {
                    j == self.me
                        || view[j].pref.agrees_with(&self.state.pref)
                        || g.delta(self.me, j) >= self.params.k() as i64
                });
                if all_trail {
                    return TurnStep::Decide(v);
                }
            }
        }

        // Lines 3–4: adopt the leaders' common value and advance.
        if let Some(v) = Self::leaders_agreement(&g, view) {
            self.state.pref = Pref::Val(v);
            self.advance_round(&counters, &g);
            return TurnStep::Write(self.state.clone());
        }

        // Lines 5–6: leaders disagree — drop my preference.
        if self.state.pref != Pref::Bottom {
            self.state.pref = Pref::Bottom;
            self.stats.demotions += 1;
            return TurnStep::Write(self.state.clone());
        }

        // Lines 7–8: consult the next round's shared coin.
        match self.next_coin_value(&g, view) {
            CoinValue::Undecided => {
                self.flip_next_coin();
                TurnStep::Write(self.state.clone())
            }
            v => {
                self.state.pref = Pref::Val(v.as_bool());
                self.stats.coin_adoptions += 1;
                self.advance_round(&counters, &g);
                TurnStep::Write(self.state.clone())
            }
        }
    }
}

impl TurnProcess for BoundedCore {
    type Msg = ProcState;
    type Out = bool;

    fn initial_msg(&mut self) -> ProcState {
        self.state.clone()
    }

    fn on_scan(&mut self, view: &[ProcState]) -> TurnStep<ProcState, bool> {
        self.on_view(view)
    }

    fn probe(&self) -> TurnProbe {
        TurnProbe {
            round: Some(self.stats.rounds),
            coin_flips: self.stats.coin_flips,
        }
    }

    fn publish_telemetry(&self, m: &ProcMetrics<'_>) {
        self.stats.publish(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom, TurnReport, TurnRoundRobin};

    fn run_instance(n: usize, inputs: &[bool], seed: u64, max_events: u64) -> TurnReport<bool> {
        let params = ConsensusParams::quick(n);
        let procs: Vec<BoundedCore> = (0..n)
            .map(|p| BoundedCore::new(params.clone(), p, inputs[p], seed * 1000 + p as u64))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed), max_events)
    }

    #[test]
    fn single_process_decides_own_value() {
        for v in [false, true] {
            let r = run_instance(1, &[v], 1, 1_000);
            assert!(r.completed);
            assert_eq!(r.outputs[0], Some(v));
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_value_fast() {
        for n in [2, 3, 5] {
            for v in [false, true] {
                for seed in 0..10 {
                    let r = run_instance(n, &vec![v; n], seed, 100_000);
                    assert!(r.completed, "n={n} seed={seed} did not complete");
                    assert!(
                        r.outputs.iter().all(|o| *o == Some(v)),
                        "n={n} seed={seed}: validity violated: {:?}",
                        r.outputs
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_inputs_reach_agreement() {
        for n in [2, 3, 4, 5] {
            for seed in 0..20 {
                let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
                let r = run_instance(n, &inputs, seed, 3_000_000);
                assert!(r.completed, "n={n} seed={seed}: did not terminate");
                let d = r.distinct_outputs();
                assert_eq!(
                    d.len(),
                    1,
                    "n={n} seed={seed}: agreement violated: {:?}",
                    r.outputs
                );
            }
        }
    }

    #[test]
    fn decision_is_someone_elses_input_when_mixed() {
        // With binary inputs and both present, any decision is trivially
        // some process's input — this documents (non-)triviality.
        let r = run_instance(4, &[true, false, true, false], 9, 3_000_000);
        assert!(r.completed);
        let v = r.outputs[0].unwrap();
        assert!([true, false].contains(&v));
    }

    #[test]
    fn round_robin_schedule_terminates() {
        let inputs = [true, false, true];
        let params = ConsensusParams::quick(3);
        let procs: Vec<BoundedCore> = (0..3)
            .map(|p| BoundedCore::new(params.clone(), p, inputs[p], p as u64))
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnRoundRobin::new(), 3_000_000);
        assert!(r.completed);
        assert_eq!(r.distinct_outputs().len(), 1);
    }

    #[test]
    fn survivors_decide_despite_crashes() {
        use bprc_sim::turn::{TurnDecision, TurnFn, TurnView};
        for seed in 0..10 {
            let n = 4;
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let params = ConsensusParams::quick(n);
            let procs: Vec<BoundedCore> = (0..n)
                .map(|p| BoundedCore::new(params.clone(), p, inputs[p], seed * 7 + p as u64))
                .collect();
            // Crash processes 0 and 1 early; schedule the rest randomly.
            let mut inner = TurnRandom::new(seed);
            let mut adversary = TurnFn(move |view: &TurnView<'_, ProcState>| {
                if view.events == 5 && !view.crashed[0] && view.active.contains(&0) {
                    return TurnDecision::Crash(0);
                }
                if view.events == 11 && !view.crashed[1] && view.active.contains(&1) {
                    return TurnDecision::Crash(1);
                }
                bprc_sim::turn::TurnAdversary::choose(&mut inner, view)
            });
            let r = TurnDriver::new(procs).run(&mut adversary, 3_000_000);
            assert!(r.completed, "seed {seed}: survivors must terminate");
            let survivors: Vec<bool> = (2..n).map(|p| r.outputs[p].unwrap()).collect();
            assert!(
                survivors.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: survivor agreement violated"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let params = ConsensusParams::quick(2);
        let mut a = BoundedCore::new(params.clone(), 0, true, 1);
        let b = BoundedCore::new(params, 1, false, 2);
        let view = vec![a.state().clone(), b.state().clone()];
        let _ = a.on_view(&view);
        assert_eq!(a.stats().scans, 1);
        assert!(a.stats().rounds >= 1, "initial inc counts");
    }

    #[test]
    #[should_panic(expected = "K >= 2")]
    fn k1_is_rejected() {
        let _ = ConsensusParams::with_k(2, 1, CoinParams::new(2, 1, 10));
    }

    #[test]
    fn turn_report_carries_protocol_telemetry() {
        use bprc_sim::{Counter, Gauge};
        let r = run_instance(3, &[true, false, true], 5, 3_000_000);
        assert!(r.completed);
        let t = &r.telemetry;
        // Driver-side counters: every process scanned and decided.
        assert!(t.total(Counter::Scans) >= 3);
        assert_eq!(t.total(Counter::Decisions), 3);
        // Core-side counters, published at finish: at least the initial
        // round advance per process, and scans never exceed driver scans.
        assert!(t.total(Counter::RoundAdvances) >= 3);
        assert!(t.total(Counter::StripIncs) > 0, "incs drive the strip");
        // The round gauge reflects each core's final probe.
        for pid in 0..3 {
            assert!(
                t.gauge(pid, Gauge::Round).unwrap_or(0) >= 1,
                "decided process must show a positive round"
            );
        }
    }
}
