//! Protocol-aware adversaries for the consensus experiments.
//!
//! The generic schedulers in [`bprc_sim::turn`] are oblivious; these two
//! inspect the protocol state (which the strong adversary of the model is
//! allowed to do) and try to delay agreement.

use bprc_sim::turn::{TurnAdversary, TurnDecision, TurnView};
use bprc_strip::EdgeCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::state::{Pref, ProcState};

/// The classic anti-consensus strategy: keep the two preference camps
/// balanced. At every point it looks at the published preferences and steps
/// a process from the camp that is currently "losing" among the leaders —
/// trying to re-create disagreement just as the protocol approaches
/// unanimity. Randomized consensus is exactly the art of defeating this
/// adversary: the shared coin makes the camps collapse despite it.
#[derive(Debug)]
pub struct SplitAdversary {
    k: u32,
    rng: SmallRng,
}

impl SplitAdversary {
    /// Creates the adversary for a protocol with strip constant `k`.
    pub fn new(k: u32, seed: u64) -> Self {
        SplitAdversary {
            k,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TurnAdversary<ProcState> for SplitAdversary {
    fn choose(&mut self, view: &TurnView<'_, ProcState>) -> TurnDecision {
        let rows: Vec<Vec<u32>> = view.shared.iter().map(|s| s.edges.clone()).collect();
        let counters = EdgeCounters::from_rows(&rows, self.k);
        let g = counters.make_graph();
        let leaders = g.leaders();
        // Count leader preferences.
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for &l in &leaders {
            match view.shared[l].pref {
                Pref::Val(false) => zeros += 1,
                Pref::Val(true) => ones += 1,
                Pref::Bottom => {}
            }
        }
        // If the leaders currently agree, try to step an active process of
        // the *other* persuasion (to contest before anyone decides).
        let minority: Option<bool> = if zeros == 0 && ones > 0 {
            Some(false)
        } else if ones == 0 && zeros > 0 {
            Some(true)
        } else {
            None
        };
        if let Some(want) = minority {
            if let Some(&p) = view
                .active
                .iter()
                .find(|&&p| view.shared[p].pref == Pref::Val(want))
            {
                return TurnDecision::Step(p);
            }
        }
        TurnDecision::Step(view.active[self.rng.gen_range(0..view.active.len())])
    }
}

/// Starves whoever is currently a unique leader: the leader only runs when
/// every other active process is a co-leader. Attacks the protocol's
/// progress argument (leaders racing ahead); termination must survive it
/// because trailing processes adopt the leader's value and catch up.
#[derive(Debug)]
pub struct LeaderStarver {
    k: u32,
    rr: usize,
}

impl LeaderStarver {
    /// Creates the adversary for a protocol with strip constant `k`.
    pub fn new(k: u32) -> Self {
        LeaderStarver { k, rr: 0 }
    }
}

impl TurnAdversary<ProcState> for LeaderStarver {
    fn choose(&mut self, view: &TurnView<'_, ProcState>) -> TurnDecision {
        let rows: Vec<Vec<u32>> = view.shared.iter().map(|s| s.edges.clone()).collect();
        let counters = EdgeCounters::from_rows(&rows, self.k);
        let g = counters.make_graph();
        let non_leaders: Vec<usize> = view
            .active
            .iter()
            .copied()
            .filter(|&p| !g.is_leader(p))
            .collect();
        let pool = if non_leaders.is_empty() {
            view.active
        } else {
            &non_leaders[..]
        };
        self.rr = (self.rr + 1) % pool.len();
        TurnDecision::Step(pool[self.rr])
    }
}

/// The "hold the deciders" adversary for the bounded protocol — the attack
/// behind Lemma 3.1's disagreement bound, at protocol granularity.
///
/// A pending write that *advances a round* (its edge-counter row differs
/// from the published one) with a concrete preference is **held**; the
/// remaining processes keep taking steps (flipping the shared coin the
/// held process already read). The held set is released once it contains
/// both preference camps — a contested round — or when nobody else can
/// move. Against the bounded protocol this stretches the execution (extra
/// contested rounds with probability O(1/b) each) but can neither break
/// safety nor grow the registers — the contrast with [`AH88`]'s strip is
/// experiment E6.
///
/// [`AH88`]: crate::baselines::aspnes_herlihy
#[derive(Debug)]
pub struct HoldDeciders {
    rng: SmallRng,
}

impl HoldDeciders {
    /// Creates the adversary.
    pub fn new(seed: u64) -> Self {
        HoldDeciders {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TurnAdversary<ProcState> for HoldDeciders {
    fn choose(&mut self, view: &TurnView<'_, ProcState>) -> TurnDecision {
        use bprc_sim::turn::Phase;
        let mut held: Vec<(usize, Option<bool>)> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for &p in view.active {
            match &view.phases[p] {
                Phase::Write(m) if m.edges != view.shared[p].edges => {
                    held.push((p, m.pref.value()));
                }
                _ => free.push(p),
            }
        }
        let heads = held.iter().any(|(_, v)| *v == Some(true));
        let tails = held.iter().any(|(_, v)| *v == Some(false));
        if (heads && tails) || free.is_empty() {
            return TurnDecision::Step(held[self.rng.gen_range(0..held.len())].0);
        }
        TurnDecision::Step(free[self.rng.gen_range(0..free.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::{BoundedCore, ConsensusParams};
    use bprc_sim::turn::TurnDriver;

    fn cores(n: usize, seed: u64) -> Vec<BoundedCore> {
        let params = ConsensusParams::quick(n);
        (0..n)
            .map(|p| BoundedCore::new(params.clone(), p, p % 2 == 0, seed * 31 + p as u64))
            .collect()
    }

    #[test]
    fn split_adversary_cannot_prevent_agreement() {
        for seed in 0..8 {
            let r =
                TurnDriver::new(cores(4, seed)).run(&mut SplitAdversary::new(2, seed), 5_000_000);
            assert!(
                r.completed,
                "seed {seed}: split adversary blocked termination"
            );
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn hold_deciders_cannot_prevent_agreement_or_grow_registers() {
        use crate::meter::run_metered;
        for seed in 0..8 {
            let n = 4;
            let params = ConsensusParams::quick(n);
            let (m, k) = (params.coin().m(), params.k());
            let static_bits = crate::state::ProcState::phantom(n, k).register_bits(m, k);
            let procs = cores(n, seed);
            let (r, hw) = run_metered(procs, &mut HoldDeciders::new(seed), 10_000_000, |s| {
                s.register_bits(m, k)
            });
            assert!(
                r.completed,
                "seed {seed}: hold-deciders blocked termination"
            );
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
            assert_eq!(
                hw.max_register_bits, static_bits,
                "seed {seed}: registers grew under the Lemma 3.1 attack"
            );
        }
    }

    #[test]
    fn leader_starver_cannot_prevent_agreement() {
        for seed in 0..8 {
            let r = TurnDriver::new(cores(3, seed)).run(&mut LeaderStarver::new(2), 5_000_000);
            assert!(
                r.completed,
                "seed {seed}: leader starver blocked termination"
            );
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn faulted_split_adversary_still_cannot_prevent_agreement() {
        // Chaos composition: the protocol-aware SplitAdversary wrapped in a
        // seeded fault plan (crashes, panics, stalls). Survivors must still
        // agree, and whatever the plan killed must show up in the report.
        use bprc_sim::faults::{FaultPlan, FaultedTurnAdversary};
        use bprc_sim::Halted;
        for seed in 0..8 {
            let n = 4;
            let plan = FaultPlan::seeded(seed, n, 400);
            let kills = plan.kill_count();
            let mut adv = FaultedTurnAdversary::new(SplitAdversary::new(2, seed), plan);
            let r = TurnDriver::new(cores(n, seed)).run(&mut adv, 5_000_000);
            assert!(r.completed, "seed {seed}: chaos blocked termination");
            assert!(r.distinct_outputs().len() <= 1, "seed {seed}: disagreement");
            let survivors = r.outputs.iter().filter(|o| o.is_some()).count();
            assert!(
                survivors >= n - kills,
                "seed {seed}: too few survivors decided ({survivors} < {})",
                n - kills
            );
            for (p, h) in r.halted.iter().enumerate() {
                if r.outputs[p].is_none() {
                    assert!(
                        matches!(h, Some(Halted::Crashed) | Some(Halted::Panicked)),
                        "seed {seed}: undecided pid {p} has no fault cause ({h:?})"
                    );
                }
            }
        }
    }
}
