//! Run-level consensus assertions — the checker surface the systematic
//! explorer drives.
//!
//! [`ConsensusSpec`] turns a [`RunReport`] into a pass/fail verdict over the
//! three consensus properties:
//!
//! * **agreement** — no two decided processes decided differently;
//! * **validity** — every decision equals some process's input;
//! * **termination** (optional) — every process that was neither crashed
//!   nor panicked decided. Off by default because bounded explorations
//!   legitimately truncate runs at a step budget.
//!
//! Verdicts are `Option<String>` — `None` for a clean run, `Some(reason)`
//! naming the first violated property — which is exactly the checker shape
//! [`bprc_sim::explore::explore`] consumes. [`ConsensusSpec::check_with_snapshot`]
//! additionally replays the recorded history through the snapshot P1–P3
//! checker, so one closure covers the full property stack.

use bprc_sim::error::Halted;
use bprc_sim::history::OpKind;
use bprc_sim::metrics::Counter;
use bprc_sim::world::RunReport;
use bprc_snapshot::{check_history, SnapshotMeta};

/// Checks that a run's telemetry agrees with its recorded history: for
/// every process, the [`Counter::RegReads`] / [`Counter::RegWrites`]
/// counters must equal the read/write operations the history recorded for
/// that process. The two planes are produced by independent code paths
/// (atomic counters at the register cells vs. the scheduler's event log),
/// so divergence means one of them lied — a verification-gate property,
/// not a consensus one.
///
/// Returns `None` on parity, `Some(reason)` naming the first divergent
/// process.
///
/// # Panics
///
/// Panics if the run recorded no history (free mode, or recording
/// disabled) — silently skipping the comparison would make a gate built on
/// it vacuous.
pub fn check_telemetry_parity<T>(report: &RunReport<T>) -> Option<String> {
    let history = report
        .history
        .as_ref()
        .expect("telemetry parity needs a recorded lockstep history");
    let n = report.outputs.len();
    let mut reads = vec![0u64; n];
    let mut writes = vec![0u64; n];
    for (_, pid, kind, _, _) in history.ops() {
        match kind {
            OpKind::Read => reads[pid] += 1,
            OpKind::Write => writes[pid] += 1,
            // A swap is one gate counted in both columns — mirrors the
            // world's access-gate accounting exactly.
            OpKind::Swap => {
                reads[pid] += 1;
                writes[pid] += 1;
            }
            // Fences are their own counter; reads/writes parity ignores them.
            OpKind::Fence => {}
        }
    }
    for pid in 0..n {
        let tr = report.telemetry.counter(pid, Counter::RegReads);
        let tw = report.telemetry.counter(pid, Counter::RegWrites);
        if tr != reads[pid] || tw != writes[pid] {
            return Some(format!(
                "telemetry/history parity violated for pid {pid}: telemetry says {tr} \
                 reads / {tw} writes, history records {} reads / {} writes",
                reads[pid], writes[pid]
            ));
        }
    }
    None
}

/// What a consensus run promised: the inputs it started from and whether
/// it was given enough budget that everyone must decide.
#[derive(Debug, Clone)]
pub struct ConsensusSpec {
    /// Per-process proposed values.
    pub inputs: Vec<bool>,
    /// Require every live (non-crashed, non-panicked) process to decide.
    /// Leave off for step-budgeted explorations where truncation is legal.
    pub require_termination: bool,
}

impl ConsensusSpec {
    /// A spec for a run proposing `inputs`, without a termination demand.
    pub fn new(inputs: &[bool]) -> Self {
        ConsensusSpec {
            inputs: inputs.to_vec(),
            require_termination: false,
        }
    }

    /// Demands termination of every live process (builder-style).
    pub fn require_termination(mut self) -> Self {
        self.require_termination = true;
        self
    }

    /// Checks agreement, validity, and (if demanded) termination.
    /// Returns `None` when the run satisfies the spec.
    pub fn check(&self, report: &RunReport<bool>) -> Option<String> {
        let decided: Vec<(usize, bool)> = report
            .outputs
            .iter()
            .enumerate()
            .filter_map(|(pid, o)| o.map(|v| (pid, v)))
            .collect();

        if let Some(((pa, va), (pb, vb))) = decided
            .windows(2)
            .map(|w| (w[0], w[1]))
            .find(|((_, a), (_, b))| a != b)
        {
            return Some(format!(
                "agreement violated: pid {pa} decided {va} but pid {pb} decided {vb}"
            ));
        }

        for &(pid, v) in &decided {
            if !self.inputs.contains(&v) {
                return Some(format!(
                    "validity violated: pid {pid} decided {v} but no process proposed it \
                     (inputs {:?})",
                    self.inputs
                ));
            }
        }

        if self.require_termination {
            for (pid, h) in report.halted.iter().enumerate() {
                match h {
                    None | Some(Halted::Crashed) | Some(Halted::Panicked) => {}
                    Some(other) => {
                        return Some(format!(
                            "termination violated: pid {pid} halted with {other:?} \
                             instead of deciding"
                        ));
                    }
                }
            }
        }

        None
    }

    /// [`ConsensusSpec::check`] plus the snapshot P1–P3 checker over the
    /// run's recorded history. The composite verdict a systematic
    /// exploration wires through every schedule.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded no history (free mode, or recording
    /// disabled) — the snapshot checker has nothing to verify then, and
    /// silently skipping it would make explorations vacuous.
    pub fn check_with_snapshot(
        &self,
        meta: &SnapshotMeta,
        report: &RunReport<bool>,
    ) -> Option<String> {
        let history = report
            .history
            .as_ref()
            .expect("snapshot checking needs a recorded lockstep history");
        let snap = check_history(history, meta);
        if let Some(v) = snap.violations.first() {
            return Some(format!("snapshot property violated: {v:?}"));
        }
        self.check(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::metrics::Telemetry;

    fn report(outputs: Vec<Option<bool>>, halted: Vec<Option<Halted>>) -> RunReport<bool> {
        let n = outputs.len();
        RunReport {
            outputs,
            halted,
            panics: vec![None; n],
            steps: 0,
            per_proc_steps: vec![0; n],
            history: None,
            telemetry: Telemetry::empty(n),
            flight: bprc_sim::FlightLog::empty(n),
        }
    }

    #[test]
    fn clean_runs_pass() {
        let spec = ConsensusSpec::new(&[true, false, true]);
        let r = report(vec![Some(true); 3], vec![None; 3]);
        assert_eq!(spec.check(&r), None);
    }

    #[test]
    fn disagreement_is_named() {
        let spec = ConsensusSpec::new(&[true, false]);
        let r = report(vec![Some(true), Some(false)], vec![None, None]);
        let msg = spec.check(&r).expect("must flag disagreement");
        assert!(msg.contains("agreement"), "{msg}");
    }

    #[test]
    fn invalid_decision_is_named() {
        let spec = ConsensusSpec::new(&[false, false]);
        let r = report(vec![Some(true), Some(true)], vec![None, None]);
        let msg = spec.check(&r).expect("must flag validity");
        assert!(msg.contains("validity"), "{msg}");
    }

    #[test]
    fn termination_only_when_demanded() {
        let r = report(vec![Some(true), None], vec![None, Some(Halted::StepLimit)]);
        assert_eq!(ConsensusSpec::new(&[true, true]).check(&r), None);
        let msg = ConsensusSpec::new(&[true, true])
            .require_termination()
            .check(&r)
            .expect("must flag the undecided process");
        assert!(msg.contains("termination"), "{msg}");
    }

    #[test]
    fn crashed_processes_are_excused_from_termination() {
        let spec = ConsensusSpec::new(&[true, true]).require_termination();
        let r = report(vec![Some(true), None], vec![None, Some(Halted::Crashed)]);
        assert_eq!(spec.check(&r), None);
    }

    #[test]
    fn telemetry_parity_holds_on_a_real_run_and_flags_divergence() {
        use bprc_sim::sched::RoundRobin;
        use bprc_sim::world::{ProcBody, World};

        let mut w = World::builder(2).build();
        let reg = w.reg("r", 0u32);
        let (r0, r1) = (reg.clone(), reg);
        let bodies: Vec<ProcBody<bool>> = vec![
            Box::new(move |ctx| {
                r0.write(ctx, 1)?;
                Ok(true)
            }),
            Box::new(move |ctx| Ok(r1.read(ctx)? == 1)),
        ];
        let mut rep = w.run(bodies, Box::new(RoundRobin::new()));
        assert_eq!(check_telemetry_parity(&rep), None);

        // Forge divergence: drop the history's ops but keep the telemetry.
        rep.history = Some(bprc_sim::history::History::new());
        let msg = check_telemetry_parity(&rep).expect("must flag the divergence");
        assert!(msg.contains("parity"), "{msg}");
    }
}
