//! The wait-free synchronization primitives the paper's introduction says
//! randomized consensus unlocks: *sticky bits* (Plotkin \[P89\]) and
//! one-shot *test-and-set*, both impossible deterministically from
//! read/write registers alone. (`fetch&cons` \[H88\] — an append-ordered
//! list — is [`crate::multishot::LogCore`].)
//!
//! Each primitive is a thin, named layer over the bounded consensus
//! protocol; their guarantees are consensus's guarantees, inherited through
//! the reduction.

use bprc_sim::turn::{TurnProcess, TurnStep};

use crate::bounded::{BoundedCore, ConsensusParams};
use crate::multivalued::{MvCore, MvState};
use crate::state::ProcState;

/// One participant of a **sticky bit**: a write-once bit every writer
/// agrees on. `write_sticky(v)` proposes `v`; the returned value is the
/// bit's permanent content — the same for every participant, and equal to
/// some participant's proposal.
///
/// Run it like any turn process; the decision is the sticky value.
#[derive(Debug, Clone)]
pub struct StickyBitCore {
    inner: BoundedCore,
}

impl StickyBitCore {
    /// Participant `pid` proposing `value` for the bit.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= params.n()`.
    pub fn new(params: ConsensusParams, pid: usize, value: bool, seed: u64) -> Self {
        StickyBitCore {
            inner: BoundedCore::new(params, pid, value, seed),
        }
    }
}

impl TurnProcess for StickyBitCore {
    type Msg = ProcState;
    type Out = bool;

    fn initial_msg(&mut self) -> ProcState {
        TurnProcess::initial_msg(&mut self.inner)
    }

    fn on_scan(&mut self, view: &[ProcState]) -> TurnStep<ProcState, bool> {
        self.inner.on_view(view)
    }
}

/// One participant of a one-shot **test-and-set**: exactly one participant
/// "wins" (its output is `true`), everyone else loses — decided by a
/// multivalued consensus on the winner's pid.
#[derive(Debug)]
pub struct TestAndSetCore {
    me: usize,
    inner: MvCore,
}

impl TestAndSetCore {
    /// Participant `pid` racing for the flag.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= params.n()` or `params.n() > 2^16` (pid width).
    pub fn new(params: ConsensusParams, pid: usize, seed: u64) -> Self {
        assert!(params.n() <= 1 << 16, "pid must fit the value width");
        TestAndSetCore {
            me: pid,
            inner: MvCore::new(params, pid, pid as u64, 16, seed),
        }
    }
}

impl TurnProcess for TestAndSetCore {
    type Msg = MvState;
    type Out = bool;

    fn initial_msg(&mut self) -> MvState {
        TurnProcess::initial_msg(&mut self.inner)
    }

    fn on_scan(&mut self, view: &[MvState]) -> TurnStep<MvState, bool> {
        match self.inner.on_scan(view) {
            TurnStep::Write(m) => TurnStep::Write(m),
            TurnStep::Decide(winner) => TurnStep::Decide(winner == self.me as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnBsp, TurnDriver, TurnRandom};

    #[test]
    fn sticky_bit_sticks() {
        for seed in 0..10 {
            let n = 4;
            let params = ConsensusParams::quick(n);
            let procs: Vec<StickyBitCore> = (0..n)
                .map(|p| StickyBitCore::new(params.clone(), p, p >= 2, seed * 5 + p as u64))
                .collect();
            let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 10_000_000);
            assert!(r.completed, "seed {seed}");
            let d = r.distinct_outputs();
            assert_eq!(d.len(), 1, "seed {seed}: the bit must be single-valued");
        }
    }

    #[test]
    fn sticky_bit_unanimous_is_forced() {
        let n = 3;
        let params = ConsensusParams::quick(n);
        let procs: Vec<StickyBitCore> = (0..n)
            .map(|p| StickyBitCore::new(params.clone(), p, true, p as u64))
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnRandom::new(2), 10_000_000);
        assert!(r.outputs.iter().all(|o| *o == Some(true)));
    }

    #[test]
    fn test_and_set_has_exactly_one_winner() {
        for seed in 0..10 {
            let n = 4;
            let params = ConsensusParams::quick(n);
            let procs: Vec<TestAndSetCore> = (0..n)
                .map(|p| TestAndSetCore::new(params.clone(), p, seed * 9 + p as u64))
                .collect();
            let r = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 50_000_000);
            assert!(r.completed, "seed {seed}");
            let winners = r.outputs.iter().filter(|o| matches!(o, Some(true))).count();
            assert_eq!(
                winners, 1,
                "seed {seed}: exactly one winner: {:?}",
                r.outputs
            );
        }
    }

    #[test]
    fn test_and_set_survives_bsp_adversary() {
        let n = 3;
        let params = ConsensusParams::quick(n);
        let procs: Vec<TestAndSetCore> = (0..n)
            .map(|p| TestAndSetCore::new(params.clone(), p, p as u64))
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnBsp::new(), 50_000_000);
        assert!(r.completed);
        let winners = r.outputs.iter().filter(|o| matches!(o, Some(true))).count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn test_and_set_crash_leaves_a_winner_among_survivors() {
        use bprc_sim::turn::{TurnAdversary, TurnDecision, TurnFn, TurnView};
        let n = 3;
        let params = ConsensusParams::quick(n);
        let procs: Vec<TestAndSetCore> = (0..n)
            .map(|p| TestAndSetCore::new(params.clone(), p, 40 + p as u64))
            .collect();
        let mut inner = TurnRandom::new(8);
        let mut adversary = TurnFn(move |view: &TurnView<'_, MvState>| {
            if view.events == 3 && view.active.contains(&0) && !view.crashed[0] {
                return TurnDecision::Crash(0);
            }
            inner.choose(view)
        });
        let r = TurnDriver::new(procs).run(&mut adversary, 50_000_000);
        assert!(r.completed);
        // The crashed process may or may not be the decided winner pid; the
        // survivors still each learn a consistent won/lost outcome, with at
        // most one survivor winning.
        let winners = r.outputs.iter().flatten().filter(|w| **w).count();
        assert!(winners <= 1, "{:?}", r.outputs);
    }
}
