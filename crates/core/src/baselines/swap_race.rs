//! A swap-based consensus entrant: commit-adopt rounds conciliated by a
//! `swap` race (after the swap-algorithms line of Ovens, arXiv 2305.06507).
//!
//! `swap` has consensus number 2, so unlike the register-only baselines this
//! protocol gets to lean on a primitive that *deterministically* serializes
//! two contenders. The structure is the classic round framework:
//!
//! 1. **Commit-adopt** (Gafni-style, two collect phases over per-process
//!    registers): if a process sees only its own value it *commits* and the
//!    object guarantees every other process leaves the round carrying that
//!    value; otherwise it *adopts* the unique "clean" value it saw (if any).
//! 2. **Swap-race conciliator**: every non-committing process swaps its
//!    value into the round's race register. The unique process that saw
//!    `None` come back is the round leader and publishes its value; a
//!    trailing process adopts the leader's published value, or — only when
//!    it holds evidence that *both* values are in play — falls back to a
//!    local coin flip.
//!
//! Safety (agreement + validity) is unconditional and comes entirely from
//! the commit-adopt layer plus a decision register that only ever holds
//! committed values; the swap race and the coin affect *convergence speed*
//! only. Termination is probabilistic: the protocol pre-allocates
//! `max_rounds` rounds (keeping every register bounded) and a process that
//! exhausts them parks on the decision register until the step budget
//! expires, which the harness reports honestly as an undecided run.
//!
//! For two processes the conciliator is deterministic — the swap race has
//! exactly one loser, and it adopts either the leader's published value or
//! the value the swap handed back — which is the consensus-number-2 power
//! of `swap` showing through.

use std::sync::Arc;

use bprc_coin::flip::{FairFlips, FlipSource};
use bprc_sim::reg::Reg;
use bprc_sim::rng::derive_seed;
use bprc_sim::world::{ProcBody, World};

use crate::arena::ArenaProbe;

/// Bits one conciliator or marker register holds: a presence bit plus the
/// payload (`Option<(bool, bool)>` is the widest at 1 + 2). Constant — the
/// whole point of pre-allocating the rounds.
pub const SWAP_RACE_REGISTER_BITS: u64 = 3;

/// The shared register file of one swap-race instance.
struct Shared {
    /// `r1[r][p]`: round `r` phase-1 proposal of process `p`.
    r1: Vec<Vec<Reg<Option<bool>>>>,
    /// `r2[r][p]`: round `r` phase-2 `(clean, value)` report of process `p`.
    r2: Vec<Vec<Reg<Option<(bool, bool)>>>>,
    /// `s[r]`: round `r` swap-race register (the conciliator).
    s: Vec<Reg<Option<bool>>>,
    /// `w[r]`: round `r` leader's published value.
    w: Vec<Reg<Option<bool>>>,
    /// The decision register — only ever written with committed values.
    d: Reg<Option<bool>>,
}

fn alloc(world: &World, n: usize, max_rounds: usize) -> Arc<Shared> {
    let per_round_per_proc = |tag: &str, r: usize| {
        (0..n)
            .map(move |p| format!("swap.{tag}[{r}][{p}]"))
            .collect::<Vec<_>>()
    };
    Arc::new(Shared {
        r1: (0..max_rounds)
            .map(|r| {
                per_round_per_proc("r1", r)
                    .into_iter()
                    .map(|name| world.reg(name, None))
                    .collect()
            })
            .collect(),
        r2: (0..max_rounds)
            .map(|r| {
                per_round_per_proc("r2", r)
                    .into_iter()
                    .map(|name| world.reg(name, None))
                    .collect()
            })
            .collect(),
        s: (0..max_rounds)
            .map(|r| world.reg(format!("swap.s[{r}]"), None))
            .collect(),
        w: (0..max_rounds)
            .map(|r| world.reg(format!("swap.w[{r}]"), None))
            .collect(),
        d: world.reg("swap.d", None),
    })
}

/// Builds one body per process for a swap-race consensus instance over
/// `world`'s registers. `max_rounds` bounds the pre-allocated rounds (and
/// thereby the register file); `probe` receives round progress and the
/// (constant) register high-water mark.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the world size or `max_rounds`
/// is zero.
pub fn swap_race_bodies(
    world: &World,
    inputs: &[bool],
    seed: u64,
    max_rounds: usize,
    probe: Arc<ArenaProbe>,
) -> Vec<ProcBody<bool>> {
    let n = inputs.len();
    assert_eq!(world.n(), n, "one process per world slot");
    assert!(max_rounds > 0, "at least one round");
    probe.record_bits(SWAP_RACE_REGISTER_BITS);
    let shared = alloc(world, n, max_rounds);
    inputs
        .iter()
        .enumerate()
        .map(|(pid, &input)| {
            let sh = Arc::clone(&shared);
            let probe = Arc::clone(&probe);
            let body: ProcBody<bool> = Box::new(move |ctx| {
                let mut flips = FairFlips::new(derive_seed(seed, pid as u64));
                let mut v = input;
                for r in 0..max_rounds {
                    probe.record_round(r as u64 + 1);
                    // Fast path: a committed decision is the only value any
                    // round can ever commit again, so adopting it is safe.
                    if let Some(dv) = sh.d.read(ctx)? {
                        return Ok(dv);
                    }
                    // Commit-adopt phase 1: propose, then collect.
                    sh.r1[r][pid].write(ctx, Some(v))?;
                    let mut clean = true;
                    for j in 0..n {
                        if let Some(other) = sh.r1[r][j].read(ctx)? {
                            if other != v {
                                clean = false;
                            }
                        }
                    }
                    // Commit-adopt phase 2: report, then collect. Commit
                    // only if every visible report is clean with my value;
                    // otherwise adopt the unique clean value, if one shows.
                    sh.r2[r][pid].write(ctx, Some((clean, v)))?;
                    let mut commit = clean;
                    let mut clean_val: Option<bool> = None;
                    for j in 0..n {
                        if let Some((c, other)) = sh.r2[r][j].read(ctx)? {
                            if c {
                                clean_val = Some(other);
                            }
                            if !(c && other == v) {
                                commit = false;
                            }
                        }
                    }
                    if commit {
                        sh.d.write(ctx, Some(v))?;
                        return Ok(v);
                    }
                    if let Some(cv) = clean_val {
                        v = cv;
                    }
                    // Swap-race conciliator: first swapper leads the round.
                    let prev = sh.s[r].swap(ctx, Some(v))?;
                    v = match prev {
                        None => {
                            sh.w[r].write(ctx, Some(v))?;
                            v
                        }
                        Some(pv) if pv == v => v,
                        Some(pv) => match sh.w[r].read(ctx)? {
                            Some(leader) => leader,
                            // Both values are provably in play (mine and
                            // `pv` differ), so a coin flip stays valid.
                            None => {
                                let _ = pv;
                                flips.flip()
                            }
                        },
                    };
                }
                // Out of pre-allocated rounds without committing: park on
                // the decision register. The step budget turns this into
                // an honest undecided run if nobody ever commits.
                loop {
                    if let Some(dv) = sh.d.read(ctx)? {
                        return Ok(dv);
                    }
                }
            });
            body
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::sched::RandomStrategy;
    use bprc_sim::{Counter, World};

    fn run(n: usize, inputs: &[bool], seed: u64) -> bprc_sim::world::RunReport<bool> {
        let mut world = World::builder(n).seed(seed).step_limit(2_000_000).build();
        let probe = Arc::new(ArenaProbe::default());
        let bodies = swap_race_bodies(&world, inputs, seed, 64, probe);
        world.run(bodies, Box::new(RandomStrategy::new(seed)))
    }

    #[test]
    fn validity_unanimous() {
        for v in [false, true] {
            let rep = run(3, &[v; 3], 9);
            assert!(rep.outputs.iter().all(|o| *o == Some(v)));
        }
    }

    #[test]
    fn agreement_mixed_inputs() {
        for seed in 0..12 {
            let rep = run(3, &[true, false, true], seed);
            let decided: Vec<bool> = rep.outputs.iter().filter_map(|o| *o).collect();
            assert!(!decided.is_empty(), "seed {seed}: someone should decide");
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: agreement violated: {decided:?}"
            );
        }
    }

    #[test]
    fn two_process_race_is_deterministic_per_schedule() {
        // Consensus number 2: with two processes the conciliator never
        // needs the coin, so replaying the same schedule (same seed) must
        // reproduce the same decision.
        for seed in 0..8 {
            let a = run(2, &[true, false], seed);
            let b = run(2, &[true, false], seed);
            assert_eq!(a.outputs, b.outputs, "seed {seed}");
        }
    }

    #[test]
    fn swaps_show_up_in_both_telemetry_columns() {
        let rep = run(2, &[true, false], 4);
        // At least one conciliator swap happened somewhere, and the access
        // gate counted it as a read AND a write.
        assert!(rep.telemetry.total(Counter::RegReads) > 0);
        assert!(rep.telemetry.total(Counter::RegWrites) > 0);
        let h = rep.history.as_ref().expect("lockstep records history");
        let swaps = h
            .ops()
            .filter(|(_, _, kind, _, _)| matches!(kind, bprc_sim::history::OpKind::Swap))
            .count();
        assert!(swaps >= 1, "the race register must be swapped");
    }
}
