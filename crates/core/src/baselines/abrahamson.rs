//! The Abrahamson \[A88\] baseline: independent local coins, exponential
//! expected time.
//!
//! Same leader/adopt/⊥/decide skeleton as its siblings, but a demoted
//! process flips its **own** coin and advances — no shared coin. Progress
//! then requires the leaders' independent flips to spontaneously coincide,
//! which takes expected `2^Θ(n)` rounds against an adversary (and visibly
//! exponential rounds even under a fair scheduler). This is the
//! running-time baseline for experiment E5; like \[A88\] it keeps its
//! rounds unbounded (we compare time here, not space — \[A88\]'s
//! bounded-space construction is the concern of the main protocol).
//!
//! The ⊥ demotion step is load-bearing, not decoration: an earlier version
//! of this core re-randomized in a single step (disagree → write the new
//! coin value at round `r+1` directly), and the protocol arena's
//! register-level schedules found the agreement violation that permits.
//! Two tied leaders flip opposite coins from the same disagreeing view;
//! one lands its write and decides while the other's conflicting write is
//! still pending, after which the survivor is the sole leader, out-climbs
//! the halted decider by `k`, and decides the opposite value. Demoting to
//! ⊥ *in place* first (same round, no value) makes the wavering visible:
//! any would-be decider sees a ⊥ neighbour within `k` rounds and must
//! wait, and a ⊥ process whose next scan sees a valued max-round leader
//! adopts that value instead of flipping. The exhaustive n = 2 model
//! check below enumerates every schedule, flip, and crash pattern of this
//! structure within a state budget.

use bprc_coin::flip::{FlipSource, Flips};
use bprc_sim::turn::{TurnProbe, TurnProcess, TurnStep};

use crate::state::Pref;

/// Register contents of one local-coin process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LcState {
    /// Current preference. ⊥ marks a process that saw the leaders disagree
    /// and will flip its local coin on its next scan (unless a valued
    /// leader set has formed by then).
    pub pref: Pref,
    /// Current round.
    pub round: u64,
}

/// One process of the local-coin (Abrahamson-style) protocol.
#[derive(Debug, Clone)]
pub struct LocalCoinCore {
    n: usize,
    me: usize,
    k: u64,
    state: LcState,
    flips: Flips,
    rounds_advanced: u64,
    coin_flips: u64,
}

impl LocalCoinCore {
    /// Creates the process with initial value `input`.
    pub fn new(n: usize, pid: usize, input: bool, seed: u64) -> Self {
        Self::with_flips(n, pid, input, Flips::fair(seed))
    }

    /// Creates the process with an explicit flip source (exhaustive model
    /// checking drives a [`Flips::queue`] source through every outcome).
    pub fn with_flips(n: usize, pid: usize, input: bool, flips: Flips) -> Self {
        assert!(pid < n, "pid out of range");
        LocalCoinCore {
            n,
            me: pid,
            k: 2,
            state: LcState {
                pref: Pref::Val(input),
                round: 1,
            },
            flips,
            rounds_advanced: 1,
            coin_flips: 0,
        }
    }

    /// Rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_advanced
    }

    /// The flip source (for the model checker).
    pub fn flips(&self) -> &Flips {
        &self.flips
    }

    /// Mutable flip source (for the model checker).
    pub fn flips_mut(&mut self) -> &mut Flips {
        &mut self.flips
    }
}

impl TurnProcess for LocalCoinCore {
    type Msg = LcState;
    type Out = bool;

    fn initial_msg(&mut self) -> LcState {
        self.state.clone()
    }

    fn probe(&self) -> TurnProbe {
        TurnProbe {
            round: Some(self.state.round),
            coin_flips: self.coin_flips,
        }
    }

    fn on_scan(&mut self, view: &[LcState]) -> TurnStep<LcState, bool> {
        let max_round = view.iter().map(|s| s.round).max().unwrap_or(0);
        debug_assert_eq!(&view[self.me], &self.state);

        if let Pref::Val(v) = self.state.pref {
            if self.state.round == max_round {
                let all_trail = view.iter().enumerate().all(|(j, s)| {
                    j == self.me
                        || s.pref.agrees_with(&self.state.pref)
                        || s.round + self.k <= self.state.round
                });
                if all_trail {
                    return TurnStep::Decide(v);
                }
            }
        }

        let leaders: Vec<usize> = (0..self.n)
            .filter(|&j| view[j].round == max_round)
            .collect();
        let mut agreement: Option<bool> = None;
        let mut agree = true;
        for &l in &leaders {
            match view[l].pref.value() {
                None => agree = false,
                Some(v) => match agreement {
                    None => agreement = Some(v),
                    Some(c) if c != v => agree = false,
                    _ => {}
                },
            }
        }
        if agree {
            if let Some(v) = agreement {
                self.state.pref = Pref::Val(v);
                self.state.round += 1;
                self.rounds_advanced += 1;
                return TurnStep::Write(self.state.clone());
            }
        }

        // Leaders disagree: demote in place first so the wavering is
        // visible to any would-be decider (see the module doc for the
        // agreement violation the one-step version permits).
        if self.state.pref != Pref::Bottom {
            self.state.pref = Pref::Bottom;
            return TurnStep::Write(self.state.clone());
        }

        // Already demoted and still no agreed leader value: flip the LOCAL
        // coin and advance. This is the whole difference from the
        // shared-coin protocols.
        self.coin_flips += 1;
        self.state.pref = Pref::Val(self.flips.flip());
        self.state.round += 1;
        self.rounds_advanced += 1;
        TurnStep::Write(self.state.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom};

    fn run(n: usize, inputs: &[bool], seed: u64, budget: u64) -> bprc_sim::turn::TurnReport<bool> {
        let procs: Vec<LocalCoinCore> = (0..n)
            .map(|p| LocalCoinCore::new(n, p, inputs[p], seed * 13 + p as u64))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed), budget)
    }

    #[test]
    fn validity_unanimous() {
        for v in [false, true] {
            let r = run(3, &[v; 3], 2, 100_000);
            assert!(r.completed);
            assert!(r.outputs.iter().all(|o| *o == Some(v)));
        }
    }

    #[test]
    fn agreement_small_n() {
        for seed in 0..10 {
            let r = run(3, &[true, false, true], seed, 2_000_000);
            assert!(r.completed, "seed {seed}: tiny n should still finish");
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
        }
    }

    /// Depth-bounded exhaustive model check at n = 2 with mixed inputs and
    /// crashes. Rounds are unbounded here, so the full state space is
    /// infinite; bounding the *depth* instead makes the search exhaust
    /// every schedule, flip pattern, and crash pattern of the first 72
    /// events. The agreement violation the one-step re-randomization
    /// permitted (see the module doc) sits ~12 events deep at n = 2 — two
    /// tied processes coin from the same disagreeing view, one decides on
    /// the other's stale agreeing register while the conflicting coin
    /// write is pending — so reverting the ⊥ demotion makes this test fail
    /// with a concrete counterexample trace.
    #[test]
    fn modelcheck_n2_mixed_with_crashes() {
        use crate::modelcheck::{check, McConfig};
        use bprc_coin::flip::Flips;

        let procs: Vec<LocalCoinCore> = (0..2)
            .map(|p| LocalCoinCore::with_flips(2, p, p == 0, Flips::queue()))
            .collect();
        let shared = vec![
            LcState {
                pref: Pref::Bottom,
                round: 0,
            };
            2
        ];
        let cfg = McConfig {
            max_states: 2_000_000,
            max_depth: 72,
            with_crashes: true,
        };
        let report = check(procs, shared, |v| [true, false].contains(v), cfg);
        assert!(
            report.violation.is_none(),
            "local-coin baseline must stay safe: {:?}",
            report.violation
        );
        assert!(
            report.states >= 4_000,
            "expected substantial coverage, saw {} states",
            report.states
        );
        assert!(
            report.decisions_seen.len() == 2,
            "both decision values reachable from mixed inputs"
        );
    }
}
