//! The Abrahamson \[A88\] baseline: independent local coins, exponential
//! expected time.
//!
//! Same leader/adopt/decide skeleton as its siblings, but when the leaders
//! disagree a process simply flips its **own** coin and advances — no shared
//! coin. Progress then requires the leaders' independent flips to
//! spontaneously coincide, which takes expected `2^Θ(n)` rounds against an
//! adversary (and visibly exponential rounds even under a fair scheduler).
//! This is the running-time baseline for experiment E5; like \[A88\] it keeps
//! its rounds unbounded (we compare time here, not space — \[A88\]'s
//! bounded-space construction is the concern of the main protocol).

use bprc_coin::flip::{FairFlips, FlipSource};
use bprc_sim::turn::{TurnProcess, TurnStep};

use crate::state::Pref;

/// Register contents of one local-coin process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcState {
    /// Current preference (never ⊥ in this protocol — a disagreeing process
    /// re-randomizes immediately).
    pub pref: Pref,
    /// Current round.
    pub round: u64,
}

/// One process of the local-coin (Abrahamson-style) protocol.
#[derive(Debug)]
pub struct LocalCoinCore {
    n: usize,
    me: usize,
    k: u64,
    state: LcState,
    flips: FairFlips,
    rounds_advanced: u64,
}

impl LocalCoinCore {
    /// Creates the process with initial value `input`.
    pub fn new(n: usize, pid: usize, input: bool, seed: u64) -> Self {
        assert!(pid < n, "pid out of range");
        LocalCoinCore {
            n,
            me: pid,
            k: 2,
            state: LcState {
                pref: Pref::Val(input),
                round: 1,
            },
            flips: FairFlips::new(seed),
            rounds_advanced: 1,
        }
    }

    /// Rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_advanced
    }
}

impl TurnProcess for LocalCoinCore {
    type Msg = LcState;
    type Out = bool;

    fn initial_msg(&mut self) -> LcState {
        self.state.clone()
    }

    fn on_scan(&mut self, view: &[LcState]) -> TurnStep<LcState, bool> {
        let max_round = view.iter().map(|s| s.round).max().unwrap_or(0);
        debug_assert_eq!(&view[self.me], &self.state);

        if let Pref::Val(v) = self.state.pref {
            if self.state.round == max_round {
                let all_trail = view.iter().enumerate().all(|(j, s)| {
                    j == self.me
                        || s.pref.agrees_with(&self.state.pref)
                        || s.round + self.k <= self.state.round
                });
                if all_trail {
                    return TurnStep::Decide(v);
                }
            }
        }

        let leaders: Vec<usize> = (0..self.n)
            .filter(|&j| view[j].round == max_round)
            .collect();
        let mut agreement: Option<bool> = None;
        let mut agree = true;
        for &l in &leaders {
            match view[l].pref.value() {
                None => agree = false,
                Some(v) => match agreement {
                    None => agreement = Some(v),
                    Some(c) if c != v => agree = false,
                    _ => {}
                },
            }
        }
        if agree {
            if let Some(v) = agreement {
                self.state.pref = Pref::Val(v);
                self.state.round += 1;
                self.rounds_advanced += 1;
                return TurnStep::Write(self.state.clone());
            }
        }

        // Leaders disagree: flip the LOCAL coin and advance. This is the
        // whole difference from the shared-coin protocols.
        self.state.pref = Pref::Val(self.flips.flip());
        self.state.round += 1;
        self.rounds_advanced += 1;
        TurnStep::Write(self.state.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom};

    fn run(n: usize, inputs: &[bool], seed: u64, budget: u64) -> bprc_sim::turn::TurnReport<bool> {
        let procs: Vec<LocalCoinCore> = (0..n)
            .map(|p| LocalCoinCore::new(n, p, inputs[p], seed * 13 + p as u64))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed), budget)
    }

    #[test]
    fn validity_unanimous() {
        for v in [false, true] {
            let r = run(3, &[v; 3], 2, 100_000);
            assert!(r.completed);
            assert!(r.outputs.iter().all(|o| *o == Some(v)));
        }
    }

    #[test]
    fn agreement_small_n() {
        for seed in 0..10 {
            let r = run(3, &[true, false, true], seed, 2_000_000);
            assert!(r.completed, "seed {seed}: tiny n should still finish");
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
        }
    }
}
