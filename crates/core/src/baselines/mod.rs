//! Baseline algorithms the paper positions itself against, plus the
//! swap-race arena entrant.
//!
//! The *time* and *space* columns are **analytic** — cited from the
//! referenced papers, not re-derived here. The *measured* column says
//! what this repository actually observes empirically: every row runs in
//! the protocol arena ([`crate::arena`]) under identical adversaries, and
//! `BENCH_arena.json` records its expected rounds, total operations, and
//! register high-water bits per `n` and snapshot backend.
//!
//! | entrant | time (analytic) | space (analytic) | provenance | measured here |
//! |---|---|---|---|---|
//! | [`aspnes_herlihy`] | polynomial expected | **unbounded** | \[AH88\] | arena rounds/ops/bits; register growth (E6) |
//! | [`abrahamson`] | **exponential** expected | bounded-per-round | \[A88\] (simplified) | arena rounds/ops/bits; running time (E5) |
//! | [`oracle`] | constant expected rounds | bounded | \[CIL87\]-style atomic-coin reference | arena rounds/ops/bits |
//! | [`swap_race`] | probabilistic; deterministic for n = 2 (swap has consensus number 2) | bounded (rounds pre-allocated) | after Ovens, arXiv 2305.06507 | arena rounds/ops/bits |
//!
//! The three register-only baselines share the protocol skeleton (leaders,
//! adoption, ⊥, coin) so that differences in the experiments isolate the
//! *coin* and the *rounds representation*, which is where the paper's
//! contribution lives. The Abrahamson baseline keeps the unbounded round
//! counter of its siblings (we compare running time against it, not
//! space); its defining feature — independent local coins instead of a
//! shared coin — is what makes it exponential. The swap-race entrant is
//! deliberately *not* register-only: it shows what the arena looks like
//! when the model is strengthened with a consensus-number-2 primitive.

pub mod abrahamson;
pub mod aspnes_herlihy;
pub mod oracle;
pub mod swap_race;

pub use abrahamson::LocalCoinCore;
pub use aspnes_herlihy::AhCore;
pub use oracle::OracleCore;
pub use swap_race::swap_race_bodies;
