//! Baseline algorithms the paper positions itself against.
//!
//! | baseline | time | space | provenance |
//! |---|---|---|---|
//! | [`aspnes_herlihy`] | polynomial expected | **unbounded** | \[AH88\] |
//! | [`abrahamson`] | **exponential** expected | bounded-per-round | \[A88\] (simplified) |
//! | [`oracle`] | constant rounds | bounded | \[CIL87\]-style atomic-coin reference |
//!
//! All three share the protocol skeleton (leaders, adoption, ⊥, coin) so
//! that differences in the experiments isolate the *coin* and the *rounds
//! representation*, which is where the paper's contribution lives. The
//! Abrahamson baseline keeps the unbounded round counter of its siblings
//! (we compare running time against it, not space); its defining feature —
//! independent local coins instead of a shared coin — is what makes it
//! exponential.

pub mod abrahamson;
pub mod aspnes_herlihy;
pub mod oracle;

pub use abrahamson::LocalCoinCore;
pub use aspnes_herlihy::AhCore;
pub use oracle::OracleCore;
