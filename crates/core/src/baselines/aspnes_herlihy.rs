//! The Aspnes–Herlihy \[AH88\] baseline: polynomial expected time, unbounded
//! memory.
//!
//! Structurally identical to the bounded protocol — leaders, value
//! adoption, ⊥, per-round random-walk shared coin — but represented the
//! unbounded way: an integer round number that only grows, and a coin
//! *strip* in which every round ever flipped keeps its counter forever.
//! This is the algorithm the paper "compresses"; the experiments compare
//! its register growth (E6) and its running time (E5) against the bounded
//! protocol.

use std::collections::BTreeMap;

use bprc_coin::flip::{FairFlips, FlipSource};
use bprc_coin::value::{coin_value_total, CoinValue};
use bprc_coin::CoinParams;
use bprc_sim::turn::{TurnProbe, TurnProcess, TurnStep};

use crate::state::Pref;

/// The (unbounded) register contents of one AH88 process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AhState {
    /// Current preference.
    pub pref: Pref,
    /// Current round — grows without bound.
    pub round: u64,
    /// This process's contribution to every round's shared coin, kept
    /// forever (`round ↦ counter`). The unbounded strip.
    pub coins: BTreeMap<u64, i64>,
}

impl AhState {
    /// Bits this register needs: the round counter plus one entry per coin
    /// ever touched (round index + counter). This is what grows.
    pub fn bits(&self) -> u64 {
        let round_bits = 64 - self.round.leading_zeros() as u64 + 1;
        let per_entry = round_bits + 64; // round index + unbounded counter
        2 + round_bits + self.coins.len() as u64 * per_entry
    }
}

/// One AH88 process as a scan/write state machine.
#[derive(Debug)]
pub struct AhCore {
    n: usize,
    me: usize,
    k: u64,
    coin: CoinParams,
    state: AhState,
    flips: FairFlips,
    rounds_advanced: u64,
    coin_flips: u64,
}

impl AhCore {
    /// Creates the process with initial value `input`; `b` is the coin
    /// barrier multiplier (counters are unbounded, so there is no `m`).
    pub fn new(n: usize, pid: usize, input: bool, seed: u64, b: u32) -> Self {
        assert!(pid < n, "pid out of range");
        // Counters are conceptually unbounded: use an effectively-infinite m.
        let coin = CoinParams::new(n, b, i64::MAX / 4);
        AhCore {
            n,
            me: pid,
            k: 2,
            coin,
            state: AhState {
                pref: Pref::Val(input),
                round: 1,
                coins: BTreeMap::new(),
            },
            flips: FairFlips::new(seed),
            rounds_advanced: 1,
            coin_flips: 0,
        }
    }

    /// Rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_advanced
    }

    /// Current register width in bits.
    pub fn register_bits(&self) -> u64 {
        self.state.bits()
    }

    fn next_coin_value(&self, view: &[AhState]) -> CoinValue {
        let target = self.state.round + 1;
        let own = *self.state.coins.get(&target).unwrap_or(&0);
        let mut total = own;
        for (j, s) in view.iter().enumerate() {
            if j != self.me {
                total += *s.coins.get(&target).unwrap_or(&0);
            }
        }
        coin_value_total(&self.coin, own, total)
    }
}

impl TurnProcess for AhCore {
    type Msg = AhState;
    type Out = bool;

    fn initial_msg(&mut self) -> AhState {
        self.state.clone()
    }

    fn probe(&self) -> TurnProbe {
        TurnProbe {
            round: Some(self.state.round),
            coin_flips: self.coin_flips,
        }
    }

    fn on_scan(&mut self, view: &[AhState]) -> TurnStep<AhState, bool> {
        let max_round = view.iter().map(|s| s.round).max().unwrap_or(0);
        let leaders: Vec<usize> = (0..self.n)
            .filter(|&j| view[j].round == max_round)
            .collect();
        let my = &view[self.me];
        debug_assert_eq!(my, &self.state);

        // Decide: I'm a leader and everyone disagreeing trails by >= K.
        if let Pref::Val(v) = self.state.pref {
            if self.state.round == max_round {
                let all_trail = view.iter().enumerate().all(|(j, s)| {
                    j == self.me
                        || s.pref.agrees_with(&self.state.pref)
                        || s.round + self.k <= self.state.round
                });
                if all_trail {
                    return TurnStep::Decide(v);
                }
            }
        }

        // Leaders agree -> adopt and advance.
        let mut agreement: Option<bool> = None;
        let mut agree = true;
        for &l in &leaders {
            match view[l].pref.value() {
                None => agree = false,
                Some(v) => match agreement {
                    None => agreement = Some(v),
                    Some(c) if c != v => agree = false,
                    _ => {}
                },
            }
        }
        if agree {
            if let Some(v) = agreement {
                self.state.pref = Pref::Val(v);
                self.state.round += 1;
                self.rounds_advanced += 1;
                return TurnStep::Write(self.state.clone());
            }
        }

        // Leaders disagree: demote.
        if self.state.pref != Pref::Bottom {
            self.state.pref = Pref::Bottom;
            return TurnStep::Write(self.state.clone());
        }

        // Shared coin of round r+1.
        match self.next_coin_value(view) {
            CoinValue::Undecided => {
                let target = self.state.round + 1;
                let delta = if self.flips.flip() { 1 } else { -1 };
                self.coin_flips += 1;
                *self.state.coins.entry(target).or_insert(0) += delta;
                TurnStep::Write(self.state.clone())
            }
            v => {
                self.state.pref = Pref::Val(v.as_bool());
                self.state.round += 1;
                self.rounds_advanced += 1;
                TurnStep::Write(self.state.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom};

    fn run(n: usize, inputs: &[bool], seed: u64) -> bprc_sim::turn::TurnReport<bool> {
        let procs: Vec<AhCore> = (0..n)
            .map(|p| AhCore::new(n, p, inputs[p], seed * 11 + p as u64, 3))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 3_000_000)
    }

    #[test]
    fn validity_unanimous() {
        for v in [false, true] {
            let r = run(3, &[v; 3], 1);
            assert!(r.completed);
            assert!(r.outputs.iter().all(|o| *o == Some(v)));
        }
    }

    #[test]
    fn agreement_mixed() {
        for seed in 0..10 {
            let r = run(4, &[true, false, true, false], seed);
            assert!(r.completed, "seed {seed}");
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn registers_grow_when_coins_are_flipped() {
        let mut s = AhState {
            pref: Pref::Bottom,
            round: 5,
            coins: BTreeMap::new(),
        };
        let b0 = s.bits();
        s.coins.insert(6, 1);
        s.coins.insert(7, -2);
        assert!(s.bits() > b0);
    }
}
