//! The perfect-shared-coin oracle baseline (\[CIL87\]-style).
//!
//! Chor, Israeli and Li's algorithm assumed a powerful *atomic coin flip*
//! operation; this baseline models that assumption directly: the "shared
//! coin" of round `r` is a deterministic pseudorandom function of `(seed,
//! r)` that every process evaluates identically, for free. It decides in a
//! constant expected number of rounds and gives the experiments a floor to
//! compare the realizable coins against.

use bprc_sim::rng::derive_seed;
use bprc_sim::turn::{TurnProbe, TurnProcess, TurnStep};

use crate::state::Pref;

/// Register contents of one oracle-coin process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleState {
    /// Current preference.
    pub pref: Pref,
    /// Current round.
    pub round: u64,
}

/// One process of the oracle-coin protocol.
#[derive(Debug)]
pub struct OracleCore {
    n: usize,
    me: usize,
    k: u64,
    shared_seed: u64,
    state: OracleState,
    rounds_advanced: u64,
}

impl OracleCore {
    /// Creates the process. `shared_seed` must be the same for all
    /// processes of the instance — it *is* the oracle.
    pub fn new(n: usize, pid: usize, input: bool, shared_seed: u64) -> Self {
        assert!(pid < n, "pid out of range");
        OracleCore {
            n,
            me: pid,
            k: 2,
            shared_seed,
            state: OracleState {
                pref: Pref::Val(input),
                round: 1,
            },
            rounds_advanced: 1,
        }
    }

    /// Rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_advanced
    }

    /// The atomic shared coin of round `r`: same bit for every process.
    fn oracle(&self, r: u64) -> bool {
        derive_seed(self.shared_seed, r) & 1 == 1
    }
}

impl TurnProcess for OracleCore {
    type Msg = OracleState;
    type Out = bool;

    fn initial_msg(&mut self) -> OracleState {
        self.state.clone()
    }

    fn probe(&self) -> TurnProbe {
        TurnProbe {
            // The oracle coin is an atomic primitive evaluated for free:
            // no local flips to report, just round progress.
            round: Some(self.state.round),
            coin_flips: 0,
        }
    }

    fn on_scan(&mut self, view: &[OracleState]) -> TurnStep<OracleState, bool> {
        let max_round = view.iter().map(|s| s.round).max().unwrap_or(0);
        debug_assert_eq!(&view[self.me], &self.state);

        if let Pref::Val(v) = self.state.pref {
            if self.state.round == max_round {
                let all_trail = view.iter().enumerate().all(|(j, s)| {
                    j == self.me
                        || s.pref.agrees_with(&self.state.pref)
                        || s.round + self.k <= self.state.round
                });
                if all_trail {
                    return TurnStep::Decide(v);
                }
            }
        }

        let leaders: Vec<usize> = (0..self.n)
            .filter(|&j| view[j].round == max_round)
            .collect();
        let mut agreement: Option<bool> = None;
        let mut agree = true;
        for &l in &leaders {
            match view[l].pref.value() {
                None => agree = false,
                Some(v) => match agreement {
                    None => agreement = Some(v),
                    Some(c) if c != v => agree = false,
                    _ => {}
                },
            }
        }
        if agree {
            if let Some(v) = agreement {
                self.state.pref = Pref::Val(v);
                self.state.round += 1;
                self.rounds_advanced += 1;
                return TurnStep::Write(self.state.clone());
            }
        }

        // Leaders disagree: demote in place first so the wavering is
        // visible. The shared coin makes divergent *coin* writes
        // impossible, but a pending adopt write can still contradict a
        // concurrent decision unless the decider is forced to see the
        // wavering — same discipline as the siblings (the abrahamson
        // module doc has the concrete schedule).
        if self.state.pref != Pref::Bottom {
            self.state.pref = Pref::Bottom;
            return TurnStep::Write(self.state.clone());
        }

        // Already demoted: consult the atomic shared coin for the next
        // round — identical for everyone, so disagreement dissolves
        // immediately.
        self.state.pref = Pref::Val(self.oracle(self.state.round + 1));
        self.state.round += 1;
        self.rounds_advanced += 1;
        TurnStep::Write(self.state.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom};

    fn run(n: usize, inputs: &[bool], seed: u64) -> bprc_sim::turn::TurnReport<bool> {
        let procs: Vec<OracleCore> = (0..n)
            .map(|p| OracleCore::new(n, p, inputs[p], seed))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed ^ 0xABCD), 500_000)
    }

    #[test]
    fn validity_unanimous() {
        for v in [false, true] {
            let r = run(4, &[v; 4], 3);
            assert!(r.completed);
            assert!(r.outputs.iter().all(|o| *o == Some(v)));
        }
    }

    #[test]
    fn agreement_and_fast_termination() {
        for seed in 0..20 {
            let r = run(5, &[true, false, true, false, true], seed);
            assert!(r.completed, "seed {seed}");
            assert_eq!(r.distinct_outputs().len(), 1, "seed {seed}");
            assert!(
                r.events < 100_000,
                "seed {seed}: oracle coin should finish fast, took {}",
                r.events
            );
        }
    }

    #[test]
    fn oracle_is_shared() {
        let a = OracleCore::new(2, 0, true, 9);
        let b = OracleCore::new(2, 1, false, 9);
        for r in 0..64 {
            assert_eq!(a.oracle(r), b.oracle(r));
        }
    }
}
