//! Exhaustive small-scope model checking of turn-level protocols.
//!
//! Monte-Carlo testing samples schedules; this module *enumerates* them.
//! For small configurations it explores **every** reachable state of the
//! scan/write state space — every adversary choice **and every local coin
//! outcome** — and verifies the safety properties on each path:
//!
//! * **agreement** — no two decisions differ;
//! * **validity** — every decision satisfies the caller's predicate
//!   (typically "is some process's input").
//!
//! Termination is *probabilistic* in randomized consensus (an adversary plus
//! an unlucky flip sequence can run forever), so the checker does not flag
//! non-terminating cycles; it deduplicates visited states, so exploration
//! itself always terminates on the protocol's finite (bounded!) state
//! space. That the bounded protocol *has* a finite state space — unlike
//! \[AH88\], which this checker could never exhaust — is the paper's
//! contribution, and what makes exhaustive verification possible at all.
//!
//! Flip branching works through [`bprc_coin::Flips::Queue`]: before stepping a scan
//! the checker loads one predetermined outcome; if the step consumed it,
//! the other outcome is explored from a snapshot too.

use std::collections::HashSet;
use std::hash::Hash;

use bprc_sim::turn::{Phase, TurnProcess, TurnStep};

/// A protocol the checker can drive: a clonable turn process whose local
/// randomness can be fed predetermined outcomes.
pub trait Checkable: TurnProcess + Clone {
    /// Loads one predetermined flip outcome.
    fn load_flip(&mut self, heads: bool);
    /// Number of loaded-but-unconsumed outcomes.
    fn pending_flips(&self) -> usize;
}

impl Checkable for crate::bounded::BoundedCore {
    fn load_flip(&mut self, heads: bool) {
        self.flips_mut().push_outcome(heads);
    }

    fn pending_flips(&self) -> usize {
        self.flips().queued()
    }
}

impl Checkable for crate::multivalued::MvCore {
    fn load_flip(&mut self, heads: bool) {
        self.inner_core_mut().flips_mut().push_outcome(heads);
    }

    fn pending_flips(&self) -> usize {
        self.inner_core().flips().queued()
    }
}

impl Checkable for crate::baselines::abrahamson::LocalCoinCore {
    fn load_flip(&mut self, heads: bool) {
        self.flips_mut().push_outcome(heads);
    }

    fn pending_flips(&self) -> usize {
        self.flips().queued()
    }
}

/// Search limits.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Maximum states to expand before giving up (safety valve).
    pub max_states: usize,
    /// Maximum search depth (path length); with state dedup a depth equal
    /// to `max_states` never truncates first.
    pub max_depth: usize,
    /// Also branch on crash faults: at every state the adversary may crash
    /// any active process, as long as at least one process survives.
    /// Roughly doubles the state space per crashable process.
    pub with_crashes: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_states: 2_000_000,
            max_depth: 2_000_000,
            with_crashes: false,
        }
    }
}

/// One step of a counterexample trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEvent {
    /// The stepped (or crashed) process.
    pub pid: usize,
    /// The flip outcome injected for this step, if the step flipped.
    pub flip: Option<bool>,
    /// True if this event crashed the process instead of stepping it.
    pub crash: bool,
}

/// A safety violation found by the checker.
#[derive(Debug, Clone)]
pub struct Violation<O = bool> {
    /// What went wrong.
    pub kind: ViolationKind<O>,
    /// The schedule (from the initial state) that exhibits it.
    pub trace: Vec<McEvent>,
}

/// The kinds of safety violations checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind<O = bool> {
    /// Two processes decided different values.
    Agreement {
        /// The two decisions.
        values: (O, O),
    },
    /// A decision failed the validity predicate.
    Validity {
        /// The offending decision.
        value: O,
    },
}

/// What the exhaustive search found.
#[derive(Debug, Clone)]
pub struct McReport<O = bool> {
    /// Distinct states expanded.
    pub states: usize,
    /// Paths that ended with every process decided.
    pub complete_paths: usize,
    /// True if the search hit `max_states` or `max_depth` before finishing.
    pub truncated: bool,
    /// The first safety violation found, if any.
    pub violation: Option<Violation<O>>,
    /// Distinct decision values seen across all explored paths.
    pub decisions_seen: Vec<O>,
}

impl<O> McReport<O> {
    /// True if no violation was found and the space was fully explored.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Canonical (behaviour-determining) image of a search node, used for
/// visited-state deduplication.
type Canon<M, O> = (Vec<M>, Vec<Phase<M>>, Vec<Option<O>>);

#[derive(Clone)]
struct Node<P: Checkable> {
    procs: Vec<P>,
    shared: Vec<P::Msg>,
    phases: Vec<Phase<P::Msg>>,
    decided: Vec<Option<P::Out>>,
    crashed: Vec<bool>,
}

impl<P: Checkable> Node<P>
where
    P::Msg: Clone + Eq + Hash,
    P::Out: Clone + Eq + Hash,
{
    fn canon(&self) -> Canon<P::Msg, P::Out> {
        // Crashed processes are encoded by setting their phase to Done in
        // `crash_process`, so (shared, phases, decided) stays canonical.
        (
            self.shared.clone(),
            self.phases.clone(),
            self.decided.clone(),
        )
    }

    fn active(&self) -> Vec<usize> {
        (0..self.procs.len())
            .filter(|&p| !matches!(self.phases[p], Phase::Done) && !self.crashed[p])
            .collect()
    }
}

/// Exhaustively explores the protocol from its initial state.
///
/// `procs` are the (already constructed) per-process state machines;
/// `initial_shared` the registers' initial contents (processes' first
/// writes are pending events, as in
/// [`TurnDriver::with_initial_shared`](bprc_sim::turn::TurnDriver::with_initial_shared));
/// `valid` is the validity predicate for decisions.
pub fn check<P>(
    mut procs: Vec<P>,
    initial_shared: Vec<P::Msg>,
    valid: impl Fn(&P::Out) -> bool,
    cfg: McConfig,
) -> McReport<P::Out>
where
    P: Checkable,
    P::Msg: Clone + Eq + Hash,
    P::Out: Clone + Eq + Hash + std::fmt::Debug,
{
    assert_eq!(
        procs.len(),
        initial_shared.len(),
        "one register per process"
    );
    let n = procs.len();
    let phases: Vec<Phase<P::Msg>> = procs
        .iter_mut()
        .map(|p| Phase::Write(p.initial_msg()))
        .collect();
    let root = Node {
        procs,
        shared: initial_shared,
        phases,
        decided: vec![None; n],
        crashed: vec![false; n],
    };

    let mut visited: HashSet<Canon<P::Msg, P::Out>> = HashSet::new();
    // Arena of expanded nodes: (parent arena id, event from the parent).
    let mut arena: Vec<(usize, Option<McEvent>)> = Vec::new();
    // DFS stack: (node, parent arena id, event from the parent, depth).
    let mut stack: Vec<(Node<P>, usize, Option<McEvent>, usize)> =
        vec![(root, usize::MAX, None, 0)];

    let mut report = McReport {
        states: 0,
        complete_paths: 0,
        truncated: false,
        violation: None,
        decisions_seen: Vec::new(),
    };

    while let Some((node, parent, event, depth)) = stack.pop() {
        let active = node.active();
        if active.is_empty() {
            report.complete_paths += 1;
            continue;
        }
        if report.states >= cfg.max_states || depth >= cfg.max_depth {
            report.truncated = true;
            continue;
        }
        if !visited.insert(node.canon()) {
            continue;
        }
        let id = arena.len();
        arena.push((parent, event));
        report.states += 1;

        for &pid in &active {
            match &node.phases[pid] {
                Phase::Write(m) => {
                    let mut child = node.clone();
                    child.shared[pid] = m.clone();
                    child.phases[pid] = Phase::Scan;
                    stack.push((
                        child,
                        id,
                        Some(McEvent {
                            pid,
                            flip: None,
                            crash: false,
                        }),
                        depth + 1,
                    ));
                }
                Phase::Scan => {
                    // Probe whether this scan consumes a flip.
                    let mut probe = node.clone();
                    probe.procs[pid].load_flip(false);
                    let _ = probe.procs[pid].on_scan(&probe.shared);
                    let consumed = probe.procs[pid].pending_flips() == 0;
                    if !consumed {
                        // No randomness involved: re-run on a clean clone so
                        // no stray queued outcome pollutes the state.
                        let mut child = node.clone();
                        let step = child.procs[pid].on_scan(&child.shared);
                        if let Some(v) = apply_step(&mut child, pid, step, &mut report) {
                            if let Err(viol) = validate::<P>(
                                &node,
                                v,
                                &valid,
                                &arena,
                                id,
                                McEvent {
                                    pid,
                                    flip: None,
                                    crash: false,
                                },
                            ) {
                                report.violation = Some(viol);
                                return report;
                            }
                        }
                        stack.push((
                            child,
                            id,
                            Some(McEvent {
                                pid,
                                flip: None,
                                crash: false,
                            }),
                            depth + 1,
                        ));
                    } else {
                        for heads in [false, true] {
                            let mut child = node.clone();
                            child.procs[pid].load_flip(heads);
                            let step = child.procs[pid].on_scan(&child.shared);
                            debug_assert_eq!(child.procs[pid].pending_flips(), 0);
                            let ev = McEvent {
                                pid,
                                flip: Some(heads),
                                crash: false,
                            };
                            if let Some(v) = apply_step(&mut child, pid, step, &mut report) {
                                if let Err(viol) = validate::<P>(&node, v, &valid, &arena, id, ev) {
                                    report.violation = Some(viol);
                                    return report;
                                }
                            }
                            stack.push((child, id, Some(ev), depth + 1));
                        }
                    }
                }
                Phase::Done => unreachable!("inactive process in active set"),
            }
        }
        if cfg.with_crashes && active.len() >= 2 {
            // The adversary may crash any active process (leaving at least
            // one survivor overall). A crashed process's pending write is
            // lost; encode the crash as phase = Done without a decision.
            for &pid in &active {
                let mut child = node.clone();
                child.crashed[pid] = true;
                child.phases[pid] = Phase::Done;
                stack.push((
                    child,
                    id,
                    Some(McEvent {
                        pid,
                        flip: None,
                        crash: true,
                    }),
                    depth + 1,
                ));
            }
        }
    }
    report
}

/// Applies a turn step to a child node; returns the decision if one was
/// made.
fn apply_step<P>(
    child: &mut Node<P>,
    pid: usize,
    step: TurnStep<P::Msg, P::Out>,
    report: &mut McReport<P::Out>,
) -> Option<P::Out>
where
    P: Checkable,
    P::Msg: Clone + Eq + Hash,
    P::Out: Clone + Eq + Hash,
{
    match step {
        TurnStep::Write(m) => {
            child.phases[pid] = Phase::Write(m);
            None
        }
        TurnStep::Decide(v) => {
            child.decided[pid] = Some(v.clone());
            child.phases[pid] = Phase::Done;
            if !report.decisions_seen.contains(&v) {
                report.decisions_seen.push(v.clone());
            }
            Some(v)
        }
    }
}

/// Checks a fresh decision against agreement + validity; on failure builds
/// the counterexample trace from the arena.
fn validate<P>(
    parent: &Node<P>,
    v: P::Out,
    valid: &impl Fn(&P::Out) -> bool,
    arena: &[(usize, Option<McEvent>)],
    parent_id: usize,
    event: McEvent,
) -> Result<(), Violation<P::Out>>
where
    P: Checkable,
    P::Msg: Clone + Eq + Hash,
    P::Out: Clone + Eq + Hash,
{
    let kind = if let Some(other) = parent.decided.iter().flatten().find(|&o| *o != v) {
        Some(ViolationKind::Agreement {
            values: (other.clone(), v),
        })
    } else if !valid(&v) {
        Some(ViolationKind::Validity { value: v })
    } else {
        None
    };
    match kind {
        None => Ok(()),
        Some(kind) => {
            let mut trace = vec![event];
            let mut at = parent_id;
            while at != usize::MAX {
                let (parent, ev) = arena[at];
                if let Some(ev) = ev {
                    trace.push(ev);
                }
                at = parent;
            }
            trace.reverse();
            Err(Violation { kind, trace })
        }
    }
}

/// Convenience wrapper: exhaustively checks the bounded consensus protocol
/// for the given inputs and parameters, with phantom initial registers and
/// validity = "decision is some process's input".
pub fn check_bounded(
    params: &crate::bounded::ConsensusParams,
    inputs: &[bool],
    cfg: McConfig,
) -> McReport<bool> {
    use crate::bounded::BoundedCore;
    use crate::state::ProcState;
    use bprc_coin::Flips;

    let n = params.n();
    assert_eq!(inputs.len(), n, "one input per process");
    let procs: Vec<BoundedCore> = (0..n)
        .map(|p| BoundedCore::with_flips(params.clone(), p, inputs[p], Flips::queue()))
        .collect();
    let shared = vec![ProcState::phantom(n, params.k()); n];
    let inputs = inputs.to_vec();
    check(procs, shared, |v| inputs.contains(v), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::{BoundedCore, ConsensusParams};
    use crate::state::ProcState;
    use bprc_coin::{CoinParams, Flips};
    use bprc_sim::turn::TurnStep;

    fn tiny_params(n: usize) -> ConsensusParams {
        // Smallest sensible coin: b = 1, m = 1 — counters in ±2, barrier n.
        ConsensusParams::new(n, CoinParams::new(n, 1, 1))
    }

    #[test]
    fn exhaustive_n2_unanimous() {
        for v in [false, true] {
            let report = check_bounded(&tiny_params(2), &[v, v], McConfig::default());
            assert!(report.verified(), "violation: {:?}", report.violation);
            assert_eq!(report.decisions_seen, vec![v], "only the input decided");
            assert!(report.complete_paths > 0);
            assert!(report.states > 10);
        }
    }

    #[test]
    fn exhaustive_n2_mixed() {
        let report = check_bounded(&tiny_params(2), &[false, true], McConfig::default());
        assert!(
            report.verified(),
            "violation: {:?}, states {}",
            report.violation,
            report.states
        );
        // Both outcomes must be reachable (the adversary can steer either
        // way with mixed inputs).
        let mut seen = report.decisions_seen.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![false, true]);
        assert!(report.states > 100);
    }

    /// A deliberately broken protocol: decides its own input at its first
    /// scan. The checker must find the agreement violation — this is the
    /// falsifiability test for the checker itself.
    #[derive(Clone)]
    struct EagerDecider {
        inner: BoundedCore,
        input: bool,
    }

    impl bprc_sim::turn::TurnProcess for EagerDecider {
        type Msg = ProcState;
        type Out = bool;
        fn initial_msg(&mut self) -> ProcState {
            bprc_sim::turn::TurnProcess::initial_msg(&mut self.inner)
        }
        fn on_scan(&mut self, _view: &[ProcState]) -> TurnStep<ProcState, bool> {
            TurnStep::Decide(self.input)
        }
    }

    impl Checkable for EagerDecider {
        fn load_flip(&mut self, heads: bool) {
            self.inner.flips_mut().push_outcome(heads);
        }
        fn pending_flips(&self) -> usize {
            0
        }
    }

    #[test]
    fn checker_finds_agreement_violations() {
        let params = tiny_params(2);
        let procs: Vec<EagerDecider> = (0..2)
            .map(|p| EagerDecider {
                inner: BoundedCore::with_flips(params.clone(), p, p == 0, Flips::queue()),
                input: p == 0,
            })
            .collect();
        let shared = vec![ProcState::phantom(2, params.k()); 2];
        let report = check(procs, shared, |_: &bool| true, McConfig::default());
        let v = report.violation.expect("must catch the disagreement");
        assert!(matches!(v.kind, ViolationKind::Agreement { .. }));
        assert!(!v.trace.is_empty(), "counterexample trace provided");
    }

    #[test]
    fn exhaustive_n2_mixed_with_crashes() {
        // Every schedule, every flip, AND every crash pattern (≥1 survivor):
        // still zero violations, still exhaustive.
        let report = check_bounded(
            &tiny_params(2),
            &[false, true],
            McConfig {
                with_crashes: true,
                ..McConfig::default()
            },
        );
        assert!(
            report.verified(),
            "violation: {:?}, states {}",
            report.violation,
            report.states
        );
        assert!(
            report.states > 100_000,
            "crash branching should enlarge the space: {}",
            report.states
        );
    }

    #[test]
    fn multivalued_bounded_verification() {
        // The multivalued reduction, explored up to a state budget: every
        // reachable decision within the explored prefix must agree and be
        // one of the proposals. (The full space is much larger than the
        // binary protocol's; this is bounded verification, not exhaustion.)
        use crate::multivalued::{MvCore, MvState};
        let params = tiny_params(2);
        let values = [2u64, 1];
        let width = 2;
        let procs: Vec<MvCore> = (0..2)
            .map(|p| MvCore::with_queue_flips(params.clone(), p, values[p], width))
            .collect();
        let shared = vec![
            MvState {
                candidate: 0,
                levels: Vec::new(),
            };
            2
        ];
        let report = check(
            procs,
            shared,
            |v: &u64| values.contains(v),
            McConfig {
                max_states: 120_000,
                max_depth: 500_000,
                with_crashes: false,
            },
        );
        assert!(
            report.violation.is_none(),
            "violation: {:?}",
            report.violation
        );
        assert!(report.states > 50_000, "explored {} states", report.states);
    }

    #[test]
    fn truncation_is_reported() {
        let report = check_bounded(
            &tiny_params(2),
            &[false, true],
            McConfig {
                max_states: 50,
                max_depth: 50,
                ..McConfig::default()
            },
        );
        assert!(report.truncated);
        assert!(!report.verified());
        assert!(report.violation.is_none(), "truncation is not a violation");
    }
}
