//! Bounded polynomial randomized consensus — §§5–6 of the paper.
//!
//! This crate assembles the substrates ([`bprc_snapshot`] scannable memory,
//! [`bprc_coin`] bounded weak shared coin, [`bprc_strip`] bounded rounds
//! strip) into the paper's consensus protocol, and provides everything
//! needed to evaluate it:
//!
//! * [`bounded`] — the protocol itself, written as a pure
//!   *scan → compute → write* state machine ([`bounded::BoundedCore`]) so
//!   the same code runs under the fast turn-based driver
//!   ([`bprc_sim::turn`]) for Monte-Carlo experiments **and** over the real
//!   register-level scannable memory ([`threaded`]);
//! * [`baselines`] — the comparison algorithms: Aspnes–Herlihy \[AH88\]
//!   (polynomial time, unbounded memory), Abrahamson \[A88\] (bounded memory,
//!   exponential time), a perfect-shared-coin oracle (\[CIL87\]-style
//!   reference), and a swap-race protocol built on a consensus-number-2
//!   primitive;
//! * [`arena`] — one object-safe [`arena::Consensus`] trait putting the
//!   bounded protocol and every baseline behind the same build surface, so
//!   chaos, exploration, and telemetry drive all of them unmodified (and
//!   the benchmark harness can race them);
//! * [`virtual_rounds`] — the §6.1 verifier: recomputes virtual global
//!   rounds over the serialized scan sequence and checks their monotonicity
//!   and the decision-safety invariants on every tested execution;
//! * [`multivalued`] — the extension the paper notes ("the protocol can be
//!   extended to handle arbitrary initial values"): bit-by-bit agreement on
//!   fixed-width values over a registry of proposals;
//! * [`meter`] — register bit-width accounting for the boundedness
//!   experiment (bounded protocol flat vs \[AH88\] growing);
//! * [`adversaries`] — protocol-aware schedulers (camp-balancing
//!   split adversary, leader-starving adversary).
//!
//! # Quick start
//!
//! ```
//! use bprc_core::bounded::{BoundedCore, ConsensusParams};
//! use bprc_sim::turn::{TurnDriver, TurnRandom};
//!
//! # fn main() {
//! let params = ConsensusParams::quick(3);
//! let procs: Vec<BoundedCore> = (0..3)
//!     .map(|pid| BoundedCore::new(params.clone(), pid, pid % 2 == 0, 42 + pid as u64))
//!     .collect();
//! let report = TurnDriver::new(procs).run(&mut TurnRandom::new(7), 1_000_000);
//! let decisions: Vec<bool> = report.outputs.iter().map(|o| o.unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversaries;
pub mod arena;
pub mod baselines;
pub mod bounded;
pub mod meter;
pub mod modelcheck;
pub mod multishot;
pub mod multivalued;
pub mod primitives;
pub mod state;
pub mod threaded;
pub mod verify;
pub mod virtual_rounds;

pub use arena::{
    arena_strategy, entrants, AbrahamsonEntrant, AhEntrant, ArenaBackend, ArenaInstance,
    ArenaProbe, BoundedEntrant, Consensus, MeteredProc, OracleEntrant, SwapEntrant,
};
pub use bounded::{BoundedCore, ConsensusParams};
pub use state::{Pref, ProcState};
pub use verify::{check_telemetry_parity, ConsensusSpec};
