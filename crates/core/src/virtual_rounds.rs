//! Virtual global rounds — the §6.1 verification device, executable.
//!
//! The bounded protocol never stores a round number, so the paper's
//! correctness proof *reconstructs* one: given the serialized sequence of
//! scans (serializable by property P3), it assigns every process a
//! **virtual global round** per scan, inductively:
//!
//! * initially every process is at round 0;
//! * at scan `S^a`, the *old leaders* are the processes that had the
//!   maximal round at `S^{a−1}`; the *new leaders* are the old leaders
//!   whose edge-counter row changed between the scans (they performed an
//!   `inc`);
//! * if some old leader moved, rounds are re-anchored at `max+1` on a new
//!   leader; otherwise at `max` on an old leader; every other process sits
//!   `dist(anchor, i)` below the anchor, where `dist` is measured on the
//!   scanned distance graph.
//!
//! The crucial lemma — virtual global rounds are **non-decreasing** even
//! though the underlying bounded representation wraps and shrinks — is what
//! lets the paper port the \[AH88\] proof. [`VirtualRoundTracker`] recomputes
//! the assignment over a recorded scan sequence and checks exactly that,
//! turning the lemma into a runtime invariant exercised by every test that
//! uses [`check_execution`].

use bprc_strip::EdgeCounters;

use crate::state::ProcState;

/// One recorded scan: who scanned, and the full view it returned.
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// The scanning process.
    pub pid: usize,
    /// The snapshot view (indexed by process).
    pub view: Vec<ProcState>,
}

/// A violation of the virtual-round invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundViolation {
    /// After some process decided in round `decided_at`, another process
    /// reached a round beyond `decided_at + 2` (violates Lemma 6.5).
    RanPastDecision {
        /// The process that ran too far.
        pid: usize,
        /// Its round.
        round: i64,
        /// The round the earliest decision happened in.
        decided_at: i64,
    },
    /// A process's virtual round decreased between consecutive scans.
    NonMonotonic {
        /// The process whose round regressed.
        pid: usize,
        /// Index of the offending scan.
        scan: usize,
        /// Round before and after.
        rounds: (i64, i64),
    },
    /// The anchored assignment put some process above the anchor.
    AboveAnchor {
        /// The offending process.
        pid: usize,
        /// Index of the offending scan.
        scan: usize,
    },
}

/// Recomputes virtual global rounds over a scan sequence.
#[derive(Debug)]
pub struct VirtualRoundTracker {
    n: usize,
    k: u32,
    rounds: Vec<i64>,
    prev_view: Option<Vec<ProcState>>,
    scans_seen: usize,
    violations: Vec<RoundViolation>,
    decided_at: Option<i64>,
}

impl VirtualRoundTracker {
    /// Creates a tracker for `n` processes with strip constant `k`.
    pub fn new(n: usize, k: u32) -> Self {
        VirtualRoundTracker {
            n,
            k,
            rounds: vec![0; n],
            prev_view: None,
            scans_seen: 0,
            violations: Vec::new(),
            decided_at: None,
        }
    }

    /// Records that some process decided (call with the decider's pid when
    /// its decision happens); enables the Lemma 6.5 check.
    pub fn record_decision(&mut self, pid: usize) {
        if self.decided_at.is_none() {
            self.decided_at = Some(self.rounds[pid]);
        }
    }

    /// Current virtual rounds (after the last observed scan).
    pub fn rounds(&self) -> &[i64] {
        &self.rounds
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[RoundViolation] {
        &self.violations
    }

    /// Scans processed.
    pub fn scans_seen(&self) -> usize {
        self.scans_seen
    }

    /// Feeds the next scan in serialization order.
    pub fn observe(&mut self, view: &[ProcState]) {
        assert_eq!(view.len(), self.n, "view size mismatch");
        let rows: Vec<Vec<u32>> = view.iter().map(|s| s.edges.clone()).collect();
        let counters = EdgeCounters::from_rows(&rows, self.k);
        let g = counters.make_graph();
        let closure = g.closure();

        let max = *self.rounds.iter().max().expect("nonempty");
        let old_leaders: Vec<usize> = (0..self.n).filter(|&j| self.rounds[j] == max).collect();
        let new_leaders: Vec<usize> = match &self.prev_view {
            None => Vec::new(),
            Some(prev) => old_leaders
                .iter()
                .copied()
                .filter(|&j| prev[j].edges != view[j].edges)
                .collect(),
        };

        let (anchor, anchor_round) = if let Some(&j) = new_leaders.first() {
            (j, max + 1)
        } else {
            (old_leaders[0], max)
        };

        let mut next = vec![0i64; self.n];
        #[allow(clippy::needless_range_loop)] // index used against several arrays
        for i in 0..self.n {
            let d = if i == anchor {
                0
            } else {
                match closure[anchor][i] {
                    Some(d) => d,
                    // No path from the anchor down to i means the graph sees
                    // i at-or-above the anchor; i sits at the anchor's round
                    // plus its lead (clamped into the window).
                    None => -closure[i][anchor].unwrap_or(0),
                }
            };
            next[i] = anchor_round - d;
            if new_leaders.contains(&i) {
                next[i] = anchor_round;
            }
            if next[i] > anchor_round && !new_leaders.is_empty() {
                // With a fresh anchor nothing should sit above it.
                self.violations.push(RoundViolation::AboveAnchor {
                    pid: i,
                    scan: self.scans_seen,
                });
            }
        }

        for (i, &proposed) in next.iter().enumerate() {
            // The fundamental lemma: virtual rounds never decrease.
            let lo = self.rounds[i];
            if proposed < lo {
                self.violations.push(RoundViolation::NonMonotonic {
                    pid: i,
                    scan: self.scans_seen,
                    rounds: (lo, proposed),
                });
            }
            self.rounds[i] = proposed.max(lo);
        }

        // Lemma 6.5: once someone decided in round r, nobody runs past r+2.
        if let Some(decided_at) = self.decided_at {
            for (pid, &r) in self.rounds.iter().enumerate() {
                if r > decided_at + 2 {
                    self.violations.push(RoundViolation::RanPastDecision {
                        pid,
                        round: r,
                        decided_at,
                    });
                }
            }
        }

        self.prev_view = Some(view.to_vec());
        self.scans_seen += 1;
    }
}

/// Runs the bounded protocol under the given adversary while feeding every
/// scan to a [`VirtualRoundTracker`]; returns the report, the tracker and
/// each process's decision.
///
/// Agreement and validity are asserted here so every caller gets them
/// checked for free.
pub fn check_execution(
    params: &crate::bounded::ConsensusParams,
    inputs: &[bool],
    seed: u64,
    adversary: &mut dyn bprc_sim::turn::TurnAdversary<ProcState>,
    max_events: u64,
) -> (bprc_sim::turn::TurnReport<bool>, VirtualRoundTracker) {
    use std::cell::RefCell;
    use std::rc::Rc;

    let n = params.n();
    let tracker = Rc::new(RefCell::new(VirtualRoundTracker::new(n, params.k())));

    /// Wraps a core so every scan view is also fed to the tracker.
    struct Traced {
        inner: crate::bounded::BoundedCore,
        tracker: Rc<RefCell<VirtualRoundTracker>>,
    }
    impl bprc_sim::turn::TurnProcess for Traced {
        type Msg = ProcState;
        type Out = bool;
        fn initial_msg(&mut self) -> ProcState {
            bprc_sim::turn::TurnProcess::initial_msg(&mut self.inner)
        }
        fn on_scan(&mut self, view: &[ProcState]) -> bprc_sim::turn::TurnStep<ProcState, bool> {
            self.tracker.borrow_mut().observe(view);
            let step = self.inner.on_view(view);
            if matches!(step, bprc_sim::turn::TurnStep::Decide(_)) {
                self.tracker.borrow_mut().record_decision(self.inner.pid());
            }
            step
        }
    }

    let procs: Vec<Traced> = (0..n)
        .map(|p| Traced {
            inner: crate::bounded::BoundedCore::new(
                params.clone(),
                p,
                inputs[p],
                bprc_sim::rng::derive_seed(seed, p as u64),
            ),
            tracker: Rc::clone(&tracker),
        })
        .collect();
    let report = bprc_sim::turn::TurnDriver::new(procs).run(adversary, max_events);

    // Agreement.
    let distinct = report.distinct_outputs();
    assert!(
        distinct.len() <= 1,
        "agreement violated: {:?}",
        report.outputs
    );
    // Validity.
    if let Some(&&v) = distinct.first() {
        assert!(
            inputs.contains(&v),
            "validity violated: decided {v} with inputs {inputs:?}"
        );
    }

    let tracker = Rc::try_unwrap(tracker)
        .expect("all cores dropped")
        .into_inner();
    (report, tracker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::ConsensusParams;
    use bprc_sim::turn::{TurnRandom, TurnRoundRobin};

    #[test]
    fn virtual_rounds_are_monotone_under_random_schedules() {
        for seed in 0..15 {
            let params = ConsensusParams::quick(3);
            let inputs = [true, false, true];
            let (report, tracker) = check_execution(
                &params,
                &inputs,
                seed,
                &mut TurnRandom::new(seed),
                3_000_000,
            );
            assert!(report.completed, "seed {seed}");
            assert!(
                tracker.violations().is_empty(),
                "seed {seed}: {:?}",
                tracker.violations()
            );
            assert!(tracker.scans_seen() > 0);
        }
    }

    #[test]
    fn virtual_rounds_are_monotone_under_round_robin() {
        let params = ConsensusParams::quick(4);
        let inputs = [false, true, false, true];
        let (report, tracker) =
            check_execution(&params, &inputs, 3, &mut TurnRoundRobin::new(), 3_000_000);
        assert!(report.completed);
        assert!(
            tracker.violations().is_empty(),
            "{:?}",
            tracker.violations()
        );
    }

    #[test]
    fn lemma_6_5_holds_under_protocol_aware_adversaries() {
        use crate::adversaries::{LeaderStarver, SplitAdversary};
        for seed in 0..6 {
            let params = ConsensusParams::quick(3);
            let inputs = [true, false, true];
            let (report, tracker) = check_execution(
                &params,
                &inputs,
                seed,
                &mut SplitAdversary::new(params.k(), seed),
                5_000_000,
            );
            assert!(report.completed, "split seed {seed}");
            assert!(
                tracker.violations().is_empty(),
                "split seed {seed}: {:?}",
                tracker.violations()
            );

            let (report, tracker) = check_execution(
                &params,
                &inputs,
                seed,
                &mut LeaderStarver::new(params.k()),
                5_000_000,
            );
            assert!(report.completed, "starver seed {seed}");
            assert!(
                tracker.violations().is_empty(),
                "starver seed {seed}: {:?}",
                tracker.violations()
            );
        }
    }

    #[test]
    fn rounds_advance_with_the_execution() {
        // Mixed inputs force at least one real round advance before any
        // decision (unanimous inputs decide at the very first scan, where
        // no inc is yet visible).
        let params = ConsensusParams::quick(2);
        let (_, tracker) = check_execution(
            &params,
            &[true, false],
            1,
            &mut TurnRoundRobin::new(),
            1_000_000,
        );
        assert!(
            tracker.rounds().iter().any(|&r| r > 0),
            "someone must have advanced: {:?}",
            tracker.rounds()
        );
    }
}
