//! Running the bounded protocol over real snapshot memory.
//!
//! The same [`BoundedCore`] that drives the fast turn-based experiments is
//! wrapped here into process bodies for a [`bprc_sim::World`]: every
//! iteration performs a genuine snapshot scan followed by a genuine update.
//! This validates the full stack — protocol + strip + coin + snapshot — at
//! register granularity, in both lockstep (deterministic,
//! adversary-scheduled) and free-running (OS threads) modes.
//!
//! The driver is generic over the [`SnapshotBackend`]: the paper's bounded
//! handshake construction ([`ScannableMemory`], the default) or the
//! wait-free AADGMS construction ([`bprc_snapshot::WaitFreeSnapshot`],
//! immune to scan starvation). [`over_snapshot`] takes the backend as a
//! type parameter; [`over_scannable_memory`] and [`ThreadedConsensus`] are
//! the historical handshake-specialised entry points.

use bprc_registers::ArrowCell;
use bprc_sim::tracing::{now_nanos, EventKind, Hist};
use bprc_sim::turn::{TurnProcess, TurnStep};
use bprc_sim::world::ProcBody;
use bprc_sim::{Counter, Gauge, PhaseKind, World};
use bprc_snapshot::{ScannableMemory, SnapshotBackend, SnapshotPort, WaitFreeSnapshot};

use crate::bounded::{BoundedCore, ConsensusParams};
use crate::state::ProcState;

/// What [`over_snapshot`] returns: the backend plus one runnable body per
/// process.
pub type BackendAndBodies<B, O> = (B, Vec<ProcBody<O>>);

/// What [`over_scannable_memory`] returns: the memory plus one runnable
/// body per process.
pub type MemoryAndBodies<M, A, O> = (ScannableMemory<M, A>, Vec<ProcBody<O>>);

/// Wraps any scan/write protocol ([`TurnProcess`]) into process bodies that
/// run it over a real [`ScannableMemory`]: the returned memory plus one
/// body per process. Shorthand for [`over_snapshot`] with the handshake
/// backend.
///
/// `initial` is the registers' initial contents (what a process that has
/// not yet written appears as).
///
/// # Panics
///
/// Panics if `procs.len()` differs from the world size.
pub fn over_scannable_memory<P, A>(
    world: &World,
    procs: Vec<P>,
    initial: P::Msg,
) -> MemoryAndBodies<P::Msg, A, P::Out>
where
    P: TurnProcess + Send + 'static,
    P::Msg: Clone + PartialEq + Send + Sync + 'static,
    P::Out: Send + 'static,
    A: ArrowCell,
{
    over_snapshot::<P, ScannableMemory<P::Msg, A>>(world, procs, initial)
}

/// Wraps any scan/write protocol ([`TurnProcess`]) into process bodies that
/// run it over any [`SnapshotBackend`] `B`: the returned backend plus one
/// body per process. The body loop, the probe bridge into the metrics
/// plane, and the telemetry publication are identical for every backend —
/// which backend you pick changes only how the scans underneath are
/// implemented.
///
/// `initial` is the registers' initial contents (what a process that has
/// not yet written appears as).
///
/// # Panics
///
/// Panics if `procs.len()` differs from the world size.
pub fn over_snapshot<P, B>(
    world: &World,
    mut procs: Vec<P>,
    initial: P::Msg,
) -> BackendAndBodies<B, P::Out>
where
    P: TurnProcess + Send + 'static,
    P::Msg: Clone + PartialEq + Send + Sync + 'static,
    P::Out: Send + 'static,
    B: SnapshotBackend<P::Msg>,
{
    let n = procs.len();
    assert_eq!(world.n(), n, "one process per world slot");
    let memory = B::alloc(world, n, initial);
    let bodies = procs
        .drain(..)
        .enumerate()
        .map(|(pid, mut proc)| {
            let mut port = memory.port(pid);
            let first = proc.initial_msg();
            let b: ProcBody<P::Out> = Box::new(move |ctx| {
                // Bridge the protocol's probe into the metrics plane: round
                // changes become `round(r)` phase spans (and move the round
                // gauge), new coin flips open a `coin` span. The snapshot
                // layer emits its own `scan`/`write` spans underneath. The
                // same probe deltas feed the flight recorder (round-advance
                // and coin-flip ring events) and the latency histograms
                // (per-round duration, first-step-to-decision).
                let mut last = proc.probe();
                let body_start = now_nanos();
                let mut round_start = body_start;
                if let Some(r) = last.round {
                    ctx.phase(PhaseKind::Round(r));
                    ctx.metrics().gauge_set(Gauge::Round, r);
                }
                // One view buffer for the whole run: `scan_into` refills it
                // in place, so the steady-state loop allocates nothing.
                let mut view: Vec<P::Msg> = Vec::new();
                let result = (|| {
                    port.update(ctx, first)?;
                    loop {
                        port.scan_into(ctx, &mut view)?;
                        let step = proc.on_scan(&view);
                        let now = proc.probe();
                        if now.round != last.round {
                            if let Some(r) = now.round {
                                ctx.phase(PhaseKind::Round(r));
                                ctx.metrics().gauge_set(Gauge::Round, r);
                                ctx.trace_event(EventKind::RoundAdvance, r);
                                let t = now_nanos();
                                ctx.hist_record(
                                    Hist::RoundDurationNs,
                                    t.saturating_sub(round_start),
                                );
                                round_start = t;
                            }
                        }
                        if now.coin_flips > last.coin_flips {
                            ctx.phase(PhaseKind::Coin);
                            ctx.trace_event(EventKind::CoinFlip, now.coin_flips - last.coin_flips);
                        }
                        last = now;
                        match step {
                            TurnStep::Write(s) => port.update(ctx, s)?,
                            TurnStep::Decide(v) => {
                                ctx.count(Counter::Decisions, 1);
                                ctx.trace_event(EventKind::Decide, 0);
                                ctx.hist_record(
                                    Hist::DecisionLatencyNs,
                                    now_nanos().saturating_sub(body_start),
                                );
                                return Ok(v);
                            }
                        }
                    }
                })();
                proc.publish_telemetry(&ctx.metrics());
                result
            });
            b
        })
        .collect();
    (memory, bodies)
}

/// A full-stack consensus instance over any snapshot backend: the backend
/// plus one body per process.
///
/// Use the aliases for the common cases: [`ThreadedConsensus`] (the paper's
/// handshake memory) and [`WaitFreeConsensus`] (the wait-free snapshot,
/// immune to scan starvation).
pub struct ThreadedConsensusOn<B> {
    /// The underlying snapshot backend (for stats and checker metadata).
    pub memory: B,
    /// One body per process; pass to [`World::run`].
    pub bodies: Vec<ProcBody<bool>>,
}

/// The historical handshake-backed instance: [`ThreadedConsensusOn`] over
/// [`ScannableMemory`] with arrow implementation `A`.
pub type ThreadedConsensus<A> = ThreadedConsensusOn<ScannableMemory<ProcState, A>>;

/// Consensus over the wait-free AADGMS snapshot: same protocol, same
/// driver, but scans cannot starve — the writer-pressure adversary that
/// drives the handshake memory to [`bprc_sim::Halted::ScanStarved`]
/// (under a retry budget) costs this backend at most `n + 1` attempts.
pub type WaitFreeConsensus = ThreadedConsensusOn<WaitFreeSnapshot<ProcState>>;

impl<B: SnapshotBackend<ProcState>> ThreadedConsensusOn<B> {
    /// Builds the instance in `world` with the given inputs.
    ///
    /// `seed` derives each process's local coin flips.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != params.n()` or the world size differs.
    pub fn new(world: &World, params: &ConsensusParams, inputs: &[bool], seed: u64) -> Self {
        assert_eq!(inputs.len(), params.n(), "one input per process");
        let procs: Vec<BoundedCore> = (0..params.n())
            .map(|pid| {
                BoundedCore::new(
                    params.clone(),
                    pid,
                    inputs[pid],
                    bprc_sim::rng::derive_seed(seed, pid as u64),
                )
            })
            .collect();
        let (memory, bodies) =
            over_snapshot(world, procs, ProcState::phantom(params.n(), params.k()));
        ThreadedConsensusOn { memory, bodies }
    }

    /// Bounds (or unbounds) the backend's per-scan retry budget —
    /// shorthand for `self.memory.set_scan_retry_budget(budget)`. With a
    /// budget, a handshake scan starved by concurrent writers halts its
    /// process as [`bprc_sim::Halted::ScanStarved`] instead of retrying
    /// forever; on a wait-free backend this is a no-op (nothing to bound).
    pub fn set_scan_retry_budget(&self, budget: Option<u64>) {
        SnapshotBackend::set_scan_retry_budget(&self.memory, budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_registers::{DirectArrow, HandshakeArrow};
    use bprc_sim::sched::{CrashPlan, RandomStrategy};
    use bprc_sim::Mode;
    use bprc_snapshot::check_history;

    #[test]
    fn lockstep_full_stack_agreement_direct_arrows() {
        for seed in 0..6 {
            let params = ConsensusParams::quick(3);
            let mut world = World::builder(3).seed(seed).step_limit(5_000_000).build();
            let inst =
                ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], seed);
            let meta = inst.memory.meta();
            let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(seed)));
            let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: agreement violated: {decisions:?}"
            );
            // The interleaving's snapshot properties must hold too.
            let check = check_history(rep.history.as_ref().unwrap(), &meta);
            assert!(check.ok(), "seed {seed}: {:?}", check.violations);
        }
    }

    #[test]
    fn lockstep_full_stack_agreement_handshake_arrows() {
        for seed in 0..4 {
            let params = ConsensusParams::quick(2);
            let mut world = World::builder(2).seed(seed).step_limit(5_000_000).build();
            let inst =
                ThreadedConsensus::<HandshakeArrow>::new(&world, &params, &[false, true], seed);
            let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(seed)));
            let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
            assert!(decisions.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn lockstep_full_stack_agreement_waitfree() {
        for seed in 0..6 {
            let params = ConsensusParams::quick(3);
            let mut world = World::builder(3).seed(seed).step_limit(5_000_000).build();
            let inst = WaitFreeConsensus::new(&world, &params, &[true, false, true], seed);
            let meta = inst.memory.meta();
            let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(seed)));
            let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: agreement violated: {decisions:?}"
            );
            // P1–P3 hold for the wait-free interleavings too — the checker
            // is backend-agnostic.
            let check = check_history(rep.history.as_ref().unwrap(), &meta);
            assert!(check.ok(), "seed {seed}: {:?}", check.violations);
        }
    }

    #[test]
    fn waitfree_validity_over_threads() {
        let params = ConsensusParams::quick(3);
        let mut world = World::builder(3)
            .mode(Mode::Free)
            .step_limit(u64::MAX)
            .build();
        let inst = WaitFreeConsensus::new(&world, &params, &[true, true, true], 5);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(0)));
        assert!(rep.outputs.iter().all(|o| *o == Some(true)));
    }

    #[test]
    fn waitfree_agreement_at_op_granularity() {
        // The third execution granularity: whole scans/updates as atomic
        // turns, reconstructed over real registers by the OpGrained
        // strategy (see `bprc_snapshot::OpGrained`).
        use bprc_snapshot::OpGrained;
        let params = ConsensusParams::quick(3);
        let mut world = World::builder(3).seed(11).step_limit(5_000_000).build();
        let inst = WaitFreeConsensus::new(&world, &params, &[true, false, false], 11);
        let strategy = OpGrained::new(&inst.memory);
        let rep = world.run(inst.bodies, Box::new(strategy));
        let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated: {decisions:?}"
        );
    }

    #[test]
    fn op_grained_turns_work_on_handshake_too() {
        use bprc_snapshot::OpGrained;
        let params = ConsensusParams::quick(2);
        let mut world = World::builder(2).seed(3).step_limit(5_000_000).build();
        let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[false, true], 3);
        let strategy = OpGrained::new(&inst.memory);
        let rep = world.run(inst.bodies, Box::new(strategy));
        let decisions: Vec<bool> = rep.outputs.iter().map(|o| o.unwrap()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn validity_over_threads() {
        let params = ConsensusParams::quick(3);
        let mut world = World::builder(3)
            .mode(Mode::Free)
            .step_limit(u64::MAX)
            .build();
        let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, true, true], 5);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(0)));
        assert!(rep.outputs.iter().all(|o| *o == Some(true)));
    }

    #[test]
    fn multivalued_over_real_registers() {
        // The generic adapter lets the multivalued protocol run over the
        // full register-level stack too.
        use crate::multivalued::{MvCore, MvState};
        for seed in 0..3 {
            let n = 2;
            let params = ConsensusParams::quick(n);
            let values = [19u64, 7];
            let mut world = World::builder(n).seed(seed).step_limit(20_000_000).build();
            let procs: Vec<MvCore> = (0..n)
                .map(|p| MvCore::new(params.clone(), p, values[p], 8, seed * 31 + p as u64))
                .collect();
            let initial = MvState {
                candidate: 0,
                levels: Vec::new(),
            };
            let (_mem, bodies) = over_scannable_memory::<_, DirectArrow>(&world, procs, initial);
            let rep = world.run(bodies, Box::new(RandomStrategy::new(seed)));
            let decisions: Vec<u64> = rep.outputs.iter().map(|o| o.unwrap()).collect();
            assert_eq!(decisions[0], decisions[1], "seed {seed}");
            assert!(values.contains(&decisions[0]), "seed {seed}");
        }
    }

    #[test]
    fn threaded_backend_populates_telemetry() {
        let params = ConsensusParams::quick(3);
        let mut world = World::builder(3).seed(7).step_limit(5_000_000).build();
        let inst = ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], 7);
        let rep = world.run(inst.bodies, Box::new(RandomStrategy::new(7)));
        assert!(rep.outputs.iter().all(|o| o.is_some()));
        let t = &rep.telemetry;
        assert_eq!(t.total(Counter::Decisions), 3);
        assert!(t.total(Counter::Scans) >= 3);
        assert!(t.total(Counter::ScanAttempts) >= t.total(Counter::Scans));
        assert!(t.total(Counter::ScanAttempts) >= t.total(Counter::ScanRetries));
        assert!(t.total(Counter::RegReads) > 0 && t.total(Counter::RegWrites) > 0);
        assert!(t.total(Counter::RoundAdvances) >= 3);
        for pid in 0..3 {
            // Decided processes published a positive round via the gauge.
            assert!(t.gauge(pid, Gauge::Round).unwrap_or(0) >= 1, "pid {pid}");
            // The probe bridge opened at least the initial round span.
            assert!(t
                .phases(pid)
                .iter()
                .any(|p| matches!(p.kind, PhaseKind::Round(_))));
        }
    }

    #[test]
    fn crash_tolerance_full_stack() {
        for seed in 0..4 {
            let params = ConsensusParams::quick(3);
            let mut world = World::builder(3).seed(seed).step_limit(5_000_000).build();
            let inst =
                ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, false], seed);
            let strategy = CrashPlan::new(RandomStrategy::new(seed), vec![(30, 0)]);
            let rep = world.run(inst.bodies, Box::new(strategy));
            let survivors: Vec<bool> = (1..3).filter_map(|p| rep.outputs[p]).collect();
            assert_eq!(survivors.len(), 2, "seed {seed}: survivors must decide");
            assert_eq!(survivors[0], survivors[1], "seed {seed}: agreement");
        }
    }

    #[test]
    fn chaos_plan_full_stack_panic_containment() {
        // Inject a panic into one process mid-run over the real register
        // stack: the panic is contained, the survivors reach agreement, and
        // the injection is visible in the recorded history.
        use bprc_sim::faults::{FaultPlan, FaultedStrategy};
        use bprc_sim::{FaultKind, Halted};
        // Expected contained panic: keep it off stderr.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .is_some_and(|s| s.contains("chaos"));
            if !injected {
                prev_hook(info);
            }
        }));
        for seed in 0..4 {
            let params = ConsensusParams::quick(3);
            let mut world = World::builder(3).seed(seed).step_limit(5_000_000).build();
            let inst =
                ThreadedConsensus::<DirectArrow>::new(&world, &params, &[true, false, true], seed);
            let plan = FaultPlan::new().panic_at(25, 1).stall(0, 60, 200);
            let strategy = FaultedStrategy::new(RandomStrategy::new(seed), plan);
            let rep = world.run(inst.bodies, Box::new(strategy));
            assert_eq!(rep.halted[1], Some(Halted::Panicked), "seed {seed}");
            let survivors: Vec<bool> = [0, 2].iter().filter_map(|&p| rep.outputs[p]).collect();
            assert_eq!(survivors.len(), 2, "seed {seed}: survivors must decide");
            assert_eq!(survivors[0], survivors[1], "seed {seed}: agreement");
            let h = rep.history.unwrap();
            assert!(
                h.faults()
                    .any(|(_, pid, k)| pid == 1 && k == FaultKind::PanicInjected),
                "seed {seed}: injection missing from history"
            );
        }
    }
}
