//! Multi-shot consensus: a replicated log of agreed values.
//!
//! The paper's introduction motivates randomized consensus as the universal
//! building block for wait-free synchronization (Herlihy's `fetch&cons`,
//! Plotkin's sticky bits). This module supplies that shape: a [`LogCore`]
//! is a replica that agrees, slot by slot, on an unbounded… well, a
//! `n_slots`-long sequence of values, with each slot decided by one
//! multivalued bounded-consensus instance ([`crate::multivalued`]).
//!
//! Replicas are asynchronous **across slots**: one replica can be agreeing
//! on slot 4 while another is still writing its proposal for slot 0 — the
//! not-yet-joined replica simply appears as a phantom in the later slots,
//! which the underlying protocol already tolerates.
//!
//! Proposals may depend on everything decided so far (the
//! [`ProposalSource`] trait), which is exactly what a replicated state
//! machine needs: "given the state produced by the decided prefix, propose
//! my next operation".

use bprc_sim::turn::{TurnProcess, TurnStep};

use crate::bounded::ConsensusParams;
use crate::multivalued::{MvCore, MvState};

/// Supplies a replica's proposal for the next slot, given the decided
/// prefix.
pub trait ProposalSource {
    /// The value to propose for slot `decided.len()`.
    fn next_proposal(&mut self, decided: &[u64]) -> u64;
}

/// A fixed list of proposals (one per slot).
#[derive(Debug, Clone)]
pub struct StaticProposals(pub Vec<u64>);

impl ProposalSource for StaticProposals {
    fn next_proposal(&mut self, decided: &[u64]) -> u64 {
        self.0.get(decided.len()).copied().unwrap_or(0)
    }
}

impl<F: FnMut(&[u64]) -> u64> ProposalSource for F {
    fn next_proposal(&mut self, decided: &[u64]) -> u64 {
        self(decided)
    }
}

/// What each replica publishes: its per-slot multivalued states, for the
/// slots it has joined so far (bounded by `n_slots`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogMsg {
    /// One multivalued-consensus state per joined slot.
    pub slots: Vec<MvState>,
}

/// One replica of the multi-shot log.
pub struct LogCore<S> {
    params: ConsensusParams,
    me: usize,
    width: u32,
    n_slots: usize,
    seed: u64,
    source: S,
    decided: Vec<u64>,
    inner: MvCore,
    /// Stats folded forward from inner cores retired at slot boundaries.
    retired: crate::bounded::CoreStats,
    msg: LogMsg,
}

impl<S> std::fmt::Debug for LogCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogCore")
            .field("me", &self.me)
            .field("slot", &self.decided.len())
            .field("n_slots", &self.n_slots)
            .finish()
    }
}

impl<S: ProposalSource> LogCore<S> {
    /// Creates replica `pid` that will agree on `n_slots` values of
    /// `width` bits each, proposing from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `n_slots == 0`, `width ∉ 1..=64`, or `pid` out of range.
    pub fn new(
        params: ConsensusParams,
        pid: usize,
        n_slots: usize,
        width: u32,
        mut source: S,
        seed: u64,
    ) -> Self {
        assert!(n_slots >= 1, "need at least one slot");
        let first = source.next_proposal(&[]);
        let inner = MvCore::new(
            params.clone(),
            pid,
            first,
            width,
            bprc_sim::rng::derive_seed(seed, 0),
        );
        let msg = LogMsg {
            slots: vec![inner_msg(&inner)],
        };
        LogCore {
            params,
            me: pid,
            width,
            n_slots,
            seed,
            source,
            decided: Vec::new(),
            inner,
            retired: crate::bounded::CoreStats::default(),
            msg,
        }
    }

    /// Slots decided so far by this replica.
    pub fn decided(&self) -> &[u64] {
        &self.decided
    }

    /// Protocol stats summed across every slot this replica worked on.
    pub fn cumulative_stats(&self) -> crate::bounded::CoreStats {
        let mut s = self.retired;
        s.absorb(&self.inner.cumulative_stats());
        s
    }
}

/// The register value a fresh `MvCore` starts with (its `initial_msg`
/// without requiring `&mut`): candidate + level-0 state.
fn inner_msg(inner: &MvCore) -> MvState {
    inner.current_msg()
}

impl<S: ProposalSource> TurnProcess for LogCore<S> {
    type Msg = LogMsg;
    type Out = Vec<u64>;

    fn initial_msg(&mut self) -> LogMsg {
        self.msg.clone()
    }

    fn on_scan(&mut self, view: &[LogMsg]) -> TurnStep<LogMsg, Vec<u64>> {
        let slot = self.decided.len();
        // Project the view to the current slot; replicas that have not
        // joined it appear as not-yet-started multivalued participants.
        let phantom = MvState {
            candidate: 0,
            levels: Vec::new(),
        };
        let slot_view: Vec<MvState> = view
            .iter()
            .map(|m| {
                m.slots
                    .get(slot)
                    .cloned()
                    .unwrap_or_else(|| phantom.clone())
            })
            .collect();
        match self.inner.on_scan(&slot_view) {
            TurnStep::Write(s) => {
                self.msg.slots[slot] = s;
                TurnStep::Write(self.msg.clone())
            }
            TurnStep::Decide(v) => {
                self.decided.push(v);
                if self.decided.len() == self.n_slots {
                    return TurnStep::Decide(self.decided.clone());
                }
                let proposal = self.source.next_proposal(&self.decided);
                self.retired.absorb(&self.inner.cumulative_stats());
                self.inner = MvCore::new(
                    self.params.clone(),
                    self.me,
                    proposal,
                    self.width,
                    bprc_sim::rng::derive_seed(self.seed, self.decided.len() as u64),
                );
                self.msg.slots.push(inner_msg(&self.inner));
                TurnStep::Write(self.msg.clone())
            }
        }
    }

    fn probe(&self) -> bprc_sim::turn::TurnProbe {
        let s = self.cumulative_stats();
        bprc_sim::turn::TurnProbe {
            round: Some(s.rounds),
            coin_flips: s.coin_flips,
        }
    }

    fn publish_telemetry(&self, m: &bprc_sim::ProcMetrics<'_>) {
        self.cumulative_stats().publish(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnBsp, TurnDriver, TurnRandom};

    fn run_log(proposals: Vec<Vec<u64>>, n_slots: usize, width: u32, seed: u64) -> Vec<Vec<u64>> {
        let n = proposals.len();
        let params = ConsensusParams::quick(n);
        let procs: Vec<LogCore<StaticProposals>> = proposals
            .into_iter()
            .enumerate()
            .map(|(p, mine)| {
                LogCore::new(
                    params.clone(),
                    p,
                    n_slots,
                    width,
                    StaticProposals(mine),
                    seed * 71 + p as u64,
                )
            })
            .collect();
        let report = TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 100_000_000);
        assert!(report.completed, "log did not complete");
        report.outputs.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn replicas_agree_on_every_slot() {
        for seed in 0..5 {
            let logs = run_log(
                vec![vec![1, 2, 3], vec![10, 20, 30], vec![100, 200, 201]],
                3,
                8,
                seed,
            );
            assert_eq!(logs[0], logs[1], "seed {seed}");
            assert_eq!(logs[1], logs[2], "seed {seed}");
            // Each slot's value is someone's proposal for that slot.
            for (slot, &v) in logs[0].iter().enumerate() {
                let candidates = [
                    [1u64, 2, 3][slot],
                    [10, 20, 30][slot],
                    [100, 200, 201][slot],
                ];
                assert!(candidates.contains(&v), "seed {seed} slot {slot}: {v}");
            }
        }
    }

    #[test]
    fn state_dependent_proposals_build_a_chain() {
        // Each replica proposes last_decided * 2 + its id: whatever wins,
        // the chain stays internally consistent (every link doubles the
        // previous and adds some replica's id).
        let n = 3;
        let params = ConsensusParams::quick(n);
        let procs: Vec<LogCore<_>> = (0..n)
            .map(|p| {
                let me = p as u64;
                LogCore::new(
                    params.clone(),
                    p,
                    4,
                    16,
                    move |decided: &[u64]| decided.last().copied().unwrap_or(1) * 2 + me,
                    p as u64,
                )
            })
            .collect();
        let report = TurnDriver::new(procs).run(&mut TurnRandom::new(9), 100_000_000);
        assert!(report.completed);
        let log = report.outputs[0].clone().unwrap();
        assert_eq!(&log, report.outputs[1].as_ref().unwrap());
        let mut prev = 1u64;
        for &v in &log {
            let id = v.checked_sub(prev * 2).expect("chain link well-formed");
            assert!(id < n as u64, "link {v} not derived from prev {prev}");
            prev = v;
        }
    }

    #[test]
    fn bsp_adversary_cannot_break_the_log() {
        let n = 2;
        let params = ConsensusParams::quick(n);
        let procs: Vec<LogCore<StaticProposals>> = (0..n)
            .map(|p| {
                LogCore::new(
                    params.clone(),
                    p,
                    2,
                    4,
                    StaticProposals(vec![p as u64 + 1, p as u64 + 5]),
                    p as u64,
                )
            })
            .collect();
        let report = TurnDriver::new(procs).run(&mut TurnBsp::new(), 100_000_000);
        assert!(report.completed);
        assert_eq!(report.outputs[0], report.outputs[1]);
    }
}
