//! Multivalued consensus — the extension the paper mentions ("the protocol
//! can be extended to handle arbitrary initial values").
//!
//! The classic bit-by-bit reduction: processes agree on a `width`-bit value
//! by running one binary bounded-consensus instance per bit position, low
//! bit first. Each process proposes, at level `L`, bit `L` of its current
//! *candidate*; when level `L` decides a bit that contradicts the
//! candidate, the process adopts (from the published registers) some
//! candidate whose low bits match the decided prefix — one always exists,
//! because a bit can only be decided if some prefix-compatible participant
//! proposed it (the binary protocol's validity, plus the fact that the
//! shared coin is only consulted after genuine disagreement).
//!
//! Every process's register holds its candidate plus one bounded
//! [`ProcState`] per level it has reached — at most `width` of them, so the
//! construction stays bounded.
//!
//! Processes may be levels apart: a participant that has not reached level
//! `L` appears there as a phantom (round-0, ⊥) state, which the binary
//! protocol already tolerates — it is just a process that has not taken a
//! step yet.

use bprc_sim::turn::{TurnProcess, TurnStep};

use crate::bounded::{BoundedCore, ConsensusParams, CoreStats};
use crate::state::ProcState;

/// Register contents of one multivalued-consensus process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MvState {
    /// The process's current candidate value.
    pub candidate: u64,
    /// Its binary-instance states for levels `0..=current` (one entry per
    /// level joined; bounded by the width).
    pub levels: Vec<ProcState>,
}

/// How the per-level binary cores obtain their local coin flips.
#[derive(Debug, Clone)]
enum FlipMode {
    /// Fair flips derived from a master seed per level.
    Seeded(u64),
    /// Externally loaded outcomes ([`bprc_coin::Flips::Queue`]) — for the
    /// model checker.
    Queue,
}

/// One process of the multivalued protocol.
#[derive(Debug, Clone)]
pub struct MvCore {
    params: ConsensusParams,
    me: usize,
    width: u32,
    flip_mode: FlipMode,
    level: usize,
    decided_bits: u64,
    inner: BoundedCore,
    /// Stats folded forward from inner cores retired at level advances.
    retired: CoreStats,
    state: MvState,
}

impl MvCore {
    /// Creates the process proposing `value` (only the low `width` bits are
    /// used).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or `pid` is out of range.
    pub fn new(params: ConsensusParams, pid: usize, value: u64, width: u32, seed: u64) -> Self {
        Self::with_mode(params, pid, value, width, FlipMode::Seeded(seed))
    }

    /// Creates the process with queue-fed local flips (for the model
    /// checker — see [`crate::modelcheck`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or `pid` is out of range.
    pub fn with_queue_flips(params: ConsensusParams, pid: usize, value: u64, width: u32) -> Self {
        Self::with_mode(params, pid, value, width, FlipMode::Queue)
    }

    fn with_mode(
        params: ConsensusParams,
        pid: usize,
        value: u64,
        width: u32,
        flip_mode: FlipMode,
    ) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert!(pid < params.n(), "pid out of range");
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        let inner = Self::make_inner(&params, pid, value & 1 == 1, &flip_mode, 0);
        let state = MvState {
            candidate: value,
            levels: vec![inner.state().clone()],
        };
        MvCore {
            params,
            me: pid,
            width,
            flip_mode,
            level: 0,
            decided_bits: 0,
            inner,
            retired: CoreStats::default(),
            state,
        }
    }

    /// Protocol stats summed across all levels this process has worked on
    /// (retired inner cores plus the live one).
    pub fn cumulative_stats(&self) -> CoreStats {
        let mut s = self.retired;
        s.absorb(&self.inner.stats());
        s
    }

    fn make_inner(
        params: &ConsensusParams,
        pid: usize,
        input: bool,
        mode: &FlipMode,
        level: usize,
    ) -> BoundedCore {
        // Participants reach a level at different times (and, through the
        // multi-shot log, even level 0 of later slots), so every inner core
        // is a late *joiner*: its first inc is computed from its first scan
        // rather than from the paper's assumed-all-zero initial memory.
        let flips = match mode {
            FlipMode::Seeded(seed) => {
                bprc_coin::Flips::fair(bprc_sim::rng::derive_seed(*seed, level as u64))
            }
            FlipMode::Queue => bprc_coin::Flips::queue(),
        };
        BoundedCore::joiner(params.clone(), pid, input, flips)
    }

    /// Access to the current level's binary core (the model checker feeds
    /// flip outcomes through it).
    pub fn inner_core_mut(&mut self) -> &mut BoundedCore {
        &mut self.inner
    }

    /// Immutable access to the current level's binary core.
    pub fn inner_core(&self) -> &BoundedCore {
        &self.inner
    }

    /// The level (bit position) this process is currently deciding.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The register value this process last published (its candidate plus
    /// its per-level states).
    pub fn current_msg(&self) -> MvState {
        self.state.clone()
    }

    fn bit(value: u64, level: usize) -> bool {
        (value >> level) & 1 == 1
    }

    /// Does `candidate` match the decided prefix through `level` bits?
    fn matches_prefix(&self, candidate: u64, through: usize) -> bool {
        if through == 0 {
            return true;
        }
        let mask = if through >= 64 {
            u64::MAX
        } else {
            (1u64 << through) - 1
        };
        (candidate ^ self.decided_bits) & mask == 0
    }
}

impl TurnProcess for MvCore {
    type Msg = MvState;
    type Out = u64;

    fn initial_msg(&mut self) -> MvState {
        self.state.clone()
    }

    fn on_scan(&mut self, view: &[MvState]) -> TurnStep<MvState, u64> {
        // Project the view down to the current level's binary instance;
        // processes that have not joined this level appear as phantoms.
        let phantom = ProcState::phantom(self.params.n(), self.params.k());
        let level_view: Vec<ProcState> = view
            .iter()
            .map(|s| {
                s.levels
                    .get(self.level)
                    .cloned()
                    .unwrap_or_else(|| phantom.clone())
            })
            .collect();
        match self.inner.on_view(&level_view) {
            TurnStep::Write(s) => {
                self.state.levels[self.level] = s;
                TurnStep::Write(self.state.clone())
            }
            TurnStep::Decide(bit) => {
                if bit {
                    self.decided_bits |= 1 << self.level;
                }
                if Self::bit(self.state.candidate, self.level) != bit {
                    // Adopt a published prefix-compatible candidate
                    // (deterministically the smallest). Registers of joined
                    // processes only — phantoms have no levels.
                    let adopted = view
                        .iter()
                        .filter(|s| !s.levels.is_empty())
                        .map(|s| s.candidate)
                        .filter(|&c| self.matches_prefix(c, self.level + 1))
                        .min()
                        .expect("a prefix-compatible candidate must exist (binary validity)");
                    self.state.candidate = adopted;
                }
                self.level += 1;
                if self.level as u32 == self.width {
                    return TurnStep::Decide(self.state.candidate);
                }
                self.retired.absorb(&self.inner.stats());
                self.inner = Self::make_inner(
                    &self.params,
                    self.me,
                    Self::bit(self.state.candidate, self.level),
                    &self.flip_mode,
                    self.level,
                );
                self.state.levels.push(self.inner.state().clone());
                TurnStep::Write(self.state.clone())
            }
        }
    }

    fn probe(&self) -> bprc_sim::turn::TurnProbe {
        let s = self.cumulative_stats();
        bprc_sim::turn::TurnProbe {
            round: Some(s.rounds),
            coin_flips: s.coin_flips,
        }
    }

    fn publish_telemetry(&self, m: &bprc_sim::ProcMetrics<'_>) {
        self.cumulative_stats().publish(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprc_sim::turn::{TurnDriver, TurnRandom, TurnRoundRobin};

    fn run(values: &[u64], width: u32, seed: u64) -> bprc_sim::turn::TurnReport<u64> {
        let n = values.len();
        let params = ConsensusParams::quick(n);
        let procs: Vec<MvCore> = (0..n)
            .map(|p| MvCore::new(params.clone(), p, values[p], width, seed * 97 + p as u64))
            .collect();
        TurnDriver::new(procs).run(&mut TurnRandom::new(seed), 20_000_000)
    }

    #[test]
    fn unanimous_value_is_decided() {
        let r = run(&[42, 42, 42], 8, 1);
        assert!(r.completed);
        assert!(r.outputs.iter().all(|o| *o == Some(42)));
    }

    #[test]
    fn agreement_and_validity_mixed_values() {
        for seed in 0..8 {
            let values = [13u64, 200, 13];
            let r = run(&values, 8, seed);
            assert!(r.completed, "seed {seed}");
            let d = r.distinct_outputs();
            assert_eq!(d.len(), 1, "seed {seed}: {:?}", r.outputs);
            assert!(
                values.contains(d[0]),
                "seed {seed}: decided {} not among proposals",
                d[0]
            );
        }
    }

    #[test]
    fn two_processes_wide_values() {
        for seed in 0..5 {
            let values = [0xDEAD_BEEFu64, 0xCAFE_F00D];
            let r = run(&values, 32, seed);
            assert!(r.completed, "seed {seed}");
            let d = r.distinct_outputs();
            assert_eq!(d.len(), 1, "seed {seed}");
            assert!(values.contains(d[0]), "seed {seed}");
        }
    }

    #[test]
    fn round_robin_terminates() {
        let values = [7u64, 9];
        let params = ConsensusParams::quick(2);
        let procs: Vec<MvCore> = (0..2)
            .map(|p| MvCore::new(params.clone(), p, values[p], 4, p as u64))
            .collect();
        let r = TurnDriver::new(procs).run(&mut TurnRoundRobin::new(), 20_000_000);
        assert!(r.completed);
        let d = r.distinct_outputs();
        assert!(values.contains(d[0]));
    }

    #[test]
    fn width_masks_high_bits() {
        let r = run(&[0xFF, 0xFF], 4, 2);
        assert!(r.completed);
        assert!(r.outputs.iter().all(|o| *o == Some(0xF)));
    }
}
