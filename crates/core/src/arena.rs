//! The protocol arena: every consensus implementation in the workspace
//! behind one object-safe [`Consensus`] surface.
//!
//! The main bounded-polynomial stack and the [`crate::baselines`] cores
//! historically had per-protocol harnesses: the bounded protocol ran over
//! real snapshot memory ([`crate::threaded`]), the baselines only under the
//! turn driver. The arena closes that gap — every entrant builds
//! [`bprc_sim::World`] process bodies through the same trait, so the chaos
//! plane ([`bprc_sim::faults::FaultPlan`]), the systematic explorer
//! ([`bprc_sim::explore`]), the flight recorder, and the telemetry plane
//! all drive every protocol *unmodified*, and the benchmark harness can
//! race them under identical adversaries.
//!
//! Entrants:
//!
//! * [`BoundedEntrant`] — the paper's bounded-polynomial protocol over a
//!   genuine snapshot backend;
//! * [`AhEntrant`] — Aspnes–Herlihy \[AH88\], over atomic registers or —
//!   per the Hadzilacos–Hu–Toueg line (arXiv 2006.06771) — over
//!   [`RegMode::Regular`] registers;
//! * [`AbrahamsonEntrant`] — local coins, exponential expected time;
//! * [`OracleEntrant`] — the atomic-shared-coin floor;
//! * [`SwapEntrant`] — the swap-race protocol
//!   ([`crate::baselines::swap_race`]) on raw registers plus
//!   [`bprc_sim::reg::Reg::swap`].
//!
//! Each instance carries an [`ArenaProbe`]: lock-free high-water marks for
//! the register width (the paper's boundedness axis) and the round count
//! (the convergence axis), fed either by [`MeteredProc`] wrapping a
//! [`TurnProcess`] or directly by the swap-race bodies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bprc_registers::DirectArrow;
use bprc_sim::metrics::ProcMetrics;
use bprc_sim::rng::derive_seed;
use bprc_sim::sched::{RandomStrategy, Strategy};
use bprc_sim::turn::{TurnProbe, TurnProcess, TurnStep};
use bprc_sim::weakmem::RandomFlushes;
use bprc_sim::world::{ProcBody, RegMode, World};
use bprc_snapshot::{ScannableMemory, WaitFreeSnapshot};

use crate::baselines::abrahamson::LcState;
use crate::baselines::aspnes_herlihy::AhState;
use crate::baselines::oracle::OracleState;
use crate::baselines::swap_race::swap_race_bodies;
use crate::baselines::{AhCore, LocalCoinCore, OracleCore};
use crate::bounded::{BoundedCore, ConsensusParams};
use crate::state::{Pref, ProcState};
use crate::threaded::over_snapshot;

/// Which snapshot construction an arena instance scans through. Entrants
/// that do not scan (the swap race) ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArenaBackend {
    /// The paper's bounded handshake construction.
    Handshake,
    /// The wait-free AADGMS construction (scan starvation impossible).
    WaitFree,
}

impl ArenaBackend {
    /// Both backends, in benchmark order.
    pub const ALL: [ArenaBackend; 2] = [ArenaBackend::Handshake, ArenaBackend::WaitFree];

    /// Stable name for artifacts and logs.
    pub fn name(self) -> &'static str {
        match self {
            ArenaBackend::Handshake => "handshake",
            ArenaBackend::WaitFree => "waitfree",
        }
    }
}

/// Lock-free protocol-progress high-water marks, shared between the
/// running bodies and the harness that inspects them after the run.
#[derive(Debug, Default)]
pub struct ArenaProbe {
    max_register_bits: AtomicU64,
    max_round: AtomicU64,
}

impl ArenaProbe {
    /// Folds one observed register width into the high-water mark.
    pub fn record_bits(&self, bits: u64) {
        self.max_register_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Folds one observed round number into the high-water mark.
    pub fn record_round(&self, round: u64) {
        self.max_round.fetch_max(round, Ordering::Relaxed);
    }

    /// Largest single-register width any process published (bits).
    pub fn max_register_bits(&self) -> u64 {
        self.max_register_bits.load(Ordering::Relaxed)
    }

    /// Highest round any process reached.
    pub fn max_round(&self) -> u64 {
        self.max_round.load(Ordering::Relaxed)
    }
}

/// A built arena instance: one body per process, plus the probe the
/// bodies feed. Pass `bodies` to [`World::run`] (or the explorer's run
/// factory) exactly like any other body set.
pub struct ArenaInstance {
    /// One runnable body per process.
    pub bodies: Vec<ProcBody<bool>>,
    /// Register-width and round high-water marks, live during the run.
    pub probe: Arc<ArenaProbe>,
}

/// One consensus protocol, buildable into a [`World`] on demand.
///
/// Object-safe on purpose: harnesses hold `Box<dyn Consensus>` rows and
/// treat the bounded protocol, the baselines, and the swap race
/// identically — the acceptance tests forbid per-protocol forks.
pub trait Consensus: Send + Sync {
    /// Stable name for artifacts, logs, and benchmark rows.
    fn name(&self) -> &'static str;

    /// The register consistency model this entrant expects the world to
    /// simulate. Build the world with
    /// [`bprc_sim::world::WorldBuilder::reg_mode`] set to this.
    fn reg_mode(&self) -> RegMode {
        RegMode::Atomic
    }

    /// Builds one body per process (plus the probe) in `world`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the world size or the world's
    /// register mode differs from [`Consensus::reg_mode`].
    fn build(
        &self,
        world: &World,
        backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance;
}

/// Wraps a [`TurnProcess`] so every published register value is measured
/// into an [`ArenaProbe`] (width via the protocol-specific `bits` closure,
/// round via the inner probe) while delegating the protocol logic — and
/// the [`TurnProcess::probe`] / [`TurnProcess::publish_telemetry`]
/// surfaces — untouched.
pub struct MeteredProc<P: TurnProcess> {
    inner: P,
    bits: Box<dyn Fn(&P::Msg) -> u64 + Send>,
    probe: Arc<ArenaProbe>,
}

impl<P: TurnProcess> MeteredProc<P> {
    /// Wraps `inner`, measuring each written message with `bits`.
    pub fn new(inner: P, bits: Box<dyn Fn(&P::Msg) -> u64 + Send>, probe: Arc<ArenaProbe>) -> Self {
        MeteredProc { inner, bits, probe }
    }

    fn note_round(&self) {
        if let Some(r) = self.inner.probe().round {
            self.probe.record_round(r);
        }
    }
}

impl<P: TurnProcess> TurnProcess for MeteredProc<P> {
    type Msg = P::Msg;
    type Out = P::Out;

    fn initial_msg(&mut self) -> P::Msg {
        let msg = self.inner.initial_msg();
        self.probe.record_bits((self.bits)(&msg));
        self.note_round();
        msg
    }

    fn on_scan(&mut self, view: &[P::Msg]) -> TurnStep<P::Msg, P::Out> {
        let step = self.inner.on_scan(view);
        if let TurnStep::Write(msg) = &step {
            self.probe.record_bits((self.bits)(msg));
        }
        self.note_round();
        step
    }

    fn probe(&self) -> TurnProbe {
        self.inner.probe()
    }

    fn publish_telemetry(&self, m: &ProcMetrics<'_>) {
        self.inner.publish_telemetry(m);
    }
}

/// Monomorphizes [`over_snapshot`] on the chosen backend and keeps only
/// the bodies (ports hold the memory alive on their own).
fn build_over<P>(
    world: &World,
    procs: Vec<P>,
    initial: P::Msg,
    backend: ArenaBackend,
) -> Vec<ProcBody<P::Out>>
where
    P: TurnProcess + Send + 'static,
    P::Msg: Clone + PartialEq + Send + Sync + 'static,
    P::Out: Send + 'static,
{
    match backend {
        ArenaBackend::Handshake => {
            over_snapshot::<P, ScannableMemory<P::Msg, DirectArrow>>(world, procs, initial).1
        }
        ArenaBackend::WaitFree => {
            over_snapshot::<P, WaitFreeSnapshot<P::Msg>>(world, procs, initial).1
        }
    }
}

fn check_world<C: Consensus + ?Sized>(c: &C, world: &World, inputs: &[bool]) {
    assert_eq!(world.n(), inputs.len(), "one input per world slot");
    assert_eq!(
        world.register_mode(),
        c.reg_mode(),
        "build the world with this entrant's reg_mode()"
    );
}

/// Bits a `pref + round` register holds: 2 for the preference (value or
/// ⊥), plus the round counter's current width.
fn pref_round_bits(round: u64) -> u64 {
    2 + (65 - round.leading_zeros() as u64)
}

/// The paper's bounded-polynomial protocol over a real snapshot backend.
pub struct BoundedEntrant;

impl Consensus for BoundedEntrant {
    fn name(&self) -> &'static str {
        "bounded"
    }

    fn build(
        &self,
        world: &World,
        backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance {
        check_world(self, world, inputs);
        let n = inputs.len();
        let params = ConsensusParams::quick(n);
        let (m, k) = (params.coin().m(), params.k());
        let probe = Arc::new(ArenaProbe::default());
        let procs: Vec<MeteredProc<BoundedCore>> = (0..n)
            .map(|pid| {
                MeteredProc::new(
                    BoundedCore::new(
                        params.clone(),
                        pid,
                        inputs[pid],
                        derive_seed(seed, pid as u64),
                    ),
                    Box::new(move |s: &ProcState| s.register_bits(m, k)),
                    Arc::clone(&probe),
                )
            })
            .collect();
        let initial = ProcState::phantom(n, k);
        let bodies = build_over(world, procs, initial, backend);
        ArenaInstance { bodies, probe }
    }
}

/// Aspnes–Herlihy \[AH88\] over a snapshot backend — atomic registers, or
/// regular ones per the Hadzilacos–Hu–Toueg line (arXiv 2006.06771).
pub struct AhEntrant {
    regular: bool,
}

impl AhEntrant {
    /// AH over atomic registers (the classical setting).
    pub fn atomic() -> Self {
        AhEntrant { regular: false }
    }

    /// AH over regular registers: same cores, but the world must simulate
    /// [`RegMode::Regular`], so every register under the snapshot
    /// construction — values, handshakes, arrows — admits stale reads at
    /// explorable flush points.
    pub fn regular() -> Self {
        AhEntrant { regular: true }
    }
}

impl Consensus for AhEntrant {
    fn name(&self) -> &'static str {
        if self.regular {
            "ah-regular"
        } else {
            "ah-atomic"
        }
    }

    fn reg_mode(&self) -> RegMode {
        if self.regular {
            RegMode::Regular
        } else {
            RegMode::Atomic
        }
    }

    fn build(
        &self,
        world: &World,
        backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance {
        check_world(self, world, inputs);
        let n = inputs.len();
        let probe = Arc::new(ArenaProbe::default());
        let procs: Vec<MeteredProc<AhCore>> = (0..n)
            .map(|pid| {
                MeteredProc::new(
                    AhCore::new(n, pid, inputs[pid], derive_seed(seed, pid as u64), 3),
                    Box::new(|s: &AhState| s.bits()),
                    Arc::clone(&probe),
                )
            })
            .collect();
        let initial = AhState {
            pref: Pref::Bottom,
            round: 0,
            coins: Default::default(),
        };
        let bodies = build_over(world, procs, initial, backend);
        ArenaInstance { bodies, probe }
    }
}

/// Abrahamson \[A88\]: independent local coins, exponential expected time.
pub struct AbrahamsonEntrant;

impl Consensus for AbrahamsonEntrant {
    fn name(&self) -> &'static str {
        "abrahamson"
    }

    fn build(
        &self,
        world: &World,
        backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance {
        check_world(self, world, inputs);
        let n = inputs.len();
        let probe = Arc::new(ArenaProbe::default());
        let procs: Vec<MeteredProc<LocalCoinCore>> = (0..n)
            .map(|pid| {
                MeteredProc::new(
                    LocalCoinCore::new(n, pid, inputs[pid], derive_seed(seed, pid as u64)),
                    Box::new(|s: &LcState| pref_round_bits(s.round)),
                    Arc::clone(&probe),
                )
            })
            .collect();
        let initial = LcState {
            pref: Pref::Bottom,
            round: 0,
        };
        let bodies = build_over(world, procs, initial, backend);
        ArenaInstance { bodies, probe }
    }
}

/// The \[CIL87\]-style perfect-shared-coin oracle — the convergence floor.
pub struct OracleEntrant;

impl Consensus for OracleEntrant {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn build(
        &self,
        world: &World,
        backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance {
        check_world(self, world, inputs);
        let n = inputs.len();
        let probe = Arc::new(ArenaProbe::default());
        let procs: Vec<MeteredProc<OracleCore>> = (0..n)
            .map(|pid| {
                MeteredProc::new(
                    // The shared seed IS the oracle: identical for all.
                    OracleCore::new(n, pid, inputs[pid], seed),
                    Box::new(|s: &OracleState| pref_round_bits(s.round)),
                    Arc::clone(&probe),
                )
            })
            .collect();
        let initial = OracleState {
            pref: Pref::Bottom,
            round: 0,
        };
        let bodies = build_over(world, procs, initial, backend);
        ArenaInstance { bodies, probe }
    }
}

/// The swap-race protocol ([`crate::baselines::swap_race`]). Runs on raw
/// registers plus [`bprc_sim::reg::Reg::swap`]; the snapshot backend
/// parameter is ignored (there is nothing to scan).
pub struct SwapEntrant {
    /// Pre-allocated rounds (bounds the register file).
    pub max_rounds: usize,
}

impl Default for SwapEntrant {
    fn default() -> Self {
        SwapEntrant { max_rounds: 64 }
    }
}

impl Consensus for SwapEntrant {
    fn name(&self) -> &'static str {
        "swap-race"
    }

    fn build(
        &self,
        world: &World,
        _backend: ArenaBackend,
        inputs: &[bool],
        seed: u64,
    ) -> ArenaInstance {
        check_world(self, world, inputs);
        let probe = Arc::new(ArenaProbe::default());
        let bodies = swap_race_bodies(world, inputs, seed, self.max_rounds, Arc::clone(&probe));
        ArenaInstance { bodies, probe }
    }
}

/// The arena's seeded adversary for a register mode: uniform random grants
/// and — when the mode buffers writes — uniform random flush injections
/// ([`RandomFlushes`]).
///
/// The flush fairness is part of the *mode*, not of any protocol: a
/// buffered world whose adversary never flushes degenerates into a total
/// partition in which no write ever lands and no consensus protocol (not
/// even over atomic registers) could stay live or safe. Regular registers
/// still guarantee that a *completed* write becomes visible; schedules
/// that withhold flushes forever model an adversary even Lamport's
/// definition rules out. Every entrant with the same [`Consensus::reg_mode`]
/// therefore gets the identical adversary — no per-protocol forks.
pub fn arena_strategy(mode: RegMode, seed: u64) -> Box<dyn Strategy> {
    match mode {
        RegMode::Atomic => Box::new(RandomStrategy::new(seed)),
        RegMode::Regular => Box::new(RandomFlushes::new(
            RandomStrategy::new(seed),
            derive_seed(seed, u64::from(b'F')),
        )),
    }
}

/// Every arena entrant, in benchmark order. The empirical successor race
/// and the shared-trait acceptance tests both iterate exactly this list.
pub fn entrants() -> Vec<Box<dyn Consensus>> {
    vec![
        Box::new(BoundedEntrant),
        Box::new(AhEntrant::atomic()),
        Box::new(AhEntrant::regular()),
        Box::new(AbrahamsonEntrant),
        Box::new(OracleEntrant),
        Box::new(SwapEntrant::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::ConsensusSpec;
    use bprc_sim::World;

    #[test]
    fn every_entrant_runs_under_the_shared_surface() {
        let inputs = [true, false, true];
        for entrant in entrants() {
            for backend in ArenaBackend::ALL {
                let mut world = World::builder(3)
                    .seed(11)
                    .step_limit(2_000_000)
                    .reg_mode(entrant.reg_mode())
                    .build();
                let inst = entrant.build(&world, backend, &inputs, 11);
                let rep = world.run(inst.bodies, arena_strategy(entrant.reg_mode(), 11));
                let spec = ConsensusSpec::new(&inputs);
                assert_eq!(
                    spec.check(&rep),
                    None,
                    "{} over {}",
                    entrant.name(),
                    backend.name()
                );
                if rep.outputs.iter().any(|o| o.is_some()) {
                    assert!(
                        inst.probe.max_round() >= 1,
                        "{}: a deciding run advances rounds",
                        entrant.name()
                    );
                    assert!(
                        inst.probe.max_register_bits() > 0,
                        "{}: bodies must meter register width",
                        entrant.name()
                    );
                }
            }
        }
    }

    #[test]
    fn world_reg_mode_mismatch_is_rejected() {
        let world = World::builder(2).build();
        let entrant = AhEntrant::regular();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            entrant.build(&world, ArenaBackend::Handshake, &[true, false], 0)
        }));
        assert!(r.is_err(), "atomic world must be rejected for ah-regular");
    }

    #[test]
    fn metered_bits_track_ah_growth() {
        // The AH entrant's probe must observe register growth (the
        // unbounded strip), while the bounded entrant's stays flat at its
        // static width.
        let inputs = [true, false];
        let mut world = World::builder(2).seed(3).step_limit(2_000_000).build();
        let inst = AhEntrant::atomic().build(&world, ArenaBackend::Handshake, &inputs, 3);
        let initial_bits = AhState {
            pref: Pref::Val(true),
            round: 1,
            coins: Default::default(),
        }
        .bits();
        let rep = world.run(inst.bodies, arena_strategy(RegMode::Atomic, 3));
        if rep.outputs.iter().all(|o| o.is_some()) {
            assert!(inst.probe.max_register_bits() >= initial_bits);
        }
    }
}
