//! Additional edge-case coverage for the distance graph and edge counters.

use bprc_strip::{shrink_k, DistanceGraph, EdgeCounters, ShrunkenGame};

#[test]
fn single_node_graph_is_trivial() {
    let g = DistanceGraph::new(1, 2);
    assert!(g.is_leader(0));
    assert_eq!(g.dist(0, 0), Some(0));
    assert_eq!(g.leaders(), vec![0]);
    g.validate().unwrap();
}

#[test]
fn equal_positions_give_zero_weight_double_edges() {
    let g = DistanceGraph::from_positions(&[5, 5, 5], 2);
    for i in 0..3 {
        for j in 0..3 {
            assert!(g.has_edge(i, j), "({i},{j}) must be an edge");
            assert_eq!(g.weight(i, j), Some(0));
        }
    }
    assert_eq!(g.leaders(), vec![0, 1, 2]);
}

#[test]
fn dist_none_only_upward() {
    let g = DistanceGraph::from_positions(&[0, 1, 2], 1);
    // Paths only go downhill.
    assert_eq!(g.dist(2, 0), Some(2), "chain through the middle");
    assert_eq!(g.dist(0, 2), None);
    assert_eq!(g.dist(1, 0), Some(1));
    assert_eq!(g.dist(0, 1), None);
}

#[test]
fn negative_positions_are_fine() {
    let g = DistanceGraph::from_positions(&[-10, -12, -11], 2);
    assert!(g.is_leader(0));
    assert_eq!(g.delta(0, 1), 2);
    assert_eq!(g.delta(0, 2), 1);
    g.validate().unwrap();
}

#[test]
fn shrink_with_duplicates_and_reverse_order() {
    assert_eq!(shrink_k(&[7, 7, 7], 1), vec![7, 7, 7]);
    assert_eq!(shrink_k(&[9, 5, 1], 2), vec![5, 3, 1]);
}

#[test]
fn counters_validate_after_long_adversarial_runs() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(77);
    for k in [2u32, 3] {
        let n = 5;
        let mut game = ShrunkenGame::new(n, k);
        let mut counters = EdgeCounters::new(n, k);
        // Adversarial pattern: long solo runs then catch-up stampedes.
        for phase in 0..40 {
            let runner = phase % n;
            for _ in 0..rng.gen_range(1..30) {
                game.move_token(runner);
                counters.inc_graph(runner);
            }
            let g = counters.make_graph();
            g.validate()
                .unwrap_or_else(|e| panic!("k={k} phase={phase}: {e}"));
            assert_eq!(g, DistanceGraph::from_game(&game));
        }
    }
}

#[test]
fn leaders_after_total_domination() {
    // One process laps the field thousands of times: still exactly one
    // leader, all distances capped at K.
    let (n, k) = (4, 2u32);
    let mut counters = EdgeCounters::new(n, k);
    for _ in 0..5_000 {
        counters.inc_graph(2);
    }
    let g = counters.make_graph();
    assert_eq!(g.leaders(), vec![2]);
    for j in [0usize, 1, 3] {
        assert_eq!(g.delta(2, j), k as i64);
        assert_eq!(g.dist(2, j), Some(k as i64));
    }
    g.validate().unwrap();
}

#[test]
fn catch_up_goes_through_every_intermediate_distance() {
    let (n, k) = (2, 3u32);
    let mut counters = EdgeCounters::new(n, k);
    for _ in 0..10 {
        counters.inc_graph(0);
    }
    assert_eq!(counters.decode(0, 1), k as i64);
    // The trailing process catches up one round at a time.
    for expected in (0..k as i64).rev() {
        counters.inc_graph(1);
        assert_eq!(counters.decode(0, 1), expected);
    }
    // And can take the lead.
    counters.inc_graph(1);
    assert_eq!(counters.decode(1, 0), 1);
}
